"""Tests for the benchmark-harness helpers (tables and runner)."""

import pytest

from repro.bench.runner import FIG14_WORKLOADS, PAGERANK_DATASETS, bench_graph
from repro.bench.tables import format_table, print_heatmap, print_series, print_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert lines[1].startswith("a")
        assert "22" in lines[4]

    def test_missing_cells_blank(self):
        out = format_table([{"a": 1}, {"b": 2}])
        assert "a" in out and "b" in out

    def test_column_order_follows_first_appearance(self):
        out = format_table([{"z": 1, "a": 2}])
        header = out.splitlines()[0]
        assert header.index("z") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="x")

    def test_float_formatting(self):
        out = format_table([{"v": 3.14159}])
        assert "3.14" in out

    def test_large_number_formatting(self):
        out = format_table([{"v": 1234567.0}])
        assert "1,234,567" in out


class TestPrinters:
    def test_print_table(self, capsys):
        print_table([{"a": 1}], title="t")
        assert "== t ==" in capsys.readouterr().out

    def test_print_series(self, capsys):
        print_series({"x": 1.5, "long-label": 2}, title="s", unit="GB/s")
        out = capsys.readouterr().out
        assert "== s ==" in out
        assert "GB/s" in out
        assert "long-label" in out

    def test_print_series_empty(self, capsys):
        print_series({}, title="empty")
        assert "== empty ==" in capsys.readouterr().out

    def test_print_heatmap(self, capsys):
        print_heatmap(
            {"alg1": {"d1": 1.0, "d2": 2.0}, "alg2": {"d1": 3.0}},
            title="h",
            col_order=("d1", "d2"),
        )
        out = capsys.readouterr().out
        assert "alg1" in out and "d2" in out

    def test_print_heatmap_infers_columns(self, capsys):
        print_heatmap({"a": {"x": 1}})
        assert "x" in capsys.readouterr().out


class TestRunner:
    def test_bench_graph_cached(self):
        a, _ = bench_graph("sd", scale=0.25)
        b, _ = bench_graph("sd", scale=0.25)
        assert a is b

    def test_bench_graph_undirected_view(self):
        g, _ = bench_graph("sd", scale=0.25, undirected=True)
        assert not g.directed

    def test_bench_graph_weighted(self):
        g, _ = bench_graph("sd", scale=0.25, weighted=True)
        assert g.weighted

    def test_workload_lists_reference_known_names(self):
        from repro.algorithms.registry import ALGORITHMS
        from repro.graph.datasets import DATASETS

        for alg, ds in FIG14_WORKLOADS:
            assert alg in ALGORITHMS
            assert ds in DATASETS
        for ds in PAGERANK_DATASETS:
            assert ds in DATASETS

    def test_fig14_respects_graph_requirements(self):
        from repro.algorithms.registry import ALGORITHMS
        from repro.graph.datasets import DATASETS

        for alg, ds in FIG14_WORKLOADS:
            if ALGORITHMS[alg].requires_undirected:
                # must be runnable after as_undirected (always true) —
                # but the registry entry must point at an undirected
                # dataset for the paper-faithful sweep.
                assert not DATASETS[ds].directed


class TestRunComparisonAndSweep:
    @pytest.mark.slow
    def test_run_comparison(self):
        from repro.bench.runner import run_comparison

        cmp = run_comparison("pagerank", "sd", scale=0.5)
        assert cmp.baseline.dataset == "sd"
        assert cmp.speedup > 0

    @pytest.mark.slow
    def test_run_comparison_handles_requirements(self):
        from repro.bench.runner import run_comparison

        cc = run_comparison("cc", "ap", scale=0.5)
        assert cc.baseline.algorithm == "cc"
        sssp = run_comparison("sssp", "sd", scale=0.5)
        assert sssp.baseline.algorithm == "sssp"

    @pytest.mark.slow
    def test_sweep_runs_list(self):
        from repro.bench.runner import sweep

        results = sweep([("pagerank", "sd"), ("bfs", "sd")], scale=0.5)
        assert [c.baseline.algorithm for c in results] == ["pagerank", "bfs"]
