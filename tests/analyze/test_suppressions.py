"""Suppression syntax, hygiene findings, and the SUP001 meta-rule."""

from repro.analyze import SUPPRESSION_RULE, Suppressions, run_battery

from tests.analyze.conftest import fixture_tree

CLOCK_MODULE = """\
    import time

    def stamp():
        return time.time()  # repro: noqa[DET001] -- host banner timestamp
    """


def test_well_formed_suppression_silences_the_finding(tree):
    root = tree({"src/repro/memsim/clock.py": CLOCK_MODULE})
    result = run_battery(root)
    assert result.findings == []
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule == "DET001"
    assert result.exit_code() == 0


def test_suppression_only_covers_named_rules(tree):
    root = tree({
        "src/repro/memsim/clock.py": """\
            import time

            def stamp():
                return time.time()  # repro: noqa[CNT001] -- wrong rule named
            """,
    })
    result = run_battery(root)
    assert [f.rule for f in result.findings] == ["DET001"]
    assert result.suppressed == []
    assert result.exit_code() == 1


def test_multi_rule_suppression(tree):
    root = tree({
        "src/repro/memsim/clock.py": """\
            import time

            def stamp():
                return time.time()  # repro: noqa[CNT001, DET001] -- fixture
            """,
    })
    result = run_battery(root)
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET001"]


def test_missing_reason_is_sup001_and_does_not_silence():
    result = run_battery(fixture_tree("bad_suppression"))
    rules = sorted(f.rule for f in result.findings)
    # The reasonless noqa is malformed (SUP001), the unknown-id noqa is
    # another SUP001, and the DET001 it tried to hide is still reported.
    assert rules == ["DET001", "SUP001", "SUP001"]
    assert result.suppressed == []
    assert result.exit_code() == 1


def test_unknown_rule_id_message():
    result = run_battery(fixture_tree("bad_suppression"))
    unknown = [f for f in result.findings if "ZZZ999" in f.message]
    assert len(unknown) == 1
    assert unknown[0].rule == "SUP001"


def test_sup001_cannot_silence_itself():
    sup = Suppressions()
    sup.add("src/repro/x.py", 3, ["SUP001"])
    finding = SUPPRESSION_RULE.finding("src/repro/x.py", 3, "malformed")
    assert not sup.is_suppressed(finding)


def test_quoted_syntax_in_strings_is_inert(tree):
    root = tree({
        "src/repro/memsim/doc.py": '''\
            """Mentions `# repro: noqa[DET001]` inside a docstring."""

            EXAMPLE = "x = 1  # repro: noqa[ZZZ999] -- not a real comment"
            ''',
    })
    result = run_battery(root)
    assert result.findings == []


def test_suppressions_still_scanned_with_rule_subset(tree):
    root = tree({
        "src/repro/memsim/clock.py": """\
            LIMIT = 1  # repro: noqa[DET001]
            """,
    })
    result = run_battery(root, rules=["CNT001"])
    assert [f.rule for f in result.findings] == ["SUP001"]
    assert result.exit_code() == 1
