"""ENV001: ambient environment reads outside repro.core.context."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree, make_tree


def env(root):
    result = run_battery(root, rules=["ENV001"])
    return [f for f in result.findings if f.rule == "ENV001"]


def test_getenv_in_library_code_flagged(tree):
    root = tree({
        "src/repro/memsim/knobs.py": """\
            import os

            def scalar_forced():
                return os.getenv("REPRO_SCALAR_CACHE") == "1"
            """,
    })
    findings = env(root)
    assert len(findings) == 1
    assert "os.getenv" in findings[0].message
    assert findings[0].severity == "error"


def test_environ_get_and_subscript_flagged(tree):
    root = tree({
        "src/repro/store/knobs.py": """\
            import os

            def cache_dir():
                return os.environ.get("REPRO_CACHE_DIR")

            def capacity():
                return os.environ["REPRO_CACHE_CAPACITY_MB"]
            """,
    })
    findings = env(root)
    assert len(findings) == 2
    assert any("os.environ.get" in f.message for f in findings)
    assert any("os.environ[...]" in f.message for f in findings)


def test_membership_probe_flagged(tree):
    root = tree({
        "src/repro/obs/knobs.py": """\
            import os

            def ledger_enabled():
                return "REPRO_LEDGER" in os.environ
            """,
    })
    findings = env(root)
    assert len(findings) == 1
    assert "in os.environ" in findings[0].message


def test_from_import_alias_resolution(tree):
    root = tree({
        "src/repro/core/run.py": """\
            from os import environ, getenv

            def a():
                return getenv("REPRO_X")

            def b():
                return environ.get("REPRO_Y")
            """,
    })
    assert len(env(root)) == 2


def test_context_module_is_allowed(tree):
    root = tree({
        "src/repro/core/context.py": """\
            import os

            def ledger_path_from_env():
                return os.environ.get("REPRO_LEDGER") or None
            """,
    })
    assert env(root) == []


def test_entry_points_are_allowed(tree):
    root = tree({
        "src/repro/cli.py": """\
            import os

            def debug():
                return os.getenv("REPRO_DEBUG")
            """,
        "src/repro/analyze/project.py": """\
            import os

            def columns():
                return os.environ.get("COLUMNS")
            """,
    })
    assert env(root) == []


def test_suppression_comment_honoured(tmp_path):
    make_tree(tmp_path, {
        "src/repro/memsim/knobs.py": """\
            import os

            def probe():
                return os.getenv("REPRO_X")  # repro: noqa[ENV001] -- test
            """,
    })
    result = run_battery(tmp_path, rules=["ENV001"])
    assert [f for f in result.findings if f.rule == "ENV001"] == []
    assert result.ok


def test_real_checkout_fixture_is_clean():
    # The dedicated clean fixture stays quiet under ENV001 too.
    assert env(fixture_tree("clean")) == []
