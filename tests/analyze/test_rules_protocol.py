"""PRT001: backend modules implement and register the full surface."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree

GOOD_BASE = """\
    class HierarchyBackend:
        def __init__(self, config):
            self.config = config

        def route(self, ctx, trace, prepass):
            raise NotImplementedError

        def account(self, ctx, trace, prepass, routes):
            raise NotImplementedError
    """

GOOD_HUB = """\
    from repro.memsim.backends.fast import FastBackend

    __all__ = ["FastBackend"]
    """


def prt(root):
    result = run_battery(root, rules=["PRT001"])
    return [f for f in result.findings if f.rule == "PRT001"]


def test_bad_fixture_flags_every_violation():
    findings = prt(fixture_tree("bad_protocol"))
    messages = "\n".join(f.message for f in findings)
    assert "not decorated with @register_backend" in messages
    assert "did you mean 'account'" in messages
    assert "never calls super().__init__" in messages
    assert "not re-exported" in messages
    assert len(findings) == 4


def test_well_formed_backend_is_clean(tree):
    root = tree({
        "src/repro/memsim/backends/base.py": GOOD_BASE,
        "src/repro/memsim/backends/__init__.py": GOOD_HUB,
        "src/repro/memsim/backends/fast.py": """\
            from repro.memsim.backends.base import HierarchyBackend
            from repro.memsim.backends.registry import register_backend

            @register_backend("fast")
            class FastBackend(HierarchyBackend):
                def __init__(self, config):
                    super().__init__(config)
                    self.extra = 0

                def route(self, ctx, trace, prepass):
                    return None

                def helper_stage(self, ctx):
                    return self.extra
            """,
        "src/repro/memsim/backends/registry.py": """\
            def register_backend(name):
                def deco(cls):
                    return cls
                return deco
            """,
    })
    assert prt(root) == []


def test_hook_signature_mismatch_flagged(tree):
    root = tree({
        "src/repro/memsim/backends/base.py": GOOD_BASE,
        "src/repro/memsim/backends/__init__.py": GOOD_HUB,
        "src/repro/memsim/backends/fast.py": """\
            from repro.memsim.backends.base import HierarchyBackend
            from repro.memsim.backends.registry import register_backend

            @register_backend("fast")
            class FastBackend(HierarchyBackend):
                def route(self, ctx, trace):
                    return None
            """,
        "src/repro/memsim/backends/registry.py": """\
            def register_backend(name):
                def deco(cls):
                    return cls
                return deco
            """,
    })
    findings = prt(root)
    assert len(findings) == 1
    assert "does not match the HierarchyBackend hook" in findings[0].message


def test_duplicate_backend_name_flagged(tree):
    root = tree({
        "src/repro/memsim/backends/base.py": GOOD_BASE,
        "src/repro/memsim/backends/__init__.py": """\
            from repro.memsim.backends.one import OneBackend
            from repro.memsim.backends.two import TwoBackend

            __all__ = ["OneBackend", "TwoBackend"]
            """,
        "src/repro/memsim/backends/one.py": """\
            from repro.memsim.backends.base import HierarchyBackend
            from repro.memsim.backends.registry import register_backend

            @register_backend("same")
            class OneBackend(HierarchyBackend):
                pass
            """,
        "src/repro/memsim/backends/two.py": """\
            from repro.memsim.backends.base import HierarchyBackend
            from repro.memsim.backends.registry import register_backend

            @register_backend("same")
            class TwoBackend(HierarchyBackend):
                pass
            """,
        "src/repro/memsim/backends/registry.py": """\
            def register_backend(name):
                def deco(cls):
                    return cls
                return deco
            """,
    })
    findings = prt(root)
    assert len(findings) == 1
    assert "already registered" in findings[0].message


def test_module_without_backend_class_flagged(tree):
    root = tree({
        "src/repro/memsim/backends/base.py": GOOD_BASE,
        "src/repro/memsim/backends/__init__.py": "",
        "src/repro/memsim/backends/helpers.py": """\
            def shared_stage(ctx):
                return ctx
            """,
    })
    findings = prt(root)
    assert len(findings) == 1
    assert "no HierarchyBackend subclass" in findings[0].message
