"""Fixture package."""
