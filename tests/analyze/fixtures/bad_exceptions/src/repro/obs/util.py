"""Telemetry helper that leaks builtin exceptions past the contract."""


def parse_level(name):
    if not name:
        raise ValueError("empty level name")
    try:
        return int(name)
    except Exception:
        return 0
