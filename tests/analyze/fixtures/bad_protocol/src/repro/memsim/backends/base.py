"""Fixture protocol surface."""


class HierarchyBackend:
    def __init__(self, config):
        self.config = config

    def route(self, ctx, trace, prepass):
        raise NotImplementedError

    def account(self, ctx, trace, prepass, routes):
        raise NotImplementedError
