"""Fixture backends hub that exports nothing."""
