"""Fixture backend violating most of the protocol rule (PRT001):

unregistered, ``acount`` typo of the ``account`` hook, ``__init__``
never chains to super, and the hub exports nothing.
"""

from repro.memsim.backends.base import HierarchyBackend


class BrokenBackend(HierarchyBackend):
    def __init__(self, config):
        self.config = config

    def route(self, ctx, trace, prepass):
        return None

    def acount(self, ctx, trace, prepass, routes):
        return None
