"""A minimal checkout the full battery finds nothing wrong with."""

import time


def elapsed(start: float) -> float:
    """Host-side timing is fine outside the simulation packages."""
    return time.perf_counter() - start
