"""Fixture package."""
