"""Diff gate whose whitelist drifted from the manifest producer."""

KNOWN_BLOCKS = frozenset({"schema", "workload", "stale_block"})
