"""A manifest with a block the diff gate has never heard of."""

MANIFEST_SCHEMA = "omega-repro/run-manifest/v0"


class SimReport:
    def manifest(self):
        return {
            "schema": MANIFEST_SCHEMA,
            "workload": {},
            "mystery": 1,
        }
