"""Fixture package."""
