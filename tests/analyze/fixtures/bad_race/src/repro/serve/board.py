"""A result board whose worker writes shared state without the lock."""

import threading
from concurrent.futures import ThreadPoolExecutor


class ResultBoard:
    """Fans work across a pool but forgets the lock on the way back."""

    def __init__(self):
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=2)
        self._results = {}
        self._done = 0

    def submit(self, key):
        self._pool.submit(self._run, key)
        return key

    def _run(self, key):
        value = key * 2
        self._results[key] = value
        self._done += 1

    def get(self, key):
        with self._lock:
            return self._results.get(key)
