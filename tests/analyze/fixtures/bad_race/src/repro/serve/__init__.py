"""Fixture serve package."""
