"""Fixture: malformed and unknown-rule suppressions (SUP001)."""

import time


def stamp() -> float:
    return time.time()  # repro: noqa[DET001]


LIMIT = 1  # repro: noqa[ZZZ999] -- no rule has this id
