"""Fixture simulation package."""
