"""Fixture: wall-clock read inside the simulation packages (DET001)."""

import time


def stamp() -> float:
    return time.time()
