"""Fixture package."""
