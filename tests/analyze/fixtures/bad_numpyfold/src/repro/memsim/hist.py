"""Histogram folds that accumulate into int32 — wraps at scale."""

import numpy as np


def fold(events, nbins):
    hist = np.zeros(nbins, dtype=np.int32)
    hist += np.bincount(events, minlength=nbins)
    return hist


def scatter(length, idx, vals):
    acc = np.zeros(length, dtype=np.int32)
    np.add.at(acc, idx, vals)
    return acc
