"""Fixture: one counter written-never-reported, one the reverse (CNT001)."""


class MemStats:
    num_cores: int = 4
    #: Incremented by engine.py but missing from as_dict.
    dropped_events: int = 0
    #: In as_dict but nothing ever writes it.
    phantom_hits: int = 0

    def as_dict(self):
        return {"phantom_hits": self.phantom_hits}
