"""Fixture simulation package."""
