"""Fixture: the increment site for the unreported counter."""


def bump(stats) -> None:
    stats.dropped_events += 1
