"""Fixture trace constants that drifted ahead of the docs."""

TRACE_FORMAT_VERSION = 3
READABLE_TRACE_VERSIONS = frozenset({1, 2, 3})
