"""Fixture CLI: one undocumented flag, one undocumented env var."""

import argparse

CACHE_ENV = "REPRO_SECRET"


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--mystery", help="never documented")
    return parser
