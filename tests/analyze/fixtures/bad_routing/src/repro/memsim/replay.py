"""Fixture engine: owns the cache route only."""

from repro.memsim.routes import ROUTE_CACHE


def replay(routes):
    return routes == ROUTE_CACHE
