"""Fixture route table: one dangling code, one dead code (RTE001)."""

ROUTE_CACHE = 0
ROUTE_SP = 1
#: Defined but never emitted and not declared unused.
ROUTE_GHOST = 2
