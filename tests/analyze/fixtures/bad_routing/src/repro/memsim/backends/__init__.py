"""Fixture backends package."""
