"""Fixture backend: emits ROUTE_SP but never accounts it."""

from repro.memsim.routes import ROUTE_SP


def route(routes, mask):
    routes[mask] = ROUTE_SP
    return routes
