"""EXC001: library code raises ReproError subclasses, not builtins."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def exc(root):
    result = run_battery(root, rules=["EXC001"])
    return [f for f in result.findings if f.rule == "EXC001"]


def test_bad_fixture_flags_builtin_raise_and_blanket_catch():
    findings = exc(fixture_tree("bad_exceptions"))
    assert len(findings) == 2
    by_line = {f.line: f for f in findings}
    assert by_line[6].path == "src/repro/obs/util.py"
    assert "raises builtin ValueError" in by_line[6].message
    assert "swallows programming errors" in by_line[9].message


def test_repro_error_subclass_is_clean(tree):
    root = tree({
        "src/repro/errors.py": """\
            class ReproError(Exception):
                pass


            class ObsError(ReproError, ValueError):
                pass
            """,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/util.py": """\
            from repro.errors import ObsError


            def parse_level(name):
                if not name:
                    raise ObsError("empty level name")
                return name.upper()
            """,
    })
    assert exc(root) == []


def test_transitive_subclasses_are_recognised(tree):
    # DeepError -> MidError -> ReproError: the fixpoint must chase it.
    root = tree({
        "src/repro/errors.py": """\
            class ReproError(Exception):
                pass


            class MidError(ReproError):
                pass


            class DeepError(MidError):
                pass
            """,
        "src/repro/core/__init__.py": "",
        "src/repro/core/engine.py": """\
            from repro.errors import DeepError


            def check(flag):
                if not flag:
                    raise DeepError("nope")
            """,
    })
    assert exc(root) == []


def test_not_implemented_error_is_contract_exempt(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/base.py": """\
            class Backend:
                def route(self, events):
                    raise NotImplementedError
            """,
    })
    assert exc(root) == []


def test_cli_module_is_exempt(tree):
    # The CLI boundary legitimately deals in SystemExit/ValueError.
    root = tree({
        "src/repro/cli.py": """\
            def main(argv):
                try:
                    return int(argv[0])
                except Exception:
                    raise ValueError("bad argv")
            """,
    })
    assert exc(root) == []


def test_bare_except_is_flagged(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/loader.py": """\
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
    })
    findings = exc(root)
    assert len(findings) == 1
    assert "bare 'except:'" in findings[0].message


def test_specific_catch_is_clean(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/loader.py": """\
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
    })
    assert exc(root) == []


def test_noqa_keeps_a_reasoned_blanket_catch(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/spool.py": """\
            def drain(spool):
                try:
                    spool.flush()
                except Exception:  # repro: noqa[EXC001] -- cleanup boundary: abort then re-raise
                    spool.abort()
                    raise
            """,
    })
    result = run_battery(root, rules=["EXC001"])
    assert [f.rule for f in result.findings] == []
    assert [f.rule for f in result.suppressed] == ["EXC001"]
