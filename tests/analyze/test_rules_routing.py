"""RTE001: every route code emitted, accounted, or declared."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def rte(root):
    result = run_battery(root, rules=["RTE001"])
    return [f for f in result.findings if f.rule == "RTE001"]


def test_bad_fixture_flags_dangling_and_dead_routes():
    findings = rte(fixture_tree("bad_routing"))
    assert len(findings) == 2
    by_path = {f.path: f for f in findings}
    emit = by_path["src/repro/memsim/backends/hw.py"]
    assert "emits ROUTE_SP but never accounts it" in emit.message
    dead = by_path["src/repro/memsim/routes.py"]
    assert "ROUTE_GHOST" in dead.message


def test_accounted_emission_is_clean(tree):
    root = tree({
        "src/repro/memsim/routes.py": """\
            ROUTE_CACHE = 0
            ROUTE_SP = 1
            """,
        "src/repro/memsim/replay.py": """\
            from repro.memsim.routes import ROUTE_CACHE

            def replay(routes):
                return routes == ROUTE_CACHE
            """,
        "src/repro/memsim/backends/__init__.py": "",
        "src/repro/memsim/backends/hw.py": """\
            from repro.memsim.routes import ROUTE_SP

            def route(routes, mask):
                routes[mask] = ROUTE_SP
                return routes

            def account(routes, stats):
                stats.sp += int((routes == ROUTE_SP).sum())
            """,
    })
    assert rte(root) == []


def test_base_accounting_covers_all_backends(tree):
    root = tree({
        "src/repro/memsim/routes.py": """\
            ROUTE_SP = 1
            """,
        "src/repro/memsim/backends/__init__.py": "",
        "src/repro/memsim/backends/base.py": """\
            from repro.memsim.routes import ROUTE_SP

            def account(routes, stats):
                stats.sp += int((routes == ROUTE_SP).sum())
            """,
        "src/repro/memsim/backends/hw.py": """\
            from repro.memsim.routes import ROUTE_SP

            def route(routes, mask):
                routes[mask] = ROUTE_SP
                return routes
            """,
    })
    assert rte(root) == []


def test_route_time_declaration_escape(tree):
    root = tree({
        "src/repro/memsim/routes.py": """\
            ROUTE_HIT = 1
            """,
        "src/repro/memsim/backends/__init__.py": "",
        "src/repro/memsim/backends/hw.py": """\
            from repro.memsim.routes import ROUTE_HIT

            ROUTES_ACCOUNTED_AT_ROUTE_TIME = ("ROUTE_HIT",)

            def route(routes, mask):
                routes[mask] = ROUTE_HIT
                return routes
            """,
    })
    assert rte(root) == []


def test_route_time_declaration_must_name_real_routes(tree):
    root = tree({
        "src/repro/memsim/routes.py": """\
            ROUTE_HIT = 1
            """,
        "src/repro/memsim/backends/__init__.py": "",
        "src/repro/memsim/backends/hw.py": """\
            from repro.memsim.routes import ROUTE_HIT

            ROUTES_ACCOUNTED_AT_ROUTE_TIME = ("ROUTE_HIT", "ROUTE_TYPO")

            def route(routes, mask):
                routes[mask] = ROUTE_HIT
                return routes
            """,
    })
    findings = rte(root)
    assert len(findings) == 1
    assert "ROUTE_TYPO" in findings[0].message


def test_declared_unused_escape(tree):
    root = tree({
        "src/repro/memsim/routes.py": """\
            ROUTE_FUTURE = 7

            ROUTES_DECLARED_UNUSED = ("ROUTE_FUTURE",)
            """,
        "src/repro/memsim/backends/__init__.py": "",
    })
    assert rte(root) == []
