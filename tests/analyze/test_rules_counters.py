"""CNT001: counter conservation between writers and reporters."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def cnt(root):
    result = run_battery(root, rules=["CNT001"])
    return [f for f in result.findings if f.rule == "CNT001"]


def test_bad_fixture_flags_both_directions():
    findings = cnt(fixture_tree("bad_counters"))
    messages = {f.message.split("'")[1]: f.message for f in findings}
    assert set(messages) == {"dropped_events", "phantom_hits"}
    assert "never reported" in messages["dropped_events"]
    assert "never written" in messages["phantom_hits"]
    assert all(f.path == "src/repro/memsim/stats.py" for f in findings)


def test_counter_reported_through_property_closure(tree):
    root = tree({
        "src/repro/memsim/stats.py": """\
            class MemStats:
                hits: int = 0
                misses: int = 0

                @property
                def accesses(self):
                    return self.hits + self.misses

                @property
                def hit_rate(self):
                    return self.hits / self.accesses if self.accesses else 0.0

                def as_dict(self):
                    return {"hit_rate": self.hit_rate}
            """,
        "src/repro/memsim/engine.py": """\
            def bump(stats):
                stats.hits += 1
                stats.misses += 1
            """,
    })
    assert cnt(root) == []


def test_counter_reported_via_timeline_snapshot(tree):
    root = tree({
        "src/repro/memsim/stats.py": """\
            class MemStats:
                evictions: int = 0

                def as_dict(self):
                    return {}
            """,
        "src/repro/memsim/engine.py": """\
            def bump(stats):
                stats.evictions += 1
            """,
        "src/repro/obs/timeline.py": """\
            _STAT_FIELDS = ("evictions",)
            """,
    })
    assert cnt(root) == []


def test_snapshot_field_must_be_a_counter(tree):
    root = tree({
        "src/repro/memsim/stats.py": """\
            class MemStats:
                hits: int = 0

                def as_dict(self):
                    return {"hits": self.hits}
            """,
        "src/repro/memsim/engine.py": """\
            def bump(stats):
                stats.hits += 1
            """,
        "src/repro/obs/timeline.py": """\
            _STAT_FIELDS = ("hits", "no_such_counter")
            """,
    })
    findings = cnt(root)
    assert len(findings) == 1
    assert "no_such_counter" in findings[0].message
    assert findings[0].path == "src/repro/obs/timeline.py"


def test_as_dict_typo_flagged(tree):
    root = tree({
        "src/repro/memsim/stats.py": """\
            class MemStats:
                hits: int = 0

                def as_dict(self):
                    return {"hits": self.hitz}
            """,
        "src/repro/memsim/engine.py": """\
            def bump(stats):
                stats.hits += 1
            """,
        "src/repro/obs/timeline.py": """\
            _STAT_FIELDS = ("hits",)
            """,
    })
    findings = cnt(root)
    assert len(findings) == 1
    assert "hitz" in findings[0].message


def test_silent_without_memstats_module(tree):
    root = tree({
        "src/repro/core/run.py": """\
            def run():
                return 0
            """,
    })
    assert cnt(root) == []
