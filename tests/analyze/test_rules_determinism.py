"""DET001: entropy sources in the simulation packages."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def det(root):
    result = run_battery(root, rules=["DET001"])
    return [f for f in result.findings if f.rule == "DET001"]


def test_bad_fixture_flags_wall_clock():
    findings = det(fixture_tree("bad_determinism"))
    assert len(findings) == 1
    f = findings[0]
    assert f.path == "src/repro/memsim/clock.py"
    assert "time.time" in f.message
    assert f.severity == "error"


def test_clock_allowed_outside_sim_scope(tree):
    root = tree({
        "src/repro/graph/gen.py": """\
            import time

            def stamp():
                return time.time()
            """,
    })
    assert det(root) == []


def test_perf_counter_allowed_in_sim_scope(tree):
    root = tree({
        "src/repro/memsim/telemetry.py": """\
            import time

            def tick():
                return time.perf_counter()
            """,
    })
    assert det(root) == []


def test_import_alias_resolution(tree):
    root = tree({
        "src/repro/core/run.py": """\
            from time import time as now

            def stamp():
                return now()
            """,
    })
    assert len(det(root)) == 1


def test_unseeded_default_rng_flagged_everywhere(tree):
    root = tree({
        "src/repro/graph/gen.py": """\
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
    })
    findings = det(root)
    assert len(findings) == 1
    assert "unseeded" in findings[0].message


def test_seeded_default_rng_allowed_in_generators(tree):
    root = tree({
        "src/repro/graph/gen.py": """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
    })
    assert det(root) == []


def test_seeded_rng_still_banned_in_sim_scope(tree):
    root = tree({
        "src/repro/memsim/noise.py": """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
    })
    findings = det(root)
    assert len(findings) == 1
    assert "workload generators" in findings[0].message


def test_global_state_numpy_rng_flagged(tree):
    root = tree({
        "src/repro/graph/gen.py": """\
            import numpy as np

            def make(n):
                return np.random.rand(n)
            """,
    })
    findings = det(root)
    assert len(findings) == 1
    assert "global-state" in findings[0].message


def test_set_iteration_flagged_only_in_sim_scope(tree):
    root = tree({
        "src/repro/memsim/walk.py": """\
            def visit(items):
                out = []
                for x in set(items):
                    out.append(x)
                return out
            """,
        "src/repro/graph/walk.py": """\
            def visit(items):
                out = []
                for x in set(items):
                    out.append(x)
                return out
            """,
    })
    findings = det(root)
    assert len(findings) == 1
    assert findings[0].path == "src/repro/memsim/walk.py"
    assert "PYTHONHASHSEED" in findings[0].message


def test_sorted_set_iteration_allowed(tree):
    root = tree({
        "src/repro/memsim/walk.py": """\
            def visit(items):
                out = []
                for x in sorted({i for i in items}):
                    out.append(x)
                return out
            """,
    })
    assert det(root) == []
