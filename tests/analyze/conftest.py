"""Shared helpers for the analyzer tests.

Two ways to build a checkout for the battery to chew on:

- ``make_tree(tmp_path, files)`` writes an inline mini-tree from a
  ``{relative path: source}`` mapping (dedented), always ensuring the
  ``src/repro/__init__.py`` anchor exists;
- ``fixture_tree(name)`` returns the path of an on-disk fixture
  checkout under ``tests/analyze/fixtures/`` (each is a complete
  miniature repo: ``src/repro/...`` plus optional docs).
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict

import pytest

FIXTURES = Path(__file__).parent / "fixtures"

#: The real checkout this test file lives in.
REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(root: Path, files: Dict[str, str]) -> Path:
    """Write a miniature checkout under ``root`` and return it."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    anchor = root / "src" / "repro" / "__init__.py"
    if not anchor.exists():
        anchor.parent.mkdir(parents=True, exist_ok=True)
        anchor.write_text('"""Fixture package."""\n')
    return root


@pytest.fixture
def tree(tmp_path):
    """Factory fixture: ``tree({path: source, ...})`` → checkout root."""

    def build(files: Dict[str, str]) -> Path:
        return make_tree(tmp_path, files)

    return build


def fixture_tree(name: str) -> Path:
    """Path of the on-disk fixture checkout ``name``."""
    path = FIXTURES / name
    assert path.is_dir(), f"missing fixture tree {name}"
    return path
