"""SCH001: manifest blocks, KNOWN_BLOCKS, and docs stay in sync."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def sch(root):
    result = run_battery(root, rules=["SCH001"])
    return [f for f in result.findings if f.rule == "SCH001"]


REPORT_OK = """\
    MANIFEST_SCHEMA = "omega-repro/manifest/v1"


    class SimReport:
        def manifest(self):
            return {
                "schema": MANIFEST_SCHEMA,
                "workload": {},
            }
    """

BLOCKS_OK = """\
    KNOWN_BLOCKS = frozenset({"schema", "workload"})
    """


def test_bad_fixture_flags_missing_and_stale_blocks():
    findings = sch(fixture_tree("bad_schema"))
    assert len(findings) == 2
    by_path = {f.path: f for f in findings}
    missing = by_path["src/repro/core/report.py"]
    assert "'mystery'" in missing.message
    assert "KNOWN_BLOCKS" in missing.message
    stale = by_path["src/repro/obs/manifest_diff.py"]
    assert "'stale_block'" in stale.message


def test_in_sync_trees_are_clean(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/report.py": REPORT_OK,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/manifest_diff.py": BLOCKS_OK,
    })
    assert sch(root) == []


def test_docs_table_must_mention_every_block(tree):
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/report.py": REPORT_OK,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/manifest_diff.py": BLOCKS_OK,
        "docs/trace-format.md": """\
            # Trace format

            | block | meaning |
            | --- | --- |
            | "schema" | format version |
            """,
    })
    findings = sch(root)
    assert len(findings) == 1
    assert "'workload'" in findings[0].message
    assert "docs/trace-format.md" in findings[0].message


def test_docs_check_is_skipped_without_the_page(tree):
    # No docs/trace-format.md in the mini-tree → only code-level sync.
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/report.py": REPORT_OK,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/manifest_diff.py": BLOCKS_OK,
    })
    assert sch(root) == []


def test_subscript_inserts_count_as_blocks(tree):
    # manifest() building the dict imperatively still gets scanned.
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/report.py": """\
            class SimReport:
                def manifest(self):
                    doc = {
                        "schema": "v1",
                    }
                    doc["workload"] = {}
                    doc["surprise"] = 1
                    return doc
            """,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/manifest_diff.py": BLOCKS_OK,
    })
    findings = sch(root)
    assert len(findings) == 1
    assert "'surprise'" in findings[0].message


def test_missing_anchor_is_reported_not_crashed(tree):
    # report.py exists but lost SimReport.manifest: the rule says so.
    root = tree({
        "src/repro/core/__init__.py": "",
        "src/repro/core/report.py": """\
            class SomethingElse:
                pass
            """,
        "src/repro/obs/__init__.py": "",
        "src/repro/obs/manifest_diff.py": BLOCKS_OK,
    })
    findings = sch(root)
    assert len(findings) == 1
    assert "no longer defines" in findings[0].message
    assert "SimReport" in findings[0].message
