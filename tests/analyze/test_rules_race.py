"""RAC001: shared-state writes need the lock (or a declared excuse)."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def rac(root):
    result = run_battery(root, rules=["RAC001"])
    return [f for f in result.findings if f.rule == "RAC001"]


SERVE_INIT = '"""Fixture serve package."""\n'


def test_bad_fixture_flags_unguarded_pool_writes():
    findings = rac(fixture_tree("bad_race"))
    assert len(findings) == 2
    messages = [f.message for f in findings]
    assert any("ResultBoard._results" in m for m in messages)
    assert any("ResultBoard._done" in m for m in messages)
    for f in findings:
        assert f.path == "src/repro/serve/board.py"
        assert "worker pool" in f.message


def test_locked_writes_are_clean(tree):
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/board.py": """\
            import threading
            from concurrent.futures import ThreadPoolExecutor


            class ResultBoard:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pool = ThreadPoolExecutor(max_workers=2)
                    self._results = {}

                def submit(self, key):
                    self._pool.submit(self._run, key)

                def _run(self, key):
                    with self._lock:
                        self._results[key] = key * 2

                def get(self, key):
                    with self._lock:
                        return self._results.get(key)
            """,
    })
    assert rac(root) == []


def test_single_threaded_class_needs_no_lock(tree):
    # No spawn site anywhere → only the ambient root → nothing races.
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/plain.py": """\
            class Plain:
                def __init__(self):
                    self._counts = {}

                def bump(self, key):
                    self._counts[key] = self._counts.get(key, 0) + 1
            """,
    })
    assert rac(root) == []


def test_thread_spawn_counts_as_a_root(tree):
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/ticker.py": """\
            import threading


            class Ticker:
                def __init__(self):
                    self._ticks = 0
                    self._thread = threading.Thread(target=self._loop)

                def start(self):
                    self._thread.start()

                def _loop(self):
                    self._ticks += 1

                def read(self):
                    return self._ticks
            """,
    })
    findings = rac(root)
    assert len(findings) == 1
    assert "Ticker._ticks" in findings[0].message
    assert "a thread via" in findings[0].message


def test_threadsafe_containers_are_exempt(tree):
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/safe.py": """\
            import queue
            import threading
            from concurrent.futures import ThreadPoolExecutor


            class SafeBoard:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)
                    self._out = queue.Queue()
                    self._stop = threading.Event()

                def submit(self, key):
                    self._pool.submit(self._run, key)

                def _run(self, key):
                    self._out.put(key)
                    self._stop.set()
            """,
    })
    assert rac(root) == []


def test_single_writer_declaration_is_honoured(tree):
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/declared.py": """\
            from concurrent.futures import ThreadPoolExecutor


            class Declared:
                _RAC_SINGLE_WRITER = ("_progress",)

                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=1)
                    self._progress = []

                def submit(self, key):
                    self._pool.submit(self._run, key)

                def _run(self, key):
                    self._progress.append(key)

                def peek(self):
                    return list(self._progress)
            """,
    })
    assert rac(root) == []


def test_process_pools_do_not_create_roots(tree):
    # Separate address spaces: ProcessPoolExecutor.submit races nobody.
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/procs.py": """\
            from concurrent.futures import ProcessPoolExecutor


            class ProcBoard:
                def __init__(self):
                    self._pool = ProcessPoolExecutor(max_workers=2)
                    self._submitted = 0

                def submit(self, key):
                    self._submitted += 1
                    self._pool.submit(_work, key)


            def _work(key):
                return key * 2
            """,
    })
    assert rac(root) == []


def test_init_writes_are_exempt(tree):
    # The constructor publishes nothing; only post-init writes count.
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/initonly.py": """\
            from concurrent.futures import ThreadPoolExecutor


            class InitOnly:
                def __init__(self, keys):
                    self._pool = ThreadPoolExecutor(max_workers=2)
                    self._snapshot = dict(keys)

                def submit(self, key):
                    self._pool.submit(self._run, key)

                def _run(self, key):
                    return self._snapshot.get(key)
            """,
    })
    assert rac(root) == []


def test_noqa_silences_a_reviewed_write(tree):
    root = tree({
        "src/repro/serve/__init__.py": SERVE_INIT,
        "src/repro/serve/reviewed.py": """\
            from concurrent.futures import ThreadPoolExecutor


            class Reviewed:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=1)
                    self._last = None

                def submit(self, key):
                    self._pool.submit(self._run, key)

                def _run(self, key):
                    self._last = key  # repro: noqa[RAC001] -- last-write-wins telemetry; torn reads acceptable
            """,
    })
    result = run_battery(root, rules=["RAC001"])
    assert [f.rule for f in result.findings] == []
    assert [f.rule for f in result.suppressed] == ["RAC001"]
