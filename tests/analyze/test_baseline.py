"""Baseline ratchet: accepted findings reported but non-fatal."""

import json

import pytest

from repro.analyze import (
    load_baseline,
    run_battery,
    write_baseline,
)
from repro.analyze.baseline import BASELINE_SCHEMA, fingerprint
from repro.cli import main
from repro.errors import ReproError

from tests.analyze.conftest import fixture_tree


def test_write_then_load_round_trips(tmp_path):
    findings = run_battery(fixture_tree("bad_routing")).findings
    assert findings
    path = tmp_path / "baseline.json"
    count = write_baseline(path, findings)
    assert count == len({fingerprint(f) for f in findings})
    doc = json.loads(path.read_text())
    assert doc["schema"] == BASELINE_SCHEMA
    assert load_baseline(path) == {fingerprint(f) for f in findings}


def test_baselined_findings_do_not_fail_the_battery(tmp_path):
    root = fixture_tree("bad_race")
    first = run_battery(root)
    assert first.exit_code() == 1
    path = tmp_path / "baseline.json"
    write_baseline(path, first.findings)

    second = run_battery(root, baseline=load_baseline(path))
    assert second.exit_code() == 0
    assert second.findings == []
    assert second.baselined == first.findings


def test_baseline_is_line_independent():
    # Fingerprints carry no line number: (rule, path, message) only.
    finding = run_battery(fixture_tree("bad_race")).findings[0]
    assert fingerprint(finding) == (
        finding.rule, finding.path, finding.message
    )


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(ReproError):
        load_baseline(path)
    path.write_text(json.dumps({"schema": "wrong/schema", "entries": []}))
    with pytest.raises(ReproError):
        load_baseline(path)
    path.write_text(json.dumps(
        {"schema": BASELINE_SCHEMA, "entries": [{"rule": "X"}]}
    ))
    with pytest.raises(ReproError):
        load_baseline(path)


def test_missing_baseline_file_raises(tmp_path):
    with pytest.raises(ReproError):
        load_baseline(tmp_path / "absent.json")


def test_cli_update_then_apply_baseline(tmp_path, capsys):
    root = str(fixture_tree("bad_numpyfold"))
    path = tmp_path / "baseline.json"

    code = main([
        "lint", "--root", root, "--no-cache",
        "--baseline", str(path), "--update-baseline",
    ])
    assert code == 0
    assert f"baseline: {path}" in capsys.readouterr().out

    code = main([
        "lint", "--root", root, "--no-cache", "--baseline", str(path),
    ])
    assert code == 0
    assert "2 baselined" in capsys.readouterr().out

    # Without the baseline the same checkout still fails.
    code = main(["lint", "--root", root, "--no-cache"])
    capsys.readouterr()
    assert code == 1


def test_cli_update_baseline_requires_a_path(capsys):
    code = main([
        "lint", "--root", str(fixture_tree("clean")), "--no-cache",
        "--update-baseline",
    ])
    assert code == 2
    assert "--baseline" in capsys.readouterr().err


def test_cli_malformed_baseline_is_usage_error(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    code = main([
        "lint", "--root", str(fixture_tree("clean")), "--no-cache",
        "--baseline", str(path),
    ])
    assert code == 2
    assert "baseline" in capsys.readouterr().err
