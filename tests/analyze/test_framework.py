"""Registry, project index, and AST-helper behavior."""

import ast
import textwrap

import pytest

from repro.analyze import AnalysisError, ProjectIndex, rule_ids
from repro.analyze.astutil import (
    import_aliases,
    module_constant,
    resolve_call_target,
    string_tuple_constant,
)
from repro.analyze.registry import rule
from repro.errors import ReproError


def test_builtin_rule_ids_are_registered():
    assert {"CNT001", "DET001", "DOC001", "PRT001",
            "RTE001"} <= set(rule_ids())


def test_duplicate_rule_id_rejected():
    with pytest.raises(ReproError, match="duplicate rule id"):

        @rule(id="DET001", name="clone", description="duplicate")
        def check_clone(project):
            return []


def test_bad_severity_rejected():
    with pytest.raises(ReproError, match="unknown severity"):
        rule(id="XXX001", name="x", description="x", severity="fatal")


def test_project_requires_src_repro(tmp_path):
    with pytest.raises(AnalysisError, match="no src/repro package"):
        ProjectIndex(tmp_path)


def test_project_reports_syntax_errors(tmp_path):
    bad = tmp_path / "src" / "repro" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def oops(:\n")
    with pytest.raises(AnalysisError, match="cannot parse"):
        ProjectIndex(tmp_path)


def test_project_module_lookup_and_prefix_iteration(tree):
    root = tree({
        "src/repro/memsim/routes.py": "ROUTE_X = 1\n",
        "src/repro/memsim/backends/hw.py": "X = 1\n",
        "src/repro/graph/gen.py": "Y = 2\n",
    })
    project = ProjectIndex(root)
    assert project.get("repro.memsim.routes") is not None
    assert project.get("repro.missing") is None
    names = [m.name for m in project.iter_modules("repro.memsim")]
    assert names == [
        "repro.memsim.backends.hw", "repro.memsim.routes",
    ]
    assert len(list(project.iter_modules())) == 4  # incl. __init__


def _parse(src):
    return ast.parse(textwrap.dedent(src))


def test_alias_resolution_variants():
    tree = _parse("""\
        import time
        import numpy as np
        from datetime import datetime
        """)
    aliases = import_aliases(tree)
    call = ast.parse("np.random.rand(3)").body[0].value
    assert resolve_call_target(call.func, aliases) == "numpy.random.rand"
    call = ast.parse("datetime.now()").body[0].value
    assert resolve_call_target(call.func, aliases) == "datetime.datetime.now"
    call = ast.parse("time.time()").body[0].value
    assert resolve_call_target(call.func, aliases) == "time.time"


def test_module_constant_unwraps_frozenset():
    tree = _parse("READABLE = frozenset({1, 2})\n")
    value, lineno = module_constant(tree, "READABLE")
    assert value == {1, 2}
    assert lineno == 1
    assert module_constant(tree, "MISSING") == (None, 0)


def test_string_tuple_constant():
    tree = _parse('NAMES = ("a", "b")\nNOT_STRINGS = (1, 2)\n')
    assert string_tuple_constant(tree, "NAMES") == {"a", "b"}
    assert string_tuple_constant(tree, "NOT_STRINGS") == set()
    assert string_tuple_constant(tree, "MISSING") == set()
