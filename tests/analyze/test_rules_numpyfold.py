"""NPY001: bincount/add.at accumulators must be explicit 64-bit."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def npy(root):
    result = run_battery(root, rules=["NPY001"])
    return [f for f in result.findings if f.rule == "NPY001"]


def test_bad_fixture_flags_narrow_accumulators():
    findings = npy(fixture_tree("bad_numpyfold"))
    assert len(findings) == 2
    by_line = {f.line: f for f in findings}
    assert "np.bincount fold" in by_line[8].message
    assert "np.add.at" in by_line[14].message
    for f in findings:
        assert f.path == "src/repro/memsim/hist.py"


def test_int64_accumulator_is_clean(tree):
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/hist.py": """\
            import numpy as np


            def fold(events, nbins):
                hist = np.zeros(nbins, dtype=np.int64)
                hist += np.bincount(events, minlength=nbins)
                return hist


            def scatter(idx, vals, length):
                acc = np.zeros(length, dtype=np.uint64)
                np.add.at(acc, idx, vals)
                return acc
            """,
    })
    assert npy(root) == []


def test_float_zeros_default_dtype_is_wide(tree):
    # np.zeros with no dtype is float64 — wide by construction.
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/hist.py": """\
            import numpy as np


            def fold(weights, nbins, events):
                hist = np.zeros(nbins)
                hist += np.bincount(events, weights=weights, minlength=nbins)
                return hist
            """,
    })
    assert npy(root) == []


def test_dtype_inherited_through_zeros_like(tree):
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/hist.py": """\
            import numpy as np


            def fold(events, nbins):
                base = np.zeros(nbins, dtype=np.int64)
                hist = np.zeros_like(base)
                hist += np.bincount(events, minlength=nbins)
                return hist
            """,
    })
    assert npy(root) == []


def test_narrow_attribute_accumulator_is_flagged(tree):
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/stats.py": """\
            import numpy as np


            class BinStats:
                def __init__(self, nbins):
                    self._hist = np.zeros(nbins, dtype=np.int32)

                def fold(self, events):
                    self._hist += np.bincount(events, minlength=len(self._hist))
            """,
    })
    findings = npy(root)
    assert len(findings) == 1
    assert "narrow dtype" in findings[0].message


def test_unknown_width_is_flagged_with_distinct_message(tree):
    # A parameter of unknown dtype: the rule can't prove 64-bit width.
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/hist.py": """\
            import numpy as np


            def fold(hist, events, nbins):
                hist += np.bincount(events, minlength=nbins)
                return hist
            """,
    })
    findings = npy(root)
    assert len(findings) == 1
    assert "cannot be determined statically" in findings[0].message


def test_noqa_keeps_a_justified_narrow_fold(tree):
    root = tree({
        "src/repro/memsim/__init__.py": "",
        "src/repro/memsim/hist.py": """\
            import numpy as np


            def fold(events, nbins):
                hist = np.zeros(nbins, dtype=np.int32)
                hist += np.bincount(events, minlength=nbins)  # repro: noqa[NPY001] -- nbins < 2**31 by construction
                return hist
            """,
    })
    result = run_battery(root, rules=["NPY001"])
    assert [f.rule for f in result.findings] == []
    assert [f.rule for f in result.suppressed] == ["NPY001"]
