"""The battery over this checkout: clean now, loud when tampered with.

The tamper tests copy ``src/repro`` into a scratch checkout, break one
invariant the way a careless edit would, and assert the battery's exit
code flips to 1 with the right rule — proving the gate actually guards
the invariants it claims to.
"""

import shutil
from pathlib import Path

import pytest

from repro.analyze import run_battery

from tests.analyze.conftest import REPO_ROOT


def test_battery_is_clean_on_this_checkout():
    result = run_battery(REPO_ROOT)
    assert result.findings == [], "\n".join(
        f.format() for f in result.findings
    )
    assert result.ok
    assert result.exit_code() == 0


def test_battery_rules_cover_the_advertised_families():
    result = run_battery(REPO_ROOT)
    ids = {info.id for info in result.rules}
    assert {"DET001", "CNT001", "RTE001", "PRT001", "DOC001",
            "SUP001", "ENV001", "RAC001", "EXC001", "NPY001",
            "SCH001"} <= ids


@pytest.fixture
def scratch_src(tmp_path):
    """A copy of this repo's src tree (no docs → doc rules stay quiet)."""
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        tmp_path / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    # Sanity: the untampered copy passes, so any finding below is
    # caused by the tamper itself.
    assert run_battery(tmp_path).ok
    return tmp_path


def _rules_fired(root: Path):
    result = run_battery(root)
    assert result.exit_code() == 1
    return {f.rule for f in result.findings}


def test_deleting_a_reported_counter_trips_cnt001(scratch_src):
    # coherence_invalidations is reported ONLY through as_dict — the
    # counters the timeline snapshot or the attribution fold also carry
    # would stay conserved through those surfaces after this tamper.
    stats = scratch_src / "src/repro/memsim/stats.py"
    text = stats.read_text()
    needle = (
        '            "coherence_invalidations":'
        ' self.coherence_invalidations,\n'
    )
    assert needle in text
    stats.write_text(text.replace(needle, ""))
    assert "CNT001" in _rules_fired(scratch_src)


def test_unregistering_a_backend_trips_prt001(scratch_src):
    omega = scratch_src / "src/repro/memsim/backends/omega.py"
    text = omega.read_text()
    needle = '@register_backend("omega")\n'
    assert needle in text
    omega.write_text(text.replace(needle, ""))
    assert "PRT001" in _rules_fired(scratch_src)


def test_wall_clock_in_replay_trips_det001(scratch_src):
    replay = scratch_src / "src/repro/memsim/replay.py"
    with replay.open("a") as fh:
        fh.write(
            "\n\ndef _leak_host_time():\n"
            "    import time\n"
            "    return time.time()\n"
        )
    assert "DET001" in _rules_fired(scratch_src)


def test_dropping_the_route_accounting_trips_rte001(scratch_src):
    omega = scratch_src / "src/repro/memsim/backends/omega.py"
    text = omega.read_text()
    needle = '        idx = np.flatnonzero(routes == ROUTE_SRCBUF_HIT)\n'
    assert needle in text
    omega.write_text(text.replace(needle, ""))
    assert "RTE001" in _rules_fired(scratch_src)


def test_ambient_env_read_trips_env001(scratch_src):
    ledger = scratch_src / "src/repro/obs/ledger.py"
    with ledger.open("a") as fh:
        fh.write(
            "\n\ndef _ambient_ledger():\n"
            "    import os\n"
            "    return os.environ.get('REPRO_LEDGER')\n"
        )
    assert "ENV001" in _rules_fired(scratch_src)


def test_snapshotting_a_ghost_counter_trips_cnt001(scratch_src):
    timeline = scratch_src / "src/repro/obs/timeline.py"
    text = timeline.read_text()
    needle = '    "l1_hits",\n'
    assert needle in text
    timeline.write_text(text.replace(needle, '    "l1_hitz",\n'))
    assert "CNT001" in _rules_fired(scratch_src)


def test_dropping_the_job_manager_lock_trips_rac001(scratch_src):
    # The careless edit: the manifest write in the worker thread loses
    # its lock region but keeps its indentation.
    jobs = scratch_src / "src/repro/serve/jobs.py"
    text = jobs.read_text()
    needle = "        with self._lock:\n            job.manifest = manifest\n"
    assert needle in text
    jobs.write_text(text.replace(
        needle, "        if True:\n            job.manifest = manifest\n"
    ))
    assert "RAC001" in _rules_fired(scratch_src)


def test_builtin_raise_in_library_code_trips_exc001(scratch_src):
    metrics = scratch_src / "src/repro/obs/metrics.py"
    with metrics.open("a") as fh:
        fh.write(
            "\n\ndef _reject(value):\n"
            "    raise ValueError(value)\n"
        )
    assert "EXC001" in _rules_fired(scratch_src)


def test_narrowing_the_replay_accumulator_trips_npy001(scratch_src):
    replay = scratch_src / "src/repro/memsim/replay.py"
    text = replay.read_text()
    needle = "        counts = np.zeros(ncores, dtype=np.int64)\n"
    assert needle in text
    replay.write_text(text.replace(
        needle, "        counts = np.zeros(ncores, dtype=np.int32)\n"
    ))
    assert "NPY001" in _rules_fired(scratch_src)


def test_new_manifest_block_without_gating_trips_sch001(scratch_src):
    # scratch_src ships no docs tree, so only the KNOWN_BLOCKS half of
    # the sync check can fire — which is exactly the tampered half.
    report = scratch_src / "src/repro/core/report.py"
    text = report.read_text()
    needle = '            "telemetry": self.telemetry(),\n'
    assert needle in text
    report.write_text(text.replace(
        needle, '            "zz_new": 0,\n' + needle
    ))
    assert "SCH001" in _rules_fired(scratch_src)
