"""DOC001: flags, env vars and version constants match the docs."""

from repro.analyze import run_battery

from tests.analyze.conftest import fixture_tree


def doc(root):
    result = run_battery(root, rules=["DOC001"])
    return [f for f in result.findings if f.rule == "DOC001"]


def test_bad_fixture_flags_all_four_drifts():
    findings = doc(fixture_tree("bad_docsync"))
    messages = "\n".join(f.message for f in findings)
    assert "--mystery" in messages
    assert "REPRO_SECRET" in messages
    assert "TRACE_FORMAT_VERSION is 3" in messages
    assert "READABLE_TRACE_VERSIONS is [1, 2, 3]" in messages
    assert len(findings) == 4


def test_documented_flag_and_env_var_are_clean(tree):
    root = tree({
        "src/repro/cli.py": """\
            import argparse

            CACHE_ENV = "REPRO_CACHE_DIR"

            def build_parser():
                parser = argparse.ArgumentParser()
                parser.add_argument("--mystery", help="documented")
                return parser
            """,
        "README.md": (
            "# Readme\n\nUse `--mystery` and set `REPRO_CACHE_DIR`.\n"
        ),
    })
    assert doc(root) == []


def test_silent_when_checkout_ships_no_docs(tree):
    root = tree({
        "src/repro/cli.py": """\
            import argparse

            CACHE_ENV = "REPRO_SECRET"

            def build_parser():
                parser = argparse.ArgumentParser()
                parser.add_argument("--mystery")
                return parser
            """,
    })
    assert doc(root) == []


def test_matching_versions_are_clean(tree):
    root = tree({
        "src/repro/ligra/trace.py": """\
            TRACE_FORMAT_VERSION = 2
            READABLE_TRACE_VERSIONS = frozenset({1, 2})
            """,
        "docs/trace-format.md": (
            "# Trace format\n\n"
            "(`TRACE_FORMAT_VERSION`, currently 2).\n"
            "Readers accept versions (currently {1, 2}).\n"
        ),
    })
    assert doc(root) == []


def test_schema_tag_must_appear_in_trace_doc(tree):
    root = tree({
        "src/repro/core/report.py": """\
            MANIFEST_SCHEMA = "fixture/run-manifest/v9"
            """,
        "docs/trace-format.md": "# Trace format\n\nNo tags here.\n",
    })
    findings = doc(root)
    assert len(findings) == 1
    assert "fixture/run-manifest/v9" in findings[0].message
