"""Incremental lint cache: warm runs reuse work, findings identical."""

import shutil
import time

import pytest

from repro.analyze import dump_json, run_battery, to_sarif

from tests.analyze.conftest import REPO_ROOT, fixture_tree


@pytest.fixture
def checkout(tmp_path):
    """A writable copy of the bad_routing fixture checkout."""
    dst = tmp_path / "checkout"
    shutil.copytree(fixture_tree("bad_routing"), dst)
    return dst


def test_warm_run_hits_the_battery_cache(checkout, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_battery(checkout, cache_dir=cache_dir)
    assert cold.cache.enabled
    assert not cold.cache.battery_hit
    assert cold.cache.modules_reused == 0
    assert cold.cache.describe().startswith("cold")

    warm = run_battery(checkout, cache_dir=cache_dir)
    assert warm.cache.battery_hit
    assert warm.cache.describe().startswith("warm")
    assert warm.findings == cold.findings
    assert warm.suppressed == cold.suppressed


def test_warm_sarif_is_byte_identical(checkout, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_battery(checkout, cache_dir=cache_dir)
    warm = run_battery(checkout, cache_dir=cache_dir)
    cold_doc = dump_json(to_sarif(cold.findings, cold.rules))
    warm_doc = dump_json(to_sarif(warm.findings, warm.rules))
    assert cold_doc == warm_doc


def test_editing_one_module_invalidates_only_it(checkout, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_battery(checkout, cache_dir=cache_dir)
    total = cold.cache.modules_total
    assert total >= 2

    hw = checkout / "src" / "repro" / "memsim" / "backends" / "hw.py"
    hw.write_text(hw.read_text() + "\n# trailing comment\n")

    partial = run_battery(checkout, cache_dir=cache_dir)
    assert not partial.cache.battery_hit
    assert partial.cache.modules_reused == total - 1
    assert partial.cache.describe().startswith("partial")
    # A trailing comment changes the digest, not the findings.
    assert partial.findings == cold.findings


def test_disabled_cache_reports_off(checkout):
    result = run_battery(checkout)
    assert not result.cache.enabled
    assert result.cache.describe() == "off"


def test_rule_selection_is_part_of_the_cache_key(checkout, tmp_path):
    cache_dir = tmp_path / "cache"
    full = run_battery(checkout, cache_dir=cache_dir)
    assert full.findings
    subset = run_battery(checkout, rules=["DOC001"], cache_dir=cache_dir)
    assert not subset.cache.battery_hit
    assert all(f.rule != "RTE001" for f in subset.findings)


def test_corrupt_cache_files_are_ignored(checkout, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_battery(checkout, cache_dir=cache_dir)
    for entry in cache_dir.iterdir():
        entry.write_text("not a cache entry")
    again = run_battery(checkout, cache_dir=cache_dir)
    assert not again.cache.battery_hit
    assert again.findings == cold.findings


@pytest.mark.slow
def test_warm_run_is_at_least_3x_faster_on_the_real_checkout(tmp_path):
    cache_dir = tmp_path / "cache"
    t0 = time.perf_counter()
    cold = run_battery(REPO_ROOT, cache_dir=cache_dir)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_battery(REPO_ROOT, cache_dir=cache_dir)
    t_warm = time.perf_counter() - t0

    assert warm.cache.battery_hit
    assert warm.findings == cold.findings
    assert t_warm * 3 <= t_cold, (
        f"warm {t_warm:.3f}s vs cold {t_cold:.3f}s: expected >=3x"
    )
