"""The ``repro lint`` subcommand: formats, outputs, exit codes."""

import json

from repro.cli import main

from tests.analyze.conftest import REPO_ROOT, fixture_tree

BAD_FIXTURES = (
    "bad_determinism",
    "bad_counters",
    "bad_routing",
    "bad_protocol",
    "bad_docsync",
    "bad_suppression",
    "bad_race",
    "bad_exceptions",
    "bad_numpyfold",
    "bad_schema",
)


def test_lint_exits_zero_on_clean_fixture(capsys):
    code = main(["lint", "--root", str(fixture_tree("clean"))])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_exits_one_on_each_bad_fixture(capsys):
    for name in BAD_FIXTURES:
        code = main(["lint", "--root", str(fixture_tree(name))])
        assert code == 1, f"{name} should fail the battery"
        out = capsys.readouterr().out
        assert "error:" in out, f"{name} printed no findings"


def test_lint_defaults_to_own_checkout(capsys):
    # No --root: lints the checkout the package runs from, which must
    # be clean (the self-check test asserts the same through the API).
    code = main(["lint"])
    capsys.readouterr()
    assert code == 0


def test_lint_json_format(capsys):
    code = main([
        "lint", "--root", str(fixture_tree("bad_determinism")),
        "--format", "json",
    ])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "omega-repro/lint/v2"
    assert doc["summary"]["errors"] == 1
    assert doc["summary"]["baselined"] == 0
    assert doc["baselined"] == []
    assert doc["findings"][0]["rule"] == "DET001"


def test_lint_sarif_to_file(tmp_path, capsys):
    out_path = tmp_path / "lint.sarif"
    code = main([
        "lint", "--root", str(fixture_tree("bad_routing")),
        "--format", "sarif", "--out", str(out_path),
    ])
    assert code == 1
    assert f"report: {out_path}" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert doc["version"] == "2.1.0"
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert "RTE001" in rule_ids and "SUP001" in rule_ids
    assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"RTE001"}


def test_lint_rule_subset(capsys):
    # The determinism fixture is clean under every rule but DET001.
    code = main([
        "lint", "--root", str(fixture_tree("bad_determinism")),
        "--rules", "CNT001,RTE001",
    ])
    capsys.readouterr()
    assert code == 0


def test_lint_unknown_rule_is_usage_error(capsys):
    code = main([
        "lint", "--root", str(REPO_ROOT), "--rules", "NOPE001",
    ])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_bad_root_is_usage_error(tmp_path, capsys):
    code = main(["lint", "--root", str(tmp_path)])
    assert code == 2
    assert "no src/repro package" in capsys.readouterr().err


def test_unknown_rule_fails_before_parsing(tmp_path, capsys):
    # Rule-id resolution happens first: on a root with nothing to
    # parse, the unknown id is still the error that wins.
    code = main(["lint", "--root", str(tmp_path), "--rules", "NOPE001"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "no src/repro package" not in err
