"""Report emitters: text, omega-repro/lint/v2 JSON, SARIF 2.1.0."""

import json

from repro.analyze import (
    LINT_SCHEMA,
    SARIF_VERSION,
    Finding,
    RuleInfo,
    dump_json,
    to_json,
    to_sarif,
    to_text,
)

RULES = [
    RuleInfo(id="DET001", name="determinism", severity="error",
             description="no entropy in the simulator"),
    RuleInfo(id="SUP001", name="suppression-hygiene", severity="error",
             description="well-formed noqa comments"),
]

FINDINGS = [
    Finding(rule="DET001", severity="error", path="src/repro/a.py",
            line=3, message="wall-clock call"),
    Finding(rule="DET001", severity="warning", path="src/repro/b.py",
            line=0, message="whole-file note"),
]


def test_text_report_lines_and_summary():
    text = to_text(FINDINGS, suppressed=2)
    lines = text.splitlines()
    assert lines[0] == "src/repro/a.py:3: DET001 error: wall-clock call"
    assert lines[-1] == (
        "2 finding(s): 1 error(s), 1 warning(s), 2 suppressed,"
        " 0 baselined"
    )


def test_text_report_counts_baselined():
    text = to_text(FINDINGS, suppressed=0, baselined=3)
    assert text.splitlines()[-1].endswith("0 suppressed, 3 baselined")


def test_json_document_shape():
    doc = to_json(FINDINGS, suppressed=[FINDINGS[0]])
    assert doc["schema"] == LINT_SCHEMA
    assert doc["summary"] == {
        "findings": 2, "errors": 1, "warnings": 1, "suppressed": 1,
        "baselined": 0,
    }
    assert doc["baselined"] == []
    assert doc["findings"][0]["rule"] == "DET001"
    assert doc["findings"][0]["line"] == 3


def test_json_document_carries_baselined_findings():
    doc = to_json([], suppressed=[], baselined=[FINDINGS[0]])
    assert doc["summary"]["baselined"] == 1
    assert doc["baselined"][0]["rule"] == "DET001"
    # dump is valid, deterministic JSON
    assert json.loads(dump_json(doc)) == json.loads(dump_json(doc))


def test_sarif_document_validates_against_2_1_0_shape():
    doc = to_sarif(FINDINGS, RULES, tool_version="1.0.0")
    assert doc["version"] == SARIF_VERSION
    assert "sarif-schema-2.1.0.json" in doc["$schema"]
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]

    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["version"] == "1.0.0"
    assert [r["id"] for r in driver["rules"]] == ["DET001", "SUP001"]
    for rule_entry in driver["rules"]:
        assert rule_entry["shortDescription"]["text"]
        assert rule_entry["defaultConfiguration"]["level"] in (
            "error", "warning",
        )

    assert "SRCROOT" in run["originalUriBaseIds"]
    assert len(run["results"]) == len(FINDINGS)
    for result, finding in zip(run["results"], FINDINGS):
        assert result["ruleId"] == finding.rule
        assert result["level"] == finding.severity
        assert result["message"]["text"] == finding.message
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == finding.path
        assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert loc["region"]["startLine"] >= 1
        assert result["ruleIndex"] == 0  # both findings are DET001


def test_sarif_round_trips_through_json():
    doc = to_sarif(FINDINGS, RULES)
    assert json.loads(dump_json(doc)) == doc
