"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "lj"])
        assert args.algorithm == "pagerank"
        assert args.system == "omega"
        assert args.scale == 1.0

    def test_bad_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "lj", "--system", "tpu"]
            )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "sd" in out and "twitter" in out and "USA" in out

    def test_run_baseline(self, capsys):
        code = main(["run", "--dataset", "sd", "--algorithm", "pagerank",
                     "--system", "baseline", "--scale", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "baseline" in out

    def test_run_omega(self, capsys):
        code = main(["run", "--dataset", "sd", "--scale", "0.5"])
        assert code == 0
        assert "hot_fraction" in capsys.readouterr().out

    def test_run_locked(self, capsys):
        assert main(["run", "--dataset", "sd", "--system", "locked",
                     "--scale", "0.5"]) == 0
        assert "locked-cache" in capsys.readouterr().out

    def test_run_graphpim(self, capsys):
        assert main(["run", "--dataset", "sd", "--system", "graphpim",
                     "--scale", "0.5"]) == 0
        assert "graphpim" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "sd", "--scale", "0.5"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--algorithms", "pagerank",
                     "--datasets", "sd", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_undirected_algorithm_symmetrizes(self, capsys):
        assert main(["run", "--dataset", "sd", "--algorithm", "cc",
                     "--scale", "0.5"]) == 0

    def test_weighted_algorithm_gets_weights(self, capsys):
        assert main(["run", "--dataset", "sd", "--algorithm", "sssp",
                     "--scale", "0.5"]) == 0

    def test_unknown_algorithm_errors(self, capsys):
        assert main(["run", "--dataset", "sd", "--algorithm", "apsp"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_unknown_dataset_errors(self, capsys):
        assert main(["run", "--dataset", "facebook"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--dataset", "sd", "--backend", "tpu"])
        assert exc.value.code == 2

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--log-level", "shouty", "datasets"])
        assert exc.value.code == 2


class TestCacheFlags:
    def test_run_cache_dir_miss_then_hit(self, tmp_path, capsys):
        argv = ["run", "--dataset", "sd", "--scale", "0.5",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "trace_cache: miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "trace_cache: hit" in capsys.readouterr().out

    def test_no_cache_silences_cache_line(self, tmp_path, capsys):
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--cache-dir", str(tmp_path), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "trace_cache" not in out
        assert list(tmp_path.iterdir()) == []

    def test_warm_manifest_passes_report_gate(self, tmp_path, capsys):
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        cache = str(tmp_path / "store")
        base = ["run", "--dataset", "sd", "--scale", "0.5",
                "--cache-dir", cache]
        assert main(base + ["--manifest", str(cold)]) == 0
        assert main(base + ["--manifest", str(warm)]) == 0
        capsys.readouterr()
        assert main(["report", str(cold), str(warm),
                     "--tolerance", "0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_accepts_cache_dir(self, tmp_path, capsys):
        assert main(["compare", "--dataset", "sd", "--scale", "0.5",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "speedup" in capsys.readouterr().out


class TestSweepCommand:
    def test_backend_table_and_outputs(self, tmp_path, capsys):
        import csv
        import json

        json_out = tmp_path / "rows.json"
        csv_out = tmp_path / "rows.csv"
        assert main(["sweep", "--algorithms", "pagerank",
                     "--datasets", "sd", "--backends", "baseline,omega",
                     "--scale", "0.5", "--cores", "4",
                     "--json-out", str(json_out),
                     "--csv-out", str(csv_out)]) == 0
        out = capsys.readouterr().out
        assert "backend sweep" in out
        assert "speedup" in out  # OMEGA-vs-baseline ratio table
        doc = json.loads(json_out.read_text())
        assert doc["schema"] == "omega-repro/sweep-results/v1"
        assert len(doc["rows"]) == 2
        assert {r["backend"] for r in doc["rows"]} == {"baseline", "omega"}
        with open(csv_out) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert rows[0]["dataset"] == "sd"

    def test_single_backend_skips_ratio_table(self, capsys):
        assert main(["sweep", "--algorithms", "pagerank",
                     "--datasets", "sd", "--backends", "baseline",
                     "--scale", "0.5", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "backend sweep" in out
        assert "speedup" not in out

    def test_unknown_backend_errors(self, capsys):
        assert main(["sweep", "--algorithms", "pagerank",
                     "--datasets", "sd", "--backends", "tpu"]) == 2
        assert "backend" in capsys.readouterr().err

    def test_workers_match_serial_rows(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "store")
        serial_out = tmp_path / "serial.json"
        par_out = tmp_path / "par.json"
        base = ["sweep", "--algorithms", "pagerank", "--datasets", "sd",
                "--backends", "baseline,omega", "--scale", "0.5",
                "--cores", "4", "--cache-dir", cache]
        assert main(base + ["--json-out", str(serial_out)]) == 0
        assert main(base + ["--workers", "2",
                            "--json-out", str(par_out)]) == 0
        capsys.readouterr()
        serial = json.loads(serial_out.read_text())["rows"]
        parallel = json.loads(par_out.read_text())["rows"]
        drop = ("replay_seconds", "run_seconds", "trace_cache")
        for s, p in zip(serial, parallel):
            assert {k: v for k, v in s.items() if k not in drop} == \
                   {k: v for k, v in p.items() if k not in drop}
        # Second pass ran against a warm store.
        assert all(r["trace_cache"] == "hit" for r in parallel)


class TestObservabilityFlags:
    def test_run_writes_trace_and_timeline(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        timeline = tmp_path / "timeline.json"
        code = main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--trace-out", str(trace),
                     "--metrics-out", str(timeline)])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline:" in out and "trace:" in out
        doc = json.loads(trace.read_text())
        assert max(e["args"]["depth"] for e in doc["traceEvents"]
                   if e["ph"] == "X") >= 3
        tl = json.loads(timeline.read_text())
        assert tl["num_windows"] >= 10

    def test_metrics_out_csv(self, tmp_path):
        timeline = tmp_path / "timeline.csv"
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--metrics-out", str(timeline)]) == 0
        header = timeline.read_text().splitlines()[0]
        assert header.startswith("window,")

    def test_obs_window_controls_window_size(self, tmp_path):
        import json

        timeline = tmp_path / "timeline.json"
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--metrics-out", str(timeline),
                     "--obs-window", "1000"]) == 0
        assert json.loads(timeline.read_text())["window_events"] == 1000

    def test_report_identical_manifests(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--manifest", str(manifest)]) == 0
        assert main(["report", str(manifest), str(manifest)]) == 0
        assert "OK" in capsys.readouterr().out


class TestValidateCommand:
    @pytest.mark.slow
    def test_validate_passes(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["validate", "--scale", "0.25"])
        out = capsys.readouterr().out
        assert "criteria passed" in out
        assert code == 0, out
