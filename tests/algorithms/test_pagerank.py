"""Tests for PageRank over the engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.algorithms.pagerank import pagerank_reference, run_pagerank
from repro.ligra.trace import AccessClass


class TestCorrectness:
    def test_matches_reference_one_iteration(self, small_powerlaw):
        result = run_pagerank(small_powerlaw, trace=False)
        ref = pagerank_reference(small_powerlaw, iterations=1)
        np.testing.assert_allclose(result.value("rank"), ref)

    def test_matches_reference_multi_iteration(self, small_powerlaw):
        result = run_pagerank(small_powerlaw, trace=False, max_iters=5)
        ref = pagerank_reference(small_powerlaw, iterations=5)
        np.testing.assert_allclose(result.value("rank"), ref)

    def test_rank_sums_to_one_ish(self, small_powerlaw):
        # With dangling vertices rank mass can leak below 1 but stays bounded.
        result = run_pagerank(small_powerlaw, trace=False)
        total = result.value("rank").sum()
        assert 0.1 < total <= 1.0 + 1e-9

    def test_hub_ranks_highest(self, tiny_graph):
        result = run_pagerank(tiny_graph, trace=False)
        assert int(result.value("rank").argmax()) == 2

    def test_road_graph(self, small_road):
        result = run_pagerank(small_road, trace=False)
        ref = pagerank_reference(small_road, iterations=1)
        np.testing.assert_allclose(result.value("rank"), ref)

    def test_convergence_stops_early(self, small_ba_undirected):
        result = run_pagerank(
            small_ba_undirected, trace=False, max_iters=200, tolerance=1e-6
        )
        assert result.iterations < 200

    def test_invalid_max_iters(self, tiny_graph):
        with pytest.raises(SimulationError):
            run_pagerank(tiny_graph, max_iters=0)


class TestTrace:
    def test_one_atomic_per_edge(self, tiny_graph):
        result = run_pagerank(tiny_graph)
        assert result.trace.count(atomic=True) == tiny_graph.num_edges

    def test_vtxprop_single_prop(self, tiny_graph):
        result = run_pagerank(tiny_graph)
        # Table II: PageRank has one 8-byte vtxProp.
        assert result.engine.vtxprop_bytes_per_vertex() == 8

    def test_no_src_vtxprop_reads(self, tiny_graph):
        """Table II: PageRank does not read the source's vtxProp — its
        contribution array is cache-resident."""
        tr = run_pagerank(tiny_graph).trace
        from repro.ligra.trace import FLAG_SRC_READ

        src_vtx = ((tr.flags & FLAG_SRC_READ) != 0) & (
            tr.access_class == int(AccessClass.VTXPROP)
        )
        assert int(src_vtx.sum()) == 0

    def test_trace_scales_with_iterations(self, tiny_graph):
        one = run_pagerank(tiny_graph, max_iters=1).trace.num_events
        two = run_pagerank(tiny_graph, max_iters=2).trace.num_events
        assert two > 1.8 * one

    def test_trace_disabled_is_empty(self, tiny_graph):
        result = run_pagerank(tiny_graph, trace=False)
        assert result.trace.num_events == 0
