"""Tests for BFS, SSSP, BC and Radii (traversal-family algorithms)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.algorithms.bc import bc_reference_num_paths, run_bc
from repro.algorithms.bfs import UNVISITED, bfs_reference_levels, run_bfs
from repro.algorithms.radii import radii_reference, run_radii
from repro.algorithms.sssp import run_sssp, sssp_reference
from repro.graph.generators import rmat_graph


class TestBfs:
    def test_levels_match_reference(self, small_powerlaw):
        res = run_bfs(small_powerlaw, source=0, trace=False)
        np.testing.assert_array_equal(
            res.value("level"), bfs_reference_levels(small_powerlaw, 0)
        )

    def test_parents_are_valid(self, small_powerlaw):
        res = run_bfs(small_powerlaw, source=0, trace=False)
        parent = res.value("parent")
        level = res.value("level")
        for v in range(small_powerlaw.num_vertices):
            if level[v] > 0:
                p = int(parent[v])
                assert level[p] == level[v] - 1
                assert v in small_powerlaw.out_neighbors(p)

    def test_source_is_own_parent(self, small_powerlaw):
        res = run_bfs(small_powerlaw, source=3, trace=False)
        assert res.value("parent")[3] == 3

    def test_unreachable_marked(self, tiny_graph):
        res = run_bfs(tiny_graph, source=3, trace=False)
        # From 3 only 2, then 0, 1 are reachable; 4 and 5 are not.
        assert res.value("parent")[4] == UNVISITED
        assert res.value("level")[5] == -1

    def test_default_source_is_max_out_degree(self, tiny_graph):
        res = run_bfs(tiny_graph, trace=False)
        # Vertex 0 has the highest out-degree (2) in tiny_graph.
        assert res.value("level")[0] == 0

    def test_invalid_source(self, tiny_graph):
        with pytest.raises(SimulationError):
            run_bfs(tiny_graph, source=17)

    def test_iterations_equal_max_level(self, small_powerlaw):
        res = run_bfs(small_powerlaw, source=0, trace=False)
        assert res.iterations >= int(res.value("level").max())

    def test_undirected_bfs(self, small_ba_undirected):
        res = run_bfs(small_ba_undirected, source=0, trace=False)
        # Preferential-attachment graphs are connected.
        assert (res.value("level") >= 0).all()


class TestSssp:
    def test_matches_dijkstra(self, small_powerlaw_weighted):
        res = run_sssp(small_powerlaw_weighted, source=0, trace=False)
        np.testing.assert_array_equal(
            res.value("dist"), sssp_reference(small_powerlaw_weighted, 0)
        )

    def test_requires_weights(self, small_powerlaw):
        with pytest.raises(SimulationError, match="weighted"):
            run_sssp(small_powerlaw, source=0)

    def test_source_distance_zero(self, small_powerlaw_weighted):
        res = run_sssp(small_powerlaw_weighted, source=5, trace=False)
        assert res.value("dist")[5] == 0

    def test_visited_tracks_reachable(self, small_powerlaw_weighted):
        res = run_sssp(small_powerlaw_weighted, source=0, trace=False)
        dist = res.value("dist")
        visited = res.value("visited")
        reachable = dist < 2**40
        # Source excepted (marked visited at init).
        np.testing.assert_array_equal(visited.astype(bool), reachable)

    def test_max_rounds_cuts_off(self, small_powerlaw_weighted):
        res = run_sssp(small_powerlaw_weighted, source=0, trace=False, max_rounds=1)
        assert res.iterations == 1

    def test_invalid_source(self, small_powerlaw_weighted):
        with pytest.raises(SimulationError):
            run_sssp(small_powerlaw_weighted, source=-1)

    def test_two_vtxprops(self, small_powerlaw_weighted):
        res = run_sssp(small_powerlaw_weighted, source=0)
        # Table II: SSSP has 2 vtxProp structures, 8 bytes total.
        assert res.engine.vtxprop_bytes_per_vertex() == 8


class TestBc:
    def test_path_counts_match_brandes(self, small_powerlaw):
        res = run_bc(small_powerlaw, source=0, trace=False)
        np.testing.assert_allclose(
            res.value("num_paths"), bc_reference_num_paths(small_powerlaw, 0)
        )

    def test_levels_match_bfs(self, small_powerlaw):
        res = run_bc(small_powerlaw, source=0, trace=False)
        np.testing.assert_array_equal(
            res.value("level"), bfs_reference_levels(small_powerlaw, 0)
        )

    def test_source_has_one_path(self, small_powerlaw):
        res = run_bc(small_powerlaw, source=2, trace=False)
        assert res.value("num_paths")[2] == 1.0

    def test_backward_pass_dependency(self):
        # Path graph 0->1->2: dependency(0)=2, dependency(1)=1.
        from repro.graph.csr import from_edges

        g = from_edges([(0, 1), (1, 2)], num_vertices=3)
        res = run_bc(g, source=0, trace=False, backward_pass=True)
        np.testing.assert_allclose(res.value("dependency"), [2.0, 1.0, 0.0])
        assert res.value("centrality")[0] == 0.0

    def test_backward_pass_diamond(self):
        # Diamond 0->{1,2}->3: two shortest paths through 1 and 2.
        from repro.graph.csr import from_edges

        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], num_vertices=4)
        res = run_bc(g, source=0, trace=False, backward_pass=True)
        np.testing.assert_allclose(res.value("dependency")[1], 0.5)
        np.testing.assert_allclose(res.value("dependency")[2], 0.5)

    def test_invalid_source(self, small_powerlaw):
        with pytest.raises(SimulationError):
            run_bc(small_powerlaw, source=10**6)


class TestRadii:
    def test_estimate_matches_sampled_eccentricity(self, small_powerlaw):
        res = run_radii(small_powerlaw, sample_size=4, seed=1, trace=False)
        expected = radii_reference(small_powerlaw, res.value("sources"))
        assert int(res.value("max_radius")) == expected

    def test_three_vtxprops_twelve_bytes(self, small_powerlaw):
        res = run_radii(small_powerlaw, sample_size=4, seed=1)
        assert res.engine.vtxprop_bytes_per_vertex() == 12

    def test_sample_size_clamped(self, tiny_graph):
        res = run_radii(tiny_graph, sample_size=100, seed=1, trace=False)
        assert len(res.value("sources")) <= tiny_graph.num_vertices

    def test_deterministic_with_seed(self, small_powerlaw):
        a = run_radii(small_powerlaw, sample_size=4, seed=9, trace=False)
        b = run_radii(small_powerlaw, sample_size=4, seed=9, trace=False)
        np.testing.assert_array_equal(a.value("sources"), b.value("sources"))

    def test_sources_have_radius_zero_or_more(self, small_powerlaw):
        res = run_radii(small_powerlaw, sample_size=4, seed=1, trace=False)
        radii = res.value("radii")
        assert (radii[res.value("sources")] >= 0).all()

    def test_empty_graph_rejected(self):
        from repro.graph.csr import from_edges

        with pytest.raises(SimulationError):
            run_radii(from_edges([], num_vertices=0))

    def test_larger_sample_no_smaller_radius(self, small_powerlaw):
        small = run_radii(small_powerlaw, sample_size=2, seed=3, trace=False)
        big = run_radii(small_powerlaw, sample_size=16, seed=3, trace=False)
        assert int(big.value("max_radius")) >= 0
        assert int(small.value("max_radius")) >= 0
