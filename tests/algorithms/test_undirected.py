"""Tests for CC, TC and KC (undirected-graph algorithms)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.algorithms.cc import cc_reference, run_cc
from repro.algorithms.kcore import coreness_reference, run_coreness, run_kcore
from repro.algorithms.tc import run_tc, tc_reference
from repro.graph.csr import from_edges


class TestCc:
    def test_matches_union_find(self, small_ba_undirected):
        res = run_cc(small_ba_undirected, trace=False)
        np.testing.assert_array_equal(
            res.value("labels"), cc_reference(small_ba_undirected)
        )

    def test_component_count(self):
        g = from_edges([(0, 1), (2, 3), (4, 4)], num_vertices=6, directed=False)
        res = run_cc(g, trace=False)
        # {0,1}, {2,3}, {4}, {5} -> 4 components
        assert int(res.value("num_components")) == 4

    def test_labels_are_min_member(self, tiny_undirected):
        res = run_cc(tiny_undirected, trace=False)
        labels = res.value("labels")
        assert labels[0] == labels[1] == labels[2] == labels[3] == 0
        assert labels[4] == labels[5] == 4

    def test_rejects_directed(self, small_powerlaw):
        with pytest.raises(SimulationError, match="undirected"):
            run_cc(small_powerlaw)

    def test_road_components(self, small_road):
        res = run_cc(small_road, trace=False)
        np.testing.assert_array_equal(
            res.value("labels"), cc_reference(small_road)
        )


class TestTc:
    def test_matches_bruteforce(self, small_ba_undirected):
        res = run_tc(small_ba_undirected, trace=False)
        assert int(res.value("total")) == tc_reference(small_ba_undirected)

    def test_triangle_free_graph(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4, directed=False)
        assert int(run_tc(g, trace=False).value("total")) == 0

    def test_single_triangle(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3, directed=False)
        res = run_tc(g, trace=False)
        assert int(res.value("total")) == 1
        np.testing.assert_array_equal(res.value("per_vertex"), [1, 1, 1])

    def test_two_triangles_shared_edge(self, tiny_undirected):
        res = run_tc(tiny_undirected, trace=False)
        assert int(res.value("total")) == 2
        # Vertices 1 and 2 are in both triangles.
        assert res.value("per_vertex")[1] == 2
        assert res.value("per_vertex")[2] == 2

    def test_per_vertex_sums_to_3x_total(self, small_ba_undirected):
        res = run_tc(small_ba_undirected, trace=False)
        assert res.value("per_vertex").sum() == 3 * int(res.value("total"))

    def test_rejects_directed(self, small_powerlaw):
        with pytest.raises(SimulationError, match="undirected"):
            run_tc(small_powerlaw)

    def test_trace_dominated_by_edgelist(self, small_ba_undirected):
        """TC is the paper's compute/scan-bound outlier."""
        from repro.ligra.trace import AccessClass

        tr = run_tc(small_ba_undirected).trace
        edge = tr.count(access_class=AccessClass.EDGELIST)
        vtx = tr.count(access_class=AccessClass.VTXPROP)
        assert edge > vtx


class TestKcore:
    def test_matches_reference_membership(self, small_ba_undirected):
        ref = coreness_reference(small_ba_undirected)
        for k in (2, 3, 4):
            res = run_kcore(small_ba_undirected, k=k, trace=False)
            np.testing.assert_array_equal(res.value("in_core"), ref >= k)

    def test_kcore_of_triangle(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], num_vertices=4,
                       directed=False)
        res = run_kcore(g, k=2, trace=False)
        np.testing.assert_array_equal(
            res.value("in_core"), [True, True, True, False]
        )

    def test_k_zero_keeps_everything(self, small_ba_undirected):
        res = run_kcore(small_ba_undirected, k=0, trace=False)
        assert res.value("in_core").all()

    def test_huge_k_empties_graph(self, small_ba_undirected):
        res = run_kcore(small_ba_undirected, k=10**6, trace=False)
        assert not res.value("in_core").any()

    def test_default_k_produces_work(self, small_ba_undirected):
        res = run_kcore(small_ba_undirected, trace=False)
        assert res.trace.num_events == 0  # trace disabled
        assert res.iterations >= 1

    def test_negative_k_rejected(self, small_ba_undirected):
        with pytest.raises(SimulationError):
            run_kcore(small_ba_undirected, k=-1)

    def test_rejects_directed(self, small_powerlaw):
        with pytest.raises(SimulationError):
            run_kcore(small_powerlaw, k=2)


class TestCoreness:
    def test_matches_reference(self, small_ba_undirected):
        res = run_coreness(small_ba_undirected, trace=False)
        np.testing.assert_array_equal(
            res.value("coreness"), coreness_reference(small_ba_undirected)
        )

    def test_path_graph_coreness_one(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=3, directed=False)
        res = run_coreness(g, trace=False)
        np.testing.assert_array_equal(res.value("coreness"), [1, 1, 1])

    def test_clique_coreness(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        g = from_edges(edges, num_vertices=5, directed=False)
        res = run_coreness(g, trace=False)
        np.testing.assert_array_equal(res.value("coreness"), [4] * 5)
