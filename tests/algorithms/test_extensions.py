"""Tests for the extension algorithms (MIS, label propagation)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graph.csr import from_edges
from repro.algorithms.extensions import (
    label_propagation_reference,
    mis_reference_check,
    run_label_propagation,
    run_mis,
)


class TestMis:
    def test_valid_on_ba_graph(self, small_ba_undirected):
        res = run_mis(small_ba_undirected, trace=False, seed=3)
        assert mis_reference_check(small_ba_undirected, res.value("in_set"))

    def test_valid_on_road_graph(self, small_road):
        res = run_mis(small_road, trace=False, seed=1)
        assert mis_reference_check(small_road, res.value("in_set"))

    def test_triangle_has_one_member(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3,
                       directed=False)
        res = run_mis(g, trace=False)
        assert int(res.value("in_set").sum()) == 1

    def test_edgeless_graph_all_in(self):
        g = from_edges([], num_vertices=5, directed=False)
        res = run_mis(g, trace=False)
        assert res.value("in_set").all()

    def test_deterministic_per_seed(self, small_ba_undirected):
        a = run_mis(small_ba_undirected, trace=False, seed=9)
        b = run_mis(small_ba_undirected, trace=False, seed=9)
        np.testing.assert_array_equal(a.value("in_set"), b.value("in_set"))

    def test_rejects_directed(self, small_powerlaw):
        with pytest.raises(SimulationError, match="undirected"):
            run_mis(small_powerlaw)

    def test_emits_trace(self, small_ba_undirected):
        res = run_mis(small_ba_undirected, trace=True, seed=2)
        assert res.trace.num_events > 0
        assert res.trace.count(atomic=True) > 0

    def test_reference_rejects_non_independent(self, tiny_undirected):
        bad = np.ones(tiny_undirected.num_vertices, dtype=bool)
        assert not mis_reference_check(tiny_undirected, bad)

    def test_reference_rejects_non_maximal(self, tiny_undirected):
        assert not mis_reference_check(
            tiny_undirected, np.zeros(tiny_undirected.num_vertices, bool)
        )


class TestLabelPropagation:
    def test_matches_reference(self, small_powerlaw):
        seeds = [0, 5, 17]
        res = run_label_propagation(small_powerlaw, seeds, trace=False)
        np.testing.assert_array_equal(
            res.value("labels"),
            label_propagation_reference(small_powerlaw, seeds),
        )

    def test_disconnected_components_keep_labels(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=5, directed=False)
        res = run_label_propagation(g, [0, 2], trace=False)
        labels = res.value("labels")
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 1
        assert labels[4] == -1  # unreachable

    def test_min_label_wins_overlap(self):
        # Both seeds reach everything; label 0 must win everywhere.
        g = from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3,
                       directed=False)
        res = run_label_propagation(g, [2, 0], trace=False)
        assert set(res.value("labels").tolist()) == {0}

    def test_seed_claimed_by_smaller_community(self):
        # Seed 1 (community 1) is reachable from seed 0 (community 0).
        g = from_edges([(0, 1), (1, 2)], num_vertices=3)
        res = run_label_propagation(g, [0, 1], trace=False)
        np.testing.assert_array_equal(res.value("labels"), [0, 0, 0])

    def test_requires_seeds(self, small_powerlaw):
        with pytest.raises(SimulationError, match="seed"):
            run_label_propagation(small_powerlaw, [])

    def test_seed_range_checked(self, small_powerlaw):
        with pytest.raises(SimulationError, match="range"):
            run_label_propagation(small_powerlaw, [10**6])

    def test_max_rounds_cuts_off(self, small_powerlaw):
        res = run_label_propagation(
            small_powerlaw, [0], trace=False, max_rounds=1
        )
        assert res.iterations == 1

    def test_runs_through_full_system(self, small_ba_undirected):
        """Extension algorithms replay through the simulator like the
        Table II set (trace -> hierarchy -> timing)."""
        from repro.config import SimConfig
        from repro.memsim.core_model import compute_timing
        from repro.memsim.hierarchy import BaselineHierarchy

        res = run_label_propagation(small_ba_undirected, [0, 1],
                                    num_cores=4)
        out = BaselineHierarchy(
            SimConfig.scaled_baseline(num_cores=4)
        ).replay(res.trace)
        timing = compute_timing(out, SimConfig.scaled_baseline(num_cores=4))
        assert timing.total_cycles > 0
