"""Tests for the algorithm registry and Table II metadata."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.registry import ALGORITHMS, algorithm_names, run_algorithm
from repro.ligra.atomics import AtomicOp


class TestRegistryContents:
    def test_eight_algorithms(self):
        assert len(ALGORITHMS) == 8

    def test_table2_order(self):
        assert algorithm_names() == (
            "pagerank", "bfs", "sssp", "bc", "radii", "cc", "tc", "kc"
        )

    def test_pagerank_row_matches_table2(self):
        row = ALGORITHMS["pagerank"].as_row()
        assert row["atomic operation type"] == "fp add"
        assert row["vtxProp entry size"] == 8
        assert row["#vtxProp"] == 1
        assert row["active-list"] == "no"
        assert row["read src vtx's vtxProp"] == "no"

    def test_radii_row_matches_table2(self):
        row = ALGORITHMS["radii"].as_row()
        assert row["vtxProp entry size"] == 12
        assert row["#vtxProp"] == 3
        assert "or" in row["atomic operation type"]

    def test_sssp_reads_src_and_uses_weights(self):
        info = ALGORITHMS["sssp"]
        assert info.reads_src_vtxprop
        assert info.requires_weights
        assert info.atomic_ops == (AtomicOp.SINT_MIN,)

    def test_undirected_requirements(self):
        for name in ("cc", "tc", "kc"):
            assert ALGORITHMS[name].requires_undirected
        for name in ("pagerank", "bfs", "sssp", "bc", "radii"):
            assert not ALGORITHMS[name].requires_undirected

    def test_qualitative_fractions_match_paper(self):
        assert ALGORITHMS["pagerank"].pct_atomic == "high"
        assert ALGORITHMS["bfs"].pct_atomic == "low"
        assert ALGORITHMS["bc"].pct_atomic == "medium"
        assert ALGORITHMS["tc"].pct_random == "low"


class TestRunAlgorithm:
    def test_unknown_name(self, small_powerlaw):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            run_algorithm("dijkstra", small_powerlaw)

    def test_directed_rejected_for_cc(self, small_powerlaw):
        with pytest.raises(SimulationError, match="undirected"):
            run_algorithm("cc", small_powerlaw)

    def test_unweighted_rejected_for_sssp(self, small_powerlaw):
        with pytest.raises(SimulationError, match="weights"):
            run_algorithm("sssp", small_powerlaw)

    def test_runs_pagerank(self, small_powerlaw):
        res = run_algorithm("pagerank", small_powerlaw, trace=False)
        assert res.name == "pagerank"

    def test_kwargs_forwarded(self, small_powerlaw):
        res = run_algorithm("bfs", small_powerlaw, trace=False, source=3)
        assert res.value("level")[3] == 0

    @pytest.mark.parametrize("name", algorithm_names())
    def test_every_algorithm_runs(
        self, name, small_powerlaw_weighted, small_ba_undirected
    ):
        info = ALGORITHMS[name]
        graph = (
            small_ba_undirected
            if info.requires_undirected
            else small_powerlaw_weighted
        )
        res = run_algorithm(name, graph, num_cores=4, trace=True)
        assert res.trace.num_events > 0

    def test_value_lookup_error(self, small_powerlaw):
        res = run_algorithm("pagerank", small_powerlaw, trace=False)
        with pytest.raises(SimulationError, match="no value"):
            res.value("nonexistent")
