"""End-to-end integration tests: the paper's headline shapes, in miniature.

These run complete baseline-vs-OMEGA comparisons on small dataset
stand-ins and assert the *directional* claims of the evaluation
section (who wins, and roughly how). They are the fast cousins of the
benchmark harness.
"""

import pytest

from repro import SimConfig, compare_systems, load_dataset, run_system
from repro.core.characterization import tmam_breakdown


@pytest.fixture(scope="module")
def lj():
    graph, _ = load_dataset("lj", scale=0.5)
    return graph


@pytest.fixture(scope="module")
def road():
    graph, _ = load_dataset("rCA", scale=0.5)
    return graph


class TestHeadlineShapes:
    def test_pagerank_speedup_on_powerlaw(self, lj):
        cmp = compare_systems(lj, "pagerank", dataset="lj")
        assert cmp.speedup > 1.3

    def test_traffic_reduction_on_powerlaw(self, lj):
        cmp = compare_systems(lj, "pagerank", dataset="lj")
        # Fig 17: on-chip traffic cut by well over 2x.
        assert cmp.traffic_reduction > 1.5

    def test_storage_hit_rate_improves(self, lj):
        cmp = compare_systems(lj, "pagerank", dataset="lj")
        # Fig 15: OMEGA's combined last-level hit rate beats the
        # baseline LLC.
        assert (
            cmp.omega.stats.last_level_hit_rate
            > cmp.baseline.stats.l2_hit_rate
        )

    def test_omega_wins_less_on_road(self, lj, road):
        power = compare_systems(lj, "pagerank", dataset="lj")
        control = compare_systems(road, "pagerank", dataset="rCA")
        # Fig 18: the power-law graph benefits more.
        assert power.speedup > control.speedup

    def test_baseline_memory_bound(self, lj):
        rep = run_system(lj, "pagerank", SimConfig.scaled_baseline())
        assert tmam_breakdown(rep)["memory_bound"] > 0.5

    def test_scratchpads_only_ablation(self, lj):
        """Section X-A: scratchpads without PISCs give much less."""
        full = compare_systems(lj, "pagerank", dataset="lj")
        no_pisc = compare_systems(
            lj,
            "pagerank",
            omega_config=SimConfig.scaled_omega(use_pisc=False),
            dataset="lj",
        )
        assert full.speedup > no_pisc.speedup

    def test_scratchpad_size_sensitivity(self, lj):
        """Fig 19: smaller scratchpads still help, but less."""
        omega = SimConfig.scaled_omega()
        big = compare_systems(lj, "pagerank", omega_config=omega)
        small = compare_systems(
            lj, "pagerank", omega_config=omega.with_scratchpad_bytes(256)
        )
        assert big.speedup >= small.speedup
        assert small.omega.hot_fraction < big.omega.hot_fraction


class TestCrossSystemConsistency:
    def test_same_trace_volume_both_systems(self, lj):
        cmp = compare_systems(lj, "pagerank", dataset="lj")
        # Reordering must not change the amount of algorithmic work.
        assert cmp.omega.trace_events == pytest.approx(
            cmp.baseline.trace_events, rel=0.02
        )

    def test_atomics_conserved(self, lj):
        cmp = compare_systems(lj, "pagerank")
        assert (
            cmp.omega.stats.atomics_total == cmp.baseline.stats.atomics_total
        )

    def test_omega_moves_atomics_to_pisc(self, lj):
        cmp = compare_systems(lj, "pagerank")
        omega = cmp.omega.stats
        assert omega.atomics_offloaded + omega.atomics_on_cores == (
            omega.atomics_total
        )
        assert omega.atomics_offloaded > omega.atomics_on_cores

    def test_functional_results_unaffected_by_simulation(self, lj):
        """The simulated memory system never changes algorithm output."""
        from repro.algorithms.pagerank import pagerank_reference, run_pagerank
        import numpy as np

        res = run_pagerank(lj, trace=True)
        np.testing.assert_allclose(
            res.value("rank"), pagerank_reference(lj, 1)
        )


class TestBfsEndToEnd:
    def test_bfs_speedup(self, lj):
        cmp = compare_systems(lj, "bfs", dataset="lj")
        assert cmp.speedup > 1.0

    def test_bfs_uses_source_buffer_or_dense_scan(self, lj):
        rep = run_system(lj, "bfs", SimConfig.scaled_omega())
        # BFS exercises the dense path: local scratchpad writes dominate
        # remote ones thanks to the matched chunk mapping.
        assert rep.stats.sp_local_accesses > rep.stats.sp_remote_accesses
