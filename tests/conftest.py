"""Shared fixtures: small deterministic graphs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, from_edges
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    road_graph,
)


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """A 6-vertex directed graph with known structure.

    Edges: 0->1, 0->2, 1->2, 2->0, 3->2, 4->2, 5->2 (vertex 2 is the hub).
    """
    return from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (4, 2), (5, 2)],
        num_vertices=6,
    )


@pytest.fixture(scope="session")
def tiny_undirected() -> CSRGraph:
    """A small undirected graph with two triangles sharing an edge."""
    return from_edges(
        [(0, 1), (1, 2), (2, 0), (1, 3), (2, 3), (4, 5)],
        num_vertices=6,
        directed=False,
    )


@pytest.fixture(scope="session")
def small_powerlaw() -> CSRGraph:
    """A ~512-vertex R-MAT graph (power-law, directed)."""
    return rmat_graph(9, edge_factor=8, seed=7)


@pytest.fixture(scope="session")
def small_powerlaw_weighted() -> CSRGraph:
    """A weighted R-MAT graph for SSSP tests."""
    return rmat_graph(8, edge_factor=6, seed=11, weighted=True)


@pytest.fixture(scope="session")
def small_ba_undirected() -> CSRGraph:
    """A small undirected preferential-attachment graph (CC/TC/KC)."""
    return barabasi_albert_graph(150, 3, seed=5, directed=False)


@pytest.fixture(scope="session")
def small_road() -> CSRGraph:
    """A small road-network lattice (non-power-law control)."""
    return road_graph(16, 16, seed=3)


@pytest.fixture(scope="session")
def small_er() -> CSRGraph:
    """A small uniform random graph."""
    return erdos_renyi_graph(200, 1200, seed=13)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)
