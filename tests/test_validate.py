"""Tests for the reproduction self-check."""

import pytest

from repro.validate import Criterion, format_validation, run_validation


class TestCriterion:
    def test_render_pass(self):
        c = Criterion("x", True, 1.5, "> 1")
        assert c.render().startswith("[PASS]")
        assert "1.5" in c.render()

    def test_render_fail(self):
        c = Criterion("x", False, 0.5, "> 1")
        assert c.render().startswith("[FAIL]")


class TestFormat:
    def test_counts_failures(self):
        results = [
            Criterion("a", True, 1, ""),
            Criterion("b", False, 0, ""),
        ]
        out = format_validation(results)
        assert "1/2 criteria passed" in out
        assert "1 FAILED" in out

    def test_all_pass_message(self):
        out = format_validation([Criterion("a", True, 1, "")])
        assert "1/1 criteria passed" in out
        assert "FAILED" not in out


@pytest.mark.slow
class TestRunValidation:
    def test_all_criteria_pass(self):
        results = run_validation(scale=0.5)
        failed = [c.name for c in results if not c.passed]
        assert not failed, f"criteria failed: {failed}"

    def test_progress_callback_invoked(self):
        seen = []
        run_validation(scale=0.25, progress=seen.append)
        assert seen

    def test_criteria_cover_headline_claims(self):
        results = run_validation(scale=0.25)
        names = " ".join(c.name for c in results)
        for keyword in ("speedup", "traffic", "hit rate", "memory-bound",
                        "ablation", "road"):
            assert keyword in names
