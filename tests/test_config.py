"""Tests for system configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    InterconnectConfig,
    ScratchpadConfig,
    SimConfig,
)
from repro.errors import ConfigError


class TestCoreConfig:
    def test_defaults_match_table3(self):
        c = CoreConfig()
        assert c.num_cores == 16
        assert c.freq_ghz == 2.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoreConfig(num_cores=0)
        with pytest.raises(ConfigError):
            CoreConfig(mlp=0)


class TestScratchpadConfig:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadConfig(size_bytes=-1)

    def test_table3_latency(self):
        assert ScratchpadConfig(size_bytes=1024).latency_cycles == 3


class TestDramConfig:
    def test_aggregate_bandwidth(self):
        d = DramConfig(channels=4, bytes_per_cycle_per_channel=6.0)
        assert d.total_bytes_per_cycle == 24.0


class TestInterconnect:
    def test_table3_values(self):
        ic = InterconnectConfig()
        assert ic.remote_latency_cycles == 17
        assert ic.bus_bytes == 16


class TestSimConfig:
    def test_paper_baseline_matches_table3(self):
        cfg = SimConfig.paper_baseline()
        assert cfg.l2_per_core.size_bytes == 2 * 1024 * 1024
        assert cfg.scratchpad.size_bytes == 0
        assert not cfg.use_scratchpad

    def test_paper_omega_matches_table3(self):
        cfg = SimConfig.paper_omega()
        assert cfg.l2_per_core.size_bytes == 1024 * 1024
        assert cfg.scratchpad.size_bytes == 1024 * 1024
        assert cfg.use_scratchpad and cfg.use_pisc and cfg.use_source_buffer

    def test_equal_storage_invariant(self):
        assert (
            SimConfig.paper_baseline().total_onchip_bytes
            == SimConfig.paper_omega().total_onchip_bytes
        )
        assert (
            SimConfig.scaled_baseline().total_onchip_bytes
            == SimConfig.scaled_omega().total_onchip_bytes
        )

    def test_scratchpad_total(self):
        cfg = SimConfig.scaled_omega(num_cores=8, scratchpad_per_core_bytes=1024)
        assert cfg.scratchpad_total_bytes == 8 * 1024

    def test_with_scratchpad_bytes_only_changes_sp(self):
        cfg = SimConfig.scaled_omega()
        new = cfg.with_scratchpad_bytes(4096)
        assert new.scratchpad.size_bytes == 4096
        assert new.l2_per_core == cfg.l2_per_core
        assert new.use_pisc == cfg.use_pisc

    def test_feature_switches(self):
        cfg = SimConfig.scaled_omega(use_pisc=False, use_source_buffer=False)
        assert cfg.use_scratchpad
        assert not cfg.use_pisc
        assert not cfg.use_source_buffer
