"""Tests for Section VII graph slicing."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import from_edges
from repro.graph.slicing import (
    merge_slice_results,
    num_slices_required,
    slice_graph,
    slice_graph_power_law,
)


class TestSliceGraph:
    def test_slices_cover_all_vertices(self, small_powerlaw):
        slices = slice_graph(small_powerlaw, 100)
        assert slices[0].vertex_lo == 0
        assert slices[-1].vertex_hi == small_powerlaw.num_vertices
        for a, b in zip(slices, slices[1:]):
            assert a.vertex_hi == b.vertex_lo

    def test_edges_partitioned_exactly(self, small_powerlaw):
        slices = slice_graph(small_powerlaw, 100)
        total = sum(s.graph.num_edges for s in slices)
        assert total == small_powerlaw.num_edges

    def test_slice_owns_only_its_destinations(self, small_powerlaw):
        for s in slice_graph(small_powerlaw, 128):
            _, dst = s.graph.edge_arrays()
            if len(dst):
                assert dst.min() >= s.vertex_lo
                assert dst.max() < s.vertex_hi

    def test_single_slice_when_large(self, tiny_graph):
        slices = slice_graph(tiny_graph, 1000)
        assert len(slices) == 1
        assert slices[0].num_owned_vertices == tiny_graph.num_vertices

    def test_invalid_size(self, tiny_graph):
        with pytest.raises(GraphError):
            slice_graph(tiny_graph, 0)


class TestPowerLawSlicing:
    def test_fewer_slices_than_plain(self, small_powerlaw):
        plain = slice_graph(small_powerlaw, 64)
        pl = slice_graph_power_law(small_powerlaw, hot_capacity=64)
        assert len(pl) < len(plain)

    def test_five_x_reduction(self):
        # hot_fraction 0.2 -> slices 5x larger -> 5x fewer (paper claim).
        plain = num_slices_required(10000, 100, power_law_aware=False)
        aware = num_slices_required(10000, 100, power_law_aware=True)
        assert plain == 100
        assert aware == 20

    def test_invalid_capacity(self, tiny_graph):
        with pytest.raises(GraphError):
            slice_graph_power_law(tiny_graph, 0)

    def test_num_slices_validates(self):
        with pytest.raises(GraphError):
            num_slices_required(100, 0, False)


class TestMergeAndSemantics:
    def test_sliced_pagerank_scatter_matches_whole(self, small_powerlaw):
        """Per-slice accumulation then merge equals whole-graph result."""
        g = small_powerlaw
        n = g.num_vertices
        contrib = np.random.default_rng(1).random(n)
        src, dst = g.edge_arrays()
        whole = np.zeros(n)
        np.add.at(whole, dst, contrib[src])

        slices = slice_graph(g, 97)
        results = []
        for s in slices:
            part = np.zeros(n)
            ssrc, sdst = s.graph.edge_arrays()
            np.add.at(part, sdst, contrib[ssrc])
            results.append(part)
        merged = merge_slice_results(results, slices)
        np.testing.assert_allclose(merged, whole)

    def test_merge_validates_lengths(self, tiny_graph):
        slices = slice_graph(tiny_graph, 3)
        with pytest.raises(GraphError):
            merge_slice_results([np.zeros(6)], slices)

    def test_merge_empty_rejected(self):
        with pytest.raises(GraphError):
            merge_slice_results([], [])
