"""Tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, from_edges


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(0, [], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_without_edges(self):
        g = CSRGraph(5, [], [])
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.out_degree(4) == 0

    def test_simple_directed(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 7
        assert tiny_graph.directed

    def test_num_input_edges_directed(self, tiny_graph):
        assert tiny_graph.num_input_edges == 7

    def test_undirected_doubles_arcs(self):
        g = CSRGraph(3, [0, 1], [1, 2], directed=False)
        assert g.num_edges == 4
        assert g.num_input_edges == 2

    def test_undirected_self_loop_not_doubled(self):
        g = CSRGraph(2, [0, 0], [0, 1], directed=False)
        # self-loop stored once, the 0-1 edge twice
        assert g.num_edges == 3

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError, match="endpoints"):
            CSRGraph(3, [0, -1], [1, 2])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError, match="endpoints"):
            CSRGraph(3, [0, 1], [1, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError, match="equal length"):
            CSRGraph(3, [0, 1], [1])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphError, match="weights"):
            CSRGraph(3, [0, 1], [1, 2], weights=[1.0])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(-1, [], [])

    def test_edges_with_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(0, [0], [0])

    def test_2d_arrays_rejected(self):
        with pytest.raises(GraphError, match="one-dimensional"):
            CSRGraph(3, [[0, 1]], [[1, 2]])


class TestDegrees:
    def test_out_degrees(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.out_degree(2) == 1
        assert tiny_graph.out_degree(5) == 1

    def test_in_degrees_hub(self, tiny_graph):
        assert tiny_graph.in_degree(2) == 5
        assert tiny_graph.in_degree(1) == 1
        assert tiny_graph.in_degree(3) == 0

    def test_degree_vectors_sum_to_edges(self, small_powerlaw):
        g = small_powerlaw
        assert int(g.out_degrees().sum()) == g.num_edges
        assert int(g.in_degrees().sum()) == g.num_edges

    def test_degree_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.out_degree(6)
        with pytest.raises(GraphError):
            tiny_graph.in_degree(-1)


class TestNeighbors:
    def test_out_neighbors_sorted_by_construction(self, tiny_graph):
        assert sorted(tiny_graph.out_neighbors(0).tolist()) == [1, 2]

    def test_in_neighbors_of_hub(self, tiny_graph):
        assert sorted(tiny_graph.in_neighbors(2).tolist()) == [0, 1, 3, 4, 5]

    def test_edge_ranges_consistent(self, small_powerlaw):
        g = small_powerlaw
        for v in (0, 1, g.num_vertices - 1):
            lo, hi = g.out_edge_range(v)
            assert hi - lo == g.out_degree(v)
            np.testing.assert_array_equal(
                g.out_targets[lo:hi], g.out_neighbors(v)
            )

    def test_in_edge_range(self, tiny_graph):
        lo, hi = tiny_graph.in_edge_range(2)
        assert hi - lo == 5


class TestEdgeIteration:
    def test_edges_iterator_matches_arrays(self, tiny_graph):
        pairs = list(tiny_graph.edges())
        src, dst = tiny_graph.edge_arrays()
        assert pairs == list(zip(src.tolist(), dst.tolist()))

    def test_edge_arrays_roundtrip(self, small_powerlaw):
        src, dst = small_powerlaw.edge_arrays()
        g2 = CSRGraph(small_powerlaw.num_vertices, src, dst)
        assert g2.num_edges == small_powerlaw.num_edges
        np.testing.assert_array_equal(
            g2.out_degrees(), small_powerlaw.out_degrees()
        )


class TestWeights:
    def test_weights_follow_edges(self):
        g = CSRGraph(3, [2, 0, 1], [0, 1, 2], weights=[30.0, 10.0, 20.0])
        # After sorting by src, vertex 0's edge has weight 10.
        lo, hi = g.out_edge_range(0)
        assert g.out_weights[lo] == 10.0

    def test_in_weights_aligned(self):
        g = CSRGraph(3, [0, 1], [2, 2], weights=[5.0, 7.0])
        lo, hi = g.in_edge_range(2)
        in_w = sorted(g.in_weights[lo:hi].tolist())
        assert in_w == [5.0, 7.0]

    def test_unweighted_has_none(self, tiny_graph):
        assert tiny_graph.out_weights is None
        assert not tiny_graph.weighted


class TestRelabel:
    def test_identity_relabel(self, tiny_graph):
        g = tiny_graph.relabel(np.arange(6))
        np.testing.assert_array_equal(g.out_degrees(), tiny_graph.out_degrees())

    def test_swap_relabel_moves_degrees(self, tiny_graph):
        ids = np.array([2, 1, 0, 3, 4, 5])  # swap 0 <-> 2
        g = tiny_graph.relabel(ids)
        assert g.in_degree(0) == tiny_graph.in_degree(2)
        assert g.in_degree(2) == tiny_graph.in_degree(0)

    def test_relabel_preserves_edge_count(self, small_powerlaw, rng):
        perm = rng.permutation(small_powerlaw.num_vertices)
        g = small_powerlaw.relabel(perm)
        assert g.num_edges == small_powerlaw.num_edges

    def test_relabel_non_bijection_rejected(self, tiny_graph):
        with pytest.raises(GraphError, match="bijection"):
            tiny_graph.relabel([0, 0, 1, 2, 3, 4])

    def test_relabel_wrong_length_rejected(self, tiny_graph):
        with pytest.raises(GraphError, match="length"):
            tiny_graph.relabel([0, 1, 2])

    def test_relabel_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.relabel([0, 1, 2, 3, 4, 6])

    def test_relabel_undirected_keeps_symmetry(self, tiny_undirected, rng):
        perm = rng.permutation(tiny_undirected.num_vertices)
        g = tiny_undirected.relabel(perm)
        assert not g.directed
        np.testing.assert_array_equal(g.out_degrees(), g.in_degrees())


class TestAsUndirected:
    def test_directed_becomes_symmetric(self, tiny_graph):
        g = tiny_graph.as_undirected()
        assert not g.directed
        np.testing.assert_array_equal(g.out_degrees(), g.in_degrees())

    def test_already_undirected_is_identity(self, tiny_undirected):
        assert tiny_undirected.as_undirected() is tiny_undirected

    def test_dedupes_reciprocal_arcs(self):
        g = CSRGraph(2, [0, 1], [1, 0]).as_undirected()
        # one undirected edge -> two arcs
        assert g.num_edges == 2


class TestFromEdges:
    def test_infers_num_vertices(self):
        g = from_edges([(0, 3), (1, 2)])
        assert g.num_vertices == 4

    def test_explicit_num_vertices(self):
        g = from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10

    def test_empty_iterable(self):
        g = from_edges([])
        assert g.num_vertices == 0
