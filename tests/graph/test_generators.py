"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.degree import top_fraction_connectivity
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    rmat_graph,
    road_graph,
)


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        g = rmat_graph(7, edge_factor=4, seed=1)
        assert g.num_vertices == 128

    def test_edge_count(self):
        g = rmat_graph(6, edge_factor=5, seed=1)
        assert g.num_edges == 5 * 64

    def test_deterministic_with_seed(self):
        a = rmat_graph(7, edge_factor=4, seed=42)
        b = rmat_graph(7, edge_factor=4, seed=42)
        np.testing.assert_array_equal(a.out_targets, b.out_targets)

    def test_different_seeds_differ(self):
        a = rmat_graph(7, edge_factor=4, seed=1)
        b = rmat_graph(7, edge_factor=4, seed=2)
        assert not np.array_equal(a.out_targets, b.out_targets)

    def test_skewed_parameters_give_power_law(self):
        g = rmat_graph(10, edge_factor=8, a=0.57, seed=3)
        assert top_fraction_connectivity(g.in_degrees()) > 60.0

    def test_uniform_parameters_give_flat_graph(self):
        g = rmat_graph(10, edge_factor=8, a=0.25, b=0.25, c=0.25, seed=3)
        assert top_fraction_connectivity(g.in_degrees()) < 45.0

    def test_weighted(self):
        g = rmat_graph(6, edge_factor=4, seed=1, weighted=True)
        assert g.weighted
        assert g.out_weights.min() >= 1
        assert g.out_weights.max() < 64

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            rmat_graph(-1)

    def test_invalid_edge_factor(self):
        with pytest.raises(GraphError):
            rmat_graph(4, edge_factor=0)

    def test_invalid_quadrants(self):
        with pytest.raises(GraphError):
            rmat_graph(4, a=0.8, b=0.2, c=0.2)

    def test_scale_zero(self):
        g = rmat_graph(0, edge_factor=3, seed=1)
        assert g.num_vertices == 1


class TestBarabasiAlbert:
    def test_shape(self):
        g = barabasi_albert_graph(100, 4, seed=1)
        assert g.num_vertices == 100
        # m seed edges plus m per subsequent vertex
        assert g.num_input_edges == (100 - 5) * 4 + 4

    def test_deterministic(self):
        a = barabasi_albert_graph(80, 3, seed=9)
        b = barabasi_albert_graph(80, 3, seed=9)
        np.testing.assert_array_equal(a.out_targets, b.out_targets)

    def test_undirected_symmetric(self):
        g = barabasi_albert_graph(80, 3, seed=9, directed=False)
        np.testing.assert_array_equal(g.out_degrees(), g.in_degrees())

    def test_skew_grows_with_hubward_fraction(self):
        lo = barabasi_albert_graph(500, 4, seed=2, hubward_fraction=0.5)
        hi = barabasi_albert_graph(500, 4, seed=2, hubward_fraction=1.0)
        assert top_fraction_connectivity(
            hi.in_degrees()
        ) > top_fraction_connectivity(lo.in_degrees())

    def test_no_parallel_edges_from_one_vertex(self):
        g = barabasi_albert_graph(60, 3, seed=4, directed=False)
        for v in range(g.num_vertices):
            nbrs = g.out_neighbors(v).tolist()
            assert len(nbrs) == len(set(nbrs))

    def test_rejects_m_zero(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)

    def test_rejects_bad_hubward_fraction(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 2, hubward_fraction=1.5)

    def test_weighted(self):
        g = barabasi_albert_graph(50, 2, seed=1, weighted=True)
        assert g.weighted


class TestErdosRenyi:
    def test_shape(self):
        g = erdos_renyi_graph(100, 500, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 500

    def test_no_skew(self):
        g = erdos_renyi_graph(1000, 8000, seed=2)
        # Uniform graphs have connectivity close to the 20% mark.
        assert top_fraction_connectivity(g.in_degrees()) < 40.0

    def test_zero_edges(self):
        g = erdos_renyi_graph(10, 0, seed=1)
        assert g.num_edges == 0

    def test_rejects_bad_args(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(0, 5)
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, -1)


class TestRoad:
    def test_shape(self):
        g = road_graph(10, 8, seed=1)
        assert g.num_vertices == 80
        assert not g.directed

    def test_low_max_degree(self):
        g = road_graph(20, 20, seed=1)
        assert g.out_degrees().max() <= 10

    def test_not_power_law(self):
        g = road_graph(30, 30, seed=2)
        assert top_fraction_connectivity(g.in_degrees()) < 45.0

    def test_drop_fraction_reduces_edges(self):
        dense = road_graph(20, 20, drop_fraction=0.0, seed=1)
        sparse = road_graph(20, 20, drop_fraction=0.4, seed=1)
        assert sparse.num_edges < dense.num_edges

    def test_no_drop_no_shortcuts_is_exact_lattice(self):
        g = road_graph(5, 4, drop_fraction=0.0, shortcut_fraction=0.0, seed=1)
        # 4*(5-1) horizontal + 5*(4-1) vertical, stored both ways
        assert g.num_input_edges == 4 * 4 + 5 * 3

    def test_weighted(self):
        g = road_graph(6, 6, seed=1, weighted=True)
        assert g.weighted

    def test_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            road_graph(0, 5)

    def test_rejects_bad_drop(self):
        with pytest.raises(GraphError):
            road_graph(5, 5, drop_fraction=1.0)

    def test_rejects_bad_shortcut(self):
        with pytest.raises(GraphError):
            road_graph(5, 5, shortcut_fraction=-0.1)
