"""Tests for the Section VI reordering algorithms."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import from_edges
from repro.graph.reorder import (
    apply_order,
    reorder_by_degree,
    reorder_nth_element,
    reorder_slashburn,
    reorder_top_fraction,
    slashburn_order,
)


def _in_degrees_monotone(graph) -> bool:
    deg = graph.in_degrees()
    return bool(np.all(deg[:-1] >= deg[1:]))


class TestApplyOrder:
    def test_roundtrip_degrees(self, small_powerlaw, rng):
        order = rng.permutation(small_powerlaw.num_vertices)
        g, new_ids = apply_order(small_powerlaw, order)
        # Vertex order[0] became id 0.
        assert new_ids[order[0]] == 0
        assert g.in_degree(0) == small_powerlaw.in_degree(int(order[0]))

    def test_wrong_length_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            apply_order(tiny_graph, np.arange(3))


class TestFullSort:
    def test_monotone_in_degree(self, small_powerlaw):
        g, _ = reorder_by_degree(small_powerlaw, key="in")
        assert _in_degrees_monotone(g)

    def test_monotone_out_degree(self, small_powerlaw):
        g, _ = reorder_by_degree(small_powerlaw, key="out")
        deg = g.out_degrees()
        assert bool(np.all(deg[:-1] >= deg[1:]))

    def test_total_degree_key(self, small_powerlaw):
        g, _ = reorder_by_degree(small_powerlaw, key="total")
        deg = g.in_degrees() + g.out_degrees()
        assert bool(np.all(deg[:-1] >= deg[1:]))

    def test_unknown_key_rejected(self, small_powerlaw):
        with pytest.raises(GraphError, match="unknown degree key"):
            reorder_by_degree(small_powerlaw, key="banana")

    def test_preserves_edge_count(self, small_powerlaw):
        g, _ = reorder_by_degree(small_powerlaw)
        assert g.num_edges == small_powerlaw.num_edges


class TestTopFraction:
    def test_hot_prefix_sorted(self, small_powerlaw):
        g, _ = reorder_top_fraction(small_powerlaw, fraction=0.2)
        n = g.num_vertices
        k = int(np.ceil(0.2 * n))
        head = g.in_degrees()[:k]
        assert bool(np.all(head[:-1] >= head[1:]))

    def test_hot_prefix_dominates_tail(self, small_powerlaw):
        g, _ = reorder_top_fraction(small_powerlaw, fraction=0.2)
        n = g.num_vertices
        k = int(np.ceil(0.2 * n))
        deg = g.in_degrees()
        assert deg[:k].min() >= deg[k:].max()

    def test_invalid_fraction(self, small_powerlaw):
        with pytest.raises(GraphError):
            reorder_top_fraction(small_powerlaw, fraction=0.0)


class TestNthElement:
    def test_partition_property(self, small_powerlaw):
        g, _ = reorder_nth_element(small_powerlaw, fraction=0.2)
        n = g.num_vertices
        k = int(np.ceil(0.2 * n))
        deg = g.in_degrees()
        assert deg[:k].min() >= deg[k:].max()

    def test_stable_within_sides(self):
        # Degrees: v2 and v4 are hubs; others keep input order.
        g = from_edges(
            [(0, 2), (1, 2), (3, 2), (0, 4), (1, 4), (3, 4), (0, 1)],
            num_vertices=5,
        )
        rg, new_ids = reorder_nth_element(g, fraction=0.4)
        # Hot side: vertices 2 and 4 in input order.
        assert new_ids[2] == 0 and new_ids[4] == 1
        # Cold side keeps 0 < 1 < 3 order.
        assert new_ids[0] < new_ids[1] < new_ids[3]

    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        rg, ids = reorder_nth_element(g)
        assert rg.num_vertices == 0
        assert len(ids) == 0

    def test_road_locality_preserved(self, small_road):
        """Cold-side neighbors keep small id deltas (the stable-partition
        property the road graphs depend on)."""
        rg, new_ids = reorder_nth_element(small_road, fraction=0.2)
        n = small_road.num_vertices
        k = int(np.ceil(0.2 * n))
        src, dst = rg.edge_arrays()
        cold = (src >= k) & (dst >= k)
        deltas = np.abs(src[cold] - dst[cold])
        # Lattice neighbors were at distance 1 or width (16); the holes
        # punched by hot extraction shift things only slightly.
        assert np.median(deltas) <= 2 * 16

    def test_invalid_fraction(self, small_powerlaw):
        with pytest.raises(GraphError):
            reorder_nth_element(small_powerlaw, fraction=2.0)


class TestSlashburn:
    def test_order_is_permutation(self, small_ba_undirected):
        order = slashburn_order(small_ba_undirected, k=2)
        assert sorted(order.tolist()) == list(
            range(small_ba_undirected.num_vertices)
        )

    def test_first_vertex_is_top_hub(self, small_ba_undirected):
        order = slashburn_order(small_ba_undirected, k=1)
        total = (
            small_ba_undirected.in_degrees() + small_ba_undirected.out_degrees()
        )
        assert total[order[0]] == total.max()

    def test_reorder_roundtrip(self, small_ba_undirected):
        g, _ = reorder_slashburn(small_ba_undirected, k=2)
        assert g.num_edges == small_ba_undirected.num_edges

    def test_invalid_k(self, small_ba_undirected):
        with pytest.raises(GraphError):
            slashburn_order(small_ba_undirected, k=0)

    def test_handles_disconnected_graph(self):
        g = from_edges(
            [(0, 1), (2, 3), (4, 5)], num_vertices=6, directed=False
        )
        order = slashburn_order(g, k=1)
        assert sorted(order.tolist()) == list(range(6))
