"""Tests for edge-list and DIMACS I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import from_edges
from repro.graph.io import load_dimacs, load_edge_list, save_dimacs, save_edge_list


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path, small_powerlaw):
        path = tmp_path / "g.txt"
        save_edge_list(small_powerlaw, path)
        g = load_edge_list(path)
        assert g.num_edges == small_powerlaw.num_edges
        np.testing.assert_array_equal(
            g.out_degrees(), small_powerlaw.out_degrees()
        )

    def test_roundtrip_weighted(self, tmp_path, small_powerlaw_weighted):
        path = tmp_path / "g.txt"
        save_edge_list(small_powerlaw_weighted, path)
        g = load_edge_list(path)
        assert g.weighted
        assert g.out_weights.sum() == pytest.approx(
            small_powerlaw_weighted.out_weights.sum()
        )

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# middle\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, num_vertices=100)
        assert g.num_vertices == 100

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = load_edge_list(path)
        assert g.num_vertices == 0

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            load_edge_list(path)

    def test_non_integer_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(path)

    def test_bad_weight(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError, match="non-numeric"):
            load_edge_list(path)

    def test_mixed_weighted_unweighted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.5\n1 2\n")
        with pytest.raises(GraphFormatError, match="mixed"):
            load_edge_list(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(GraphFormatError, match=":2"):
            load_edge_list(path)


class TestDimacs:
    def test_roundtrip(self, tmp_path, small_powerlaw_weighted):
        path = tmp_path / "g.gr"
        save_dimacs(small_powerlaw_weighted, path)
        g = load_dimacs(path)
        assert g.num_vertices == small_powerlaw_weighted.num_vertices
        assert g.num_edges == small_powerlaw_weighted.num_edges

    def test_unweighted_export_defaults_weight_one(self, tmp_path, tiny_graph):
        path = tmp_path / "g.gr"
        save_dimacs(tiny_graph, path)
        g = load_dimacs(path)
        assert g.weighted
        assert set(g.out_weights.tolist()) == {1.0}

    def test_parses_comments(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c comment\np sp 3 2\na 1 2 5\na 2 3 7\n")
        g = load_dimacs(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_one_based_ids(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 1 2 4\n")
        g = load_dimacs(path)
        assert g.out_degree(0) == 1

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 4\n")
        with pytest.raises(GraphFormatError, match="missing"):
            load_dimacs(path)

    def test_zero_based_id_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 0 1 4\n")
        with pytest.raises(GraphFormatError, match="1-based"):
            load_dimacs(path)

    def test_bad_record_type(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\nx 1 2 4\n")
        with pytest.raises(GraphFormatError, match="unknown record"):
            load_dimacs(path)

    def test_bad_problem_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p max 2 1\n")
        with pytest.raises(GraphFormatError, match="bad problem"):
            load_dimacs(path)
