"""Tests for degree analytics and the Table I characterization."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import from_edges
from repro.graph.degree import (
    GraphCharacterization,
    characterize,
    degree_histogram,
    is_power_law,
    power_law_exponent,
    top_fraction_connectivity,
)


class TestTopFractionConnectivity:
    def test_uniform_degrees(self):
        # All equal: top 20% hold exactly 20%.
        deg = np.full(100, 5)
        assert top_fraction_connectivity(deg) == pytest.approx(20.0)

    def test_single_hub(self):
        deg = np.zeros(10, dtype=int)
        deg[3] = 100
        assert top_fraction_connectivity(deg) == pytest.approx(100.0)

    def test_perfect_80_20(self):
        deg = np.zeros(10, dtype=int)
        deg[:2] = 40  # top 20% of 10 vertices hold 80 of 100 edges
        deg[2:] = 2.5  # truncated to int
        deg[2:] = 2
        total = deg.sum()
        expected = 100.0 * 80 / total
        assert top_fraction_connectivity(deg) == pytest.approx(expected)

    def test_empty_degrees(self):
        assert top_fraction_connectivity(np.zeros(0, dtype=int)) == 0.0

    def test_all_zero_degrees(self):
        assert top_fraction_connectivity(np.zeros(5, dtype=int)) == 0.0

    def test_fraction_one_covers_everything(self):
        deg = np.array([1, 2, 3, 4])
        assert top_fraction_connectivity(deg, fraction=1.0) == pytest.approx(100.0)

    def test_invalid_fraction(self):
        with pytest.raises(GraphError):
            top_fraction_connectivity(np.array([1, 2]), fraction=0.0)
        with pytest.raises(GraphError):
            top_fraction_connectivity(np.array([1, 2]), fraction=1.5)

    def test_monotone_in_fraction(self, small_powerlaw):
        deg = small_powerlaw.in_degrees()
        values = [
            top_fraction_connectivity(deg, f) for f in (0.05, 0.1, 0.2, 0.5)
        ]
        assert values == sorted(values)


class TestIsPowerLaw:
    def test_rmat_is_power_law(self, small_powerlaw):
        assert is_power_law(small_powerlaw)

    def test_road_is_not(self, small_road):
        assert not is_power_law(small_road)

    def test_uniform_is_not(self, small_er):
        assert not is_power_law(small_er)


class TestHistogramAndExponent:
    def test_histogram_counts(self):
        hist = degree_histogram(np.array([0, 1, 1, 3]))
        np.testing.assert_array_equal(hist, [1, 2, 0, 1])

    def test_histogram_empty(self):
        assert len(degree_histogram(np.zeros(0, dtype=int))) == 0

    def test_exponent_of_powerlaw_in_typical_range(self, small_powerlaw):
        alpha = power_law_exponent(small_powerlaw.in_degrees())
        assert 1.2 < alpha < 4.0

    def test_exponent_nan_for_tiny_input(self):
        assert np.isnan(power_law_exponent(np.array([0])))


class TestCharacterize:
    def test_row_fields(self, small_powerlaw):
        ch = characterize(small_powerlaw, "test")
        assert isinstance(ch, GraphCharacterization)
        row = ch.as_row()
        assert row["name"] == "test"
        assert row["type"] == "dir."
        assert row["power law"] == "yes"

    def test_edge_count_uses_input_edges(self, tiny_undirected):
        ch = characterize(tiny_undirected)
        assert ch.num_edges == tiny_undirected.num_input_edges

    def test_road_flagged_non_power_law(self, small_road):
        assert characterize(small_road).power_law is False

    def test_undirected_in_equals_out(self, tiny_undirected):
        ch = characterize(tiny_undirected)
        assert ch.in_degree_connectivity == pytest.approx(
            ch.out_degree_connectivity
        )
