"""Tests for the Table I dataset stand-in registry."""

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.degree import characterize


class TestRegistry:
    def test_all_twelve_present(self):
        assert len(DATASETS) == 12

    def test_table1_order(self):
        assert dataset_names()[:3] == ("sd", "ap", "rmat")
        assert dataset_names()[-3:] == ("rPA", "rCA", "USA")

    def test_power_law_filter(self):
        pl = dataset_names(power_law=True)
        npl = dataset_names(power_law=False)
        assert set(npl) == {"rPA", "rCA", "USA"}
        assert len(pl) + len(npl) == 12

    def test_road_specs_undirected(self):
        for name in ("rPA", "rCA", "USA"):
            assert not DATASETS[name].directed

    def test_paper_sizes_recorded(self):
        assert DATASETS["twitter"].paper_edges_m == 1468


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            load_dataset("lj", scale=0)

    def test_deterministic(self):
        a, _ = load_dataset("sd", scale=0.5)
        b, _ = load_dataset("sd", scale=0.5)
        assert a.num_edges == b.num_edges

    def test_seed_override_changes_graph(self):
        a, _ = load_dataset("sd", scale=0.5)
        b, _ = load_dataset("sd", scale=0.5, seed=99)
        assert a.in_degrees().tolist() != b.in_degrees().tolist()

    def test_scale_shrinks(self):
        big, _ = load_dataset("lj", scale=0.5)
        small, _ = load_dataset("lj", scale=0.25)
        assert small.num_vertices < big.num_vertices

    def test_weighted(self):
        g, _ = load_dataset("sd", scale=0.25, weighted=True)
        assert g.weighted

    @pytest.mark.parametrize("name", ["sd", "rmat", "lj", "wiki"])
    def test_power_law_standins_are_power_law(self, name):
        g, spec = load_dataset(name, scale=0.5)
        ch = characterize(g, name)
        assert ch.power_law, f"{name} lost its power-law structure"

    @pytest.mark.parametrize("name", ["rPA", "rCA"])
    def test_road_standins_are_not_power_law(self, name):
        g, _ = load_dataset(name, scale=1.0)
        assert not characterize(g, name).power_law

    def test_directedness_matches_spec(self):
        for name in ("lj", "ap", "rCA"):
            g, spec = load_dataset(name, scale=0.25)
            assert g.directed == spec.directed

    def test_connectivity_tracks_paper_ordering(self):
        """More-skewed paper datasets should produce more-skewed stand-ins."""
        ic, _ = load_dataset("ic", scale=0.25)
        orkut, _ = load_dataset("orkut", scale=0.25)
        ic_con = characterize(ic).in_degree_connectivity
        orkut_con = characterize(orkut).in_degree_connectivity
        assert ic_con > orkut_con

    def test_relative_sizes_preserved(self):
        lj, _ = load_dataset("lj", scale=0.25)
        uk, _ = load_dataset("uk", scale=0.25)
        assert uk.num_vertices > 2 * lj.num_vertices
