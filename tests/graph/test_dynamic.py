"""Tests for the dynamic-graph substrate (Section IX)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import from_edges
from repro.graph.dynamic import (
    DynamicGraph,
    hot_set,
    hot_set_overlap,
    preferential_edges,
    uniform_edges,
)


class TestDynamicGraph:
    def test_snapshot_roundtrip(self, small_powerlaw):
        dyn = DynamicGraph(small_powerlaw)
        snap = dyn.snapshot()
        assert snap.num_edges == small_powerlaw.num_edges
        np.testing.assert_array_equal(
            snap.in_degrees(), small_powerlaw.in_degrees()
        )

    def test_undirected_roundtrip(self, tiny_undirected):
        dyn = DynamicGraph(tiny_undirected)
        snap = dyn.snapshot()
        assert not snap.directed
        assert snap.num_edges == tiny_undirected.num_edges

    def test_add_edges(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        dyn.add_edges([0, 1], [3, 4])
        snap = dyn.snapshot()
        assert snap.num_edges == tiny_graph.num_edges + 2
        assert dyn.edges_added == 2

    def test_add_vertices(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        first = dyn.add_vertices(2)
        assert first == 6
        dyn.add_edges([0], [7])
        assert dyn.snapshot().num_vertices == 8

    def test_add_out_of_range_rejected(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        with pytest.raises(GraphError, match="out of range"):
            dyn.add_edges([0], [99])

    def test_add_mismatched_lengths(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        with pytest.raises(GraphError):
            dyn.add_edges([0, 1], [2])

    def test_weightedness_must_match(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        with pytest.raises(GraphError, match="weighted"):
            dyn.add_edges([0], [1], weights=[2.5])

    def test_remove_edges(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        removed = dyn.remove_edges([0, 3], [1, 2])
        assert removed == 2
        snap = dyn.snapshot()
        assert snap.num_edges == tiny_graph.num_edges - 2
        assert 1 not in snap.out_neighbors(0)

    def test_remove_nonexistent_is_noop(self, tiny_graph):
        dyn = DynamicGraph(tiny_graph)
        assert dyn.remove_edges([5], [0]) == 0

    def test_remove_one_of_parallel_arcs(self):
        g = from_edges([(0, 1), (0, 1)], num_vertices=2)
        dyn = DynamicGraph(g)
        assert dyn.remove_edges([0], [1]) == 1
        assert dyn.snapshot().num_edges == 1

    def test_negative_vertex_count(self, tiny_graph):
        with pytest.raises(GraphError):
            DynamicGraph(tiny_graph).add_vertices(-1)


class TestHotSet:
    def test_hot_set_size(self, small_powerlaw):
        hs = hot_set(small_powerlaw, fraction=0.2)
        assert len(hs) == int(np.ceil(0.2 * small_powerlaw.num_vertices))

    def test_hot_set_contains_max(self, small_powerlaw):
        hs = hot_set(small_powerlaw)
        assert int(small_powerlaw.in_degrees().argmax()) in hs.tolist()

    def test_overlap_identity(self, small_powerlaw):
        assert hot_set_overlap(small_powerlaw, small_powerlaw) == 1.0

    def test_overlap_empty_graph(self):
        g = from_edges([], num_vertices=0)
        assert hot_set_overlap(g, g) == 1.0

    def test_preferential_growth_keeps_hot_set(self, small_powerlaw):
        dyn = DynamicGraph(small_powerlaw)
        src, dst = preferential_edges(small_powerlaw,
                                      small_powerlaw.num_edges // 2, seed=1)
        dyn.add_edges(src, dst)
        overlap = hot_set_overlap(small_powerlaw, dyn.snapshot())
        assert overlap > 0.8

    def test_uniform_churn_erodes_more(self, small_powerlaw):
        m = small_powerlaw.num_edges * 2
        pref = DynamicGraph(small_powerlaw)
        s, d = preferential_edges(small_powerlaw, m, seed=1)
        pref.add_edges(s, d)
        unif = DynamicGraph(small_powerlaw)
        s, d = uniform_edges(small_powerlaw, m, seed=1)
        unif.add_edges(s, d)
        assert hot_set_overlap(
            small_powerlaw, pref.snapshot()
        ) >= hot_set_overlap(small_powerlaw, unif.snapshot())

    def test_generators_validate(self, small_powerlaw):
        with pytest.raises(GraphError):
            preferential_edges(small_powerlaw, -1)
        with pytest.raises(GraphError):
            uniform_edges(small_powerlaw, -1)
