"""Guard the runnable examples against bit-rot."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesCompile:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert "quickstart" in names
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                           doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_main_guard_and_docstring(self, path):
        text = path.read_text()
        assert '__name__ == "__main__"' in text
        assert text.lstrip().startswith(("#!/usr/bin/env python3", '"""'))


@pytest.mark.slow
class TestExamplesRun:
    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout
