"""Property tests: the vectorized pre-pass matches the scalar models.

The replay engine's batch stage must agree, event for event, with the
scalar implementations it replaced: region classification with
``AddressSpace.classify``, hot/home columns with ``ScratchpadMapping``'s
scalar methods, flag decoding with direct bit tests, and the O(1)
stream detector with a naive linear-scan reference of the same 16-head
round-robin scheme.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.ligra.trace import (
    AccessClass,
    AddressSpace,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_UPDATE,
    FLAG_WRITE,
    TraceBuilder,
)
from repro.memsim.geometry import BankGeometry
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.prepass import (
    StreamDetector,
    classify_regions,
    precompute,
)

CLASSES = (AccessClass.VTXPROP, AccessClass.EDGELIST, AccessClass.NGRAPH)


def _space(sizes):
    space = AddressSpace()
    for i, size in enumerate(sizes):
        space.allocate(f"r{i}", size, CLASSES[i % len(CLASSES)])
    return space


class TestClassifyRegions:
    @given(
        st.lists(st.integers(0, 3000), min_size=0, max_size=6),
        st.lists(st.integers(0, 1 << 22), min_size=1, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_classify(self, sizes, offsets):
        space = _space(sizes)
        addrs = np.asarray(offsets, dtype=np.int64) + 0x1000_0000 - 4096
        got = classify_regions(space.regions, addrs)
        for addr, cls in zip(addrs.tolist(), got.tolist()):
            assert cls == int(space.classify(addr))

    def test_first_region_wins_overlap(self):
        from repro.ligra.trace import Region

        regions = [
            Region("a", 0, 100, AccessClass.VTXPROP),
            Region("b", 50, 100, AccessClass.EDGELIST),
        ]
        got = classify_regions(regions, np.array([60]))
        assert got[0] == int(AccessClass.VTXPROP)


def _random_trace(rng, n, num_cores, space):
    builder = TraceBuilder()
    regions = space.regions
    for _ in range(n):
        region = regions[rng.integers(0, len(regions))]
        addr = int(region.base) + int(
            rng.integers(0, max(1, region.size + 64))
        )
        builder.append(
            core=int(rng.integers(0, num_cores)),
            addr=np.array([addr]),
            size=int(rng.integers(1, 17)),
            access_class=region.access_class,
            write=bool(rng.integers(0, 2)),
            atomic=bool(rng.integers(0, 2)),
            src_read=bool(rng.integers(0, 2)),
            update=bool(rng.integers(0, 2)),
            vertex=int(rng.integers(-1, 500)),
        )
    return builder.build()


class TestPrecompute:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_models(self, seed):
        rng = np.random.default_rng(seed)
        config = SimConfig.scaled_omega()
        num_cores = config.core.num_cores
        space = _space([512, 2048, 1024])
        trace = _random_trace(rng, 60, num_cores, space)
        mapping = ScratchpadMapping(num_cores, hot_capacity=128,
                                    chunk_size=32)
        pre = precompute(trace, config, mapping=mapping)
        geo = BankGeometry(num_cores, config.l1.line_bytes)

        for i in range(trace.num_events):
            flags = int(trace.flags[i])
            assert pre.write[i] == bool(flags & FLAG_WRITE)
            assert pre.atomic[i] == bool(flags & FLAG_ATOMIC)
            assert pre.src_read[i] == bool(flags & FLAG_SRC_READ)
            assert pre.update[i] == bool(flags & FLAG_UPDATE)
            line = geo.line_of(int(trace.addr[i]))
            assert pre.lines[i] == line
            assert pre.banks[i] == geo.bank_of(line)
            assert pre.bank_keys[i] == geo.bank_key_of(line)
            assert pre.nbytes[i] == min(int(trace.size[i]), 8)
            vertex = int(trace.vertex[i])
            is_vtx = (
                int(trace.access_class[i]) == int(AccessClass.VTXPROP)
            )
            assert pre.vtxprop[i] == is_vtx
            assert pre.hot[i] == (is_vtx and mapping.is_hot(vertex))
            assert pre.home[i] == mapping.home(vertex)
            assert pre.local[i] == (
                mapping.home(vertex) == int(trace.core[i])
            )

    def test_no_mapping_gives_inert_columns(self):
        config = SimConfig.scaled_baseline()
        space = _space([256])
        rng = np.random.default_rng(0)
        trace = _random_trace(rng, 20, config.core.num_cores, space)
        pre = precompute(trace, config, mapping=None)
        assert not pre.hot.any()
        assert (pre.home == -1).all()
        assert not pre.local.any()


class _NaiveStreamDetector:
    """Reference 16-head detector: literal linear scan, as in the seed."""

    def __init__(self, num_cores, num_heads=16):
        self.num_heads = num_heads
        self._heads = [[-2] * num_heads for _ in range(num_cores)]
        self._next = [0] * num_cores

    def observe(self, core, line):
        heads = self._heads[core]
        for slot in range(self.num_heads):
            if heads[slot] + 1 == line:
                heads[slot] = line
                return True
        slot = self._next[core]
        heads[slot] = line
        self._next[core] = (slot + 1) % self.num_heads
        return False


class TestStreamDetector:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 40)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_reference(self, events):
        fast = StreamDetector(num_cores=4)
        naive = _NaiveStreamDetector(num_cores=4)
        for core, line in events:
            assert fast.observe(core, line) == naive.observe(core, line)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 40)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_batch_flags_equals_observe(self, events):
        seq = StreamDetector(num_cores=4)
        batch = StreamDetector(num_cores=4)
        cores = np.array([c for c, _ in events])
        lines = np.array([ln for _, ln in events])
        expected = np.array(
            [seq.observe(c, ln) for c, ln in events], dtype=bool
        )
        got = batch.flags(cores, lines)
        assert (got == expected).all()

    def test_sequential_run_prefetches_after_first(self):
        det = StreamDetector(num_cores=1)
        flags = [det.observe(0, line) for line in range(10)]
        assert flags[0] is False
        assert all(flags[1:])
