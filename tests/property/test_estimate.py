"""Property and calibration tests for the analytic replay estimator.

Two layers, matching :mod:`repro.memsim.estimate`'s accuracy story:

- **Conservation invariants** hold for any workload on any backend —
  events partition exactly across routes, cache-level counters nest
  (L2 outcomes partition the predicted L1 misses), rates stay in
  [0, 1], and the estimate is bitwise deterministic. Route-derived
  counts must equal the real replay's *exactly*, because routing is a
  pure function of the trace and backend state.
- **Calibration bounds** pin the reuse-gap model's error against the
  real kernel on the paper's PageRank workload. These are the
  documented validity envelope (docs/performance.md), deliberately
  loose enough to survive workload-generator tweaks but tight enough
  to catch a broken model.
"""

import numpy as np
import pytest

from repro.algorithms.registry import run_algorithm
from repro.graph.generators import rmat_graph
from repro.memsim.estimate import estimate_replay, predict_slot_hits
from repro.memsim.routes import (
    ROUTE_CACHE,
    ROUTE_LOCKED,
    ROUTE_PIM,
    ROUTE_SRCBUF_HIT,
)

from .test_kernel_parity import NCORES, all_backend_factories

BACKENDS = ["baseline", "omega", "locked", "graphpim", "dynamic"]


@pytest.fixture(scope="module")
def workload():
    graph = rmat_graph(8, edge_factor=6, seed=7)
    result = run_algorithm("pagerank", graph, num_cores=NCORES,
                          chunk_size=32, trace=True)
    ranges = [(p.start_addr, p.region.end) for p in result.engine.vtx_props]
    bpv = result.engine.vtxprop_bytes_per_vertex()
    return result.trace, ranges, bpv, graph.num_vertices


class TestConservationInvariants:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_counters_partition(self, workload, name):
        factories = all_backend_factories(workload)
        est = estimate_replay(factories[name](), workload[0])
        assert est.events == workload[0].num_events
        # Routed counts + cache events cover every unmasked event.
        assert sum(est.route_counts.values()) <= est.events
        routed = (est.cache_events + est.sp_plain + est.sp_rmw
                  + est.offloads + est.srcbuf_hits + est.locked_events
                  + est.pim_events)
        assert routed == sum(est.route_counts.values())
        # Cache-level nesting: L1 outcomes partition the cache events,
        # L2 outcomes partition the predicted L1 misses.
        assert est.l1_hits + est.l1_misses == est.cache_events
        assert est.l2_hits + est.l2_misses == est.l1_misses
        assert est.dram_read_bytes >= est.dram_write_bytes >= 0
        for rate in (est.l1_hit_rate, est.l2_hit_rate,
                     est.sp_fraction, est.offload_fraction):
            assert 0.0 <= rate <= 1.0
        # as_dict is the prune namespace: numeric, and consistent with
        # the dataclass fields it flattens.
        d = est.as_dict()
        assert d["cache_events"] == est.cache_events
        assert d["dram_bytes"] == est.dram_read_bytes + est.dram_write_bytes
        assert all(isinstance(v, (int, float)) for v in d.values())

    @pytest.mark.parametrize("name", BACKENDS)
    def test_route_shares_exact_vs_replay(self, workload, name):
        """Routing is stateless w.r.t. the cache: exact, not modeled."""
        factories = all_backend_factories(workload)
        est = estimate_replay(factories[name](), workload[0])
        out = factories[name]().replay(workload[0])
        # Both fire-and-forget scratchpad offloads and GraphPIM's
        # in-memory atomics land in the same replay counter.
        assert est.offloads + est.pim_events == out.stats.atomics_offloaded
        assert est.sp_plain == (out.stats.sp_plain_local
                                + out.stats.sp_plain_remote)
        assert est.srcbuf_hits == out.stats.srcbuf_hits
        assert est.route_counts.get(int(ROUTE_SRCBUF_HIT), 0) == \
            est.srcbuf_hits

    def test_backend_routes_differ(self, workload):
        """Each specialized backend diverts events the baseline sends
        to the cache — the estimator must see those routes."""
        factories = all_backend_factories(workload)
        base = estimate_replay(factories["baseline"](), workload[0])
        assert base.route_counts == {int(ROUTE_CACHE): base.events}
        omega = estimate_replay(factories["omega"](), workload[0])
        assert omega.sp_events > 0
        assert omega.cache_events < base.cache_events
        locked = estimate_replay(factories["locked"](), workload[0])
        assert locked.route_counts.get(int(ROUTE_LOCKED), 0) > 0
        pim = estimate_replay(factories["graphpim"](), workload[0])
        assert pim.route_counts.get(int(ROUTE_PIM), 0) > 0

    @pytest.mark.parametrize("name", ["baseline", "omega"])
    def test_deterministic(self, workload, name):
        factories = all_backend_factories(workload)
        a = estimate_replay(factories[name](), workload[0])
        b = estimate_replay(factories[name](), workload[0])
        assert a.as_dict() == b.as_dict()
        assert a.route_counts == b.route_counts


class TestPredictSlotHits:
    def test_fully_associative_reuse(self):
        # One slot, ways=2: key 5 re-touched with one intervening
        # access hits; with two intervening accesses misses.
        slots = np.zeros(7, dtype=np.int64)
        keys = np.array([5, 1, 5, 1, 2, 3, 5], dtype=np.int64)
        out = predict_slot_hits(slots, keys, ways=2)
        assert out.tolist() == [
            False, False, True, True, False, False, False,
        ]

    def test_distinct_slots_never_interact(self):
        slots = np.array([0, 1, 0, 1], dtype=np.int64)
        keys = np.array([5, 5, 5, 5], dtype=np.int64)
        out = predict_slot_hits(slots, keys, ways=8)
        assert out.tolist() == [False, False, True, True]

    def test_degenerate_inputs(self):
        empty = np.array([], dtype=np.int64)
        assert predict_slot_hits(empty, empty, 4).tolist() == []
        one = np.array([0], dtype=np.int64)
        assert predict_slot_hits(one, one, 4).tolist() == [False]
        two = np.array([0, 0], dtype=np.int64)
        assert predict_slot_hits(two, two, 0).tolist() == [False, False]


@pytest.fixture(scope="module")
def golden():
    """The paper's headline workload (PageRank on the lj stand-in) for
    baseline and OMEGA — the pair the documented error envelope in
    docs/performance.md is calibrated on."""
    from repro.bench import bench_graph
    from repro.config import SimConfig
    from repro.core.offload import microcode_for_algorithm
    from repro.graph.reorder import reorder_nth_element
    from repro.memsim.engine import BaselineBackend, OmegaBackend
    from repro.memsim.mapping import ScratchpadMapping
    from repro.memsim.scratchpad import hot_capacity_for

    graph, _ = bench_graph("lj")
    bcfg = SimConfig.scaled_baseline()
    ocfg = SimConfig.scaled_omega()
    cores = bcfg.core.num_cores
    plain = run_algorithm("pagerank", graph, num_cores=cores,
                          chunk_size=32, trace=True)
    wgraph, _ = reorder_nth_element(graph, key="in")
    reord = run_algorithm("pagerank", wgraph, num_cores=cores,
                          chunk_size=32, trace=True)
    microcode = microcode_for_algorithm("pagerank")
    hot = hot_capacity_for(
        ocfg.scratchpad_total_bytes,
        reord.engine.vtxprop_bytes_per_vertex(),
        wgraph.num_vertices,
    )
    mapping = ScratchpadMapping(cores, hot, chunk_size=32)
    rp = [(p.start_addr, p.region.end) for p in plain.engine.vtx_props]
    rr = [(p.start_addr, p.region.end) for p in reord.engine.vtx_props]
    return {
        "baseline": (
            lambda: BaselineBackend(bcfg, dram_random_ranges=rp),
            plain.trace,
        ),
        "omega": (
            lambda: OmegaBackend(ocfg, mapping, microcode,
                                 dram_random_ranges=rr),
            reord.trace,
        ),
    }


class TestCalibration:
    """The documented error envelope on the golden lj/PageRank pair.

    Measured at calibration time (see docs/performance.md): L1 hit-rate
    absolute error 0.007 (baseline) / 0.0005 (OMEGA), L2 absolute error
    <= 0.13, DRAM-read relative error 26.6% / 4.5%. The asserted bounds
    leave roughly 2x headroom so generator tweaks don't flake the
    suite, while a broken model (which typically misses by integer
    factors) still fails.
    """

    @pytest.mark.parametrize("name", ["baseline", "omega"])
    def test_l1_hit_rate_within_envelope(self, golden, name):
        make, trace = golden[name]
        est = estimate_replay(make(), trace)
        real = make().replay(trace).stats.l1_hit_rate
        assert abs(est.l1_hit_rate - real) <= 0.03, (est.l1_hit_rate, real)

    @pytest.mark.parametrize("name", ["baseline", "omega"])
    def test_l2_hit_rate_within_envelope(self, golden, name):
        make, trace = golden[name]
        est = estimate_replay(make(), trace)
        real = make().replay(trace).stats.l2_hit_rate
        assert abs(est.l2_hit_rate - real) <= 0.25, (est.l2_hit_rate, real)

    @pytest.mark.parametrize("name", ["baseline", "omega"])
    def test_dram_read_bytes_within_envelope(self, golden, name):
        make, trace = golden[name]
        est = estimate_replay(make(), trace)
        real = make().replay(trace).stats.dram_read_bytes
        assert real > 0
        assert abs(est.dram_read_bytes - real) / real <= 0.5, (
            est.dram_read_bytes, real,
        )
