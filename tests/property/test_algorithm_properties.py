"""Property-based tests: algorithm invariants on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.algorithms.bfs import bfs_reference_levels, run_bfs
from repro.algorithms.cc import cc_reference, run_cc
from repro.algorithms.pagerank import pagerank_reference, run_pagerank
from repro.algorithms.sssp import INF, run_sssp


@st.composite
def random_graphs(draw, directed=True, weighted=False, max_n=25):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=4 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    weights = (
        draw(st.lists(st.integers(1, 20), min_size=m, max_size=m))
        if weighted
        else None
    )
    return CSRGraph(n, src, dst, weights=weights, directed=directed)


class TestBfsProperties:
    @given(random_graphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_levels_match_reference(self, g, data):
        source = data.draw(st.integers(0, g.num_vertices - 1))
        res = run_bfs(g, source=source, num_cores=2, trace=False)
        np.testing.assert_array_equal(
            res.value("level"), bfs_reference_levels(g, source)
        )

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_of_levels(self, g):
        """Levels of adjacent reachable vertices differ by at most 1
        in the edge direction."""
        res = run_bfs(g, source=0, num_cores=2, trace=False)
        level = res.value("level")
        for u, v in g.edges():
            if level[u] >= 0:
                assert level[v] != -1
                assert level[v] <= level[u] + 1


class TestSsspProperties:
    @given(random_graphs(weighted=True), st.data())
    @settings(max_examples=40, deadline=None)
    def test_edge_relaxation_invariant(self, g, data):
        source = data.draw(st.integers(0, g.num_vertices - 1))
        res = run_sssp(g, source=source, num_cores=2, trace=False)
        dist = res.value("dist")
        assert dist[source] == 0
        for i, (u, v) in enumerate(g.edges()):
            if dist[u] < INF:
                lo, hi = g.out_edge_range(u)
        # Relaxed: no edge can shorten any distance further.
        src, dst = g.edge_arrays()
        w = g.out_weights.astype(np.int64)
        reachable = dist[src] < INF
        assert (
            dist[dst[reachable]] <= dist[src[reachable]] + w[reachable]
        ).all()


class TestPagerankProperties:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, g):
        res = run_pagerank(g, num_cores=2, trace=False)
        np.testing.assert_allclose(
            res.value("rank"), pagerank_reference(g, 1), rtol=1e-10
        )

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_ranks_positive_and_bounded(self, g):
        res = run_pagerank(g, num_cores=2, trace=False, max_iters=3)
        rank = res.value("rank")
        assert (rank > 0).all()
        assert rank.sum() <= 1.0 + 1e-9


class TestCcProperties:
    @given(random_graphs(directed=False))
    @settings(max_examples=40, deadline=None)
    def test_matches_union_find(self, g):
        res = run_cc(g, num_cores=2, trace=False)
        np.testing.assert_array_equal(res.value("labels"), cc_reference(g))

    @given(random_graphs(directed=False))
    @settings(max_examples=30, deadline=None)
    def test_edges_within_components(self, g):
        labels = run_cc(g, num_cores=2, trace=False).value("labels")
        for u, v in g.edges():
            assert labels[u] == labels[v]
