"""Property-based tests for buffers, directory, and subsets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ligra.vertex_subset import VertexSubset
from repro.memsim.coherence import Directory
from repro.memsim.srcbuffer import SourceVertexBuffer


class TestSourceBufferProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.lists(st.integers(0, 50), min_size=1, max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_respected(self, capacity, keys):
        buf = SourceVertexBuffer(capacity)
        for key in keys:
            buf.lookup(key)
        assert len(buf) <= capacity

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses(self, keys):
        buf = SourceVertexBuffer(8)
        for key in keys:
            buf.lookup(key)
        assert buf.hits + buf.misses == len(keys)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_oversized_buffer_only_cold_misses(self, keys):
        buf = SourceVertexBuffer(64)
        for key in keys:
            buf.lookup(key)
        assert buf.misses == len(set(keys))

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_immediate_repeat_always_hits(self, keys):
        buf = SourceVertexBuffer(4)
        for key in keys:
            buf.lookup(key)
            assert buf.lookup(key)


class TestDirectoryProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),      # core
                st.integers(0, 10),     # line
                st.booleans(),          # write
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_writer_becomes_sole_sharer(self, ops):
        d = Directory(8)
        owners = {}
        for core, line, write in ops:
            if write:
                d.on_write(line, core)
                owners[line] = core
            else:
                d.on_read(line, core)
        for line, owner in owners.items():
            # After its last write (and any subsequent reads), the
            # owner must still be among the sharers.
            pass  # structural invariant below
        # A fresh write by a new core invalidates everyone else.
        for line in set(line for _, line, _ in ops):
            mask, _ = d.on_write(line, 7)
            follow_up, _ = d.on_write(line, 7)
            assert follow_up == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 5)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sharer_count_bounded_by_cores(self, reads):
        d = Directory(4)
        for core, line in reads:
            d.on_read(line, core)
        for line in set(line for _, line in reads):
            assert 0 <= d.sharers(line) <= 4


class TestVertexSubsetProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(0, 63), max_size=64),
        st.lists(st.integers(0, 63), max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_algebra_matches_python_sets(self, n, a_ids, b_ids):
        a_ids = [v for v in a_ids if v < n]
        b_ids = [v for v in b_ids if v < n]
        a = VertexSubset(n, ids=np.array(a_ids, dtype=np.int64))
        b = VertexSubset(n, ids=np.array(b_ids, dtype=np.int64))
        sa, sb = set(a_ids), set(b_ids)
        assert set(a.union(b)) == sa | sb
        assert set(a.difference(b)) == sa - sb
        assert set(a.intersection(b)) == sa & sb

    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(0, 63), max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_dense_sparse_roundtrip(self, n, ids):
        ids = [v for v in ids if v < n]
        s = VertexSubset(n, ids=np.array(ids, dtype=np.int64))
        back = VertexSubset(n, dense=s.to_dense())
        assert s == back
        assert len(s) == len(set(ids))
