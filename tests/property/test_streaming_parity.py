"""Streamed replay must be bit-identical to in-core replay.

The out-of-core driver (:func:`repro.memsim.replay.run_replay_segments`)
consumes a :class:`~repro.ligra.segments.SegmentedTrace` one bounded
segment at a time, carrying every piece of simulator state — caches,
directory, DRAM open rows, prefetchers, source buffers, PISCs, backend
training state — across segment boundaries, and accumulating float
latencies through the order-invariant
:class:`~repro.memsim.accounting.LatencyLedger`. These tests pin the
headline contract: for *any* trace, *any* segmentation, and *every*
backend, the streamed counters AND the final model state equal the
in-core replay exactly (0 tolerance), including the windowed timeline.
"""

import pytest
from hypothesis import given, settings

import hypothesis.strategies as st

from repro.errors import SimulationError
from repro.ligra.segments import SegmentedTrace
from repro.obs import ReplaySampler

from tests.property.test_kernel_parity import (
    EVENTS,
    all_backend_factories,
    baseline_config,
    events_to_trace,
    snapshot,
    workload,  # noqa: F401  (module fixture, registered by import)
)

from repro.memsim.engine import BaselineBackend

ALL_BACKENDS = ["baseline", "omega", "locked", "graphpim", "dynamic"]


def assert_streamed_parity(make_backend, trace, segment_events,
                           sampler_window=None):
    """Replay in-core and streamed; compare every observable exactly."""
    incore = make_backend()
    out_i = incore.replay(
        trace,
        sampler=(ReplaySampler(sampler_window) if sampler_window else None),
    )
    segments = SegmentedTrace.from_trace(trace, segment_events)
    streamed = make_backend()
    s_s = ReplaySampler(sampler_window) if sampler_window else None
    out_s = streamed.replay_segments(segments, sampler=s_s)
    snap_i, snap_s = snapshot(out_i), snapshot(out_s)
    assert snap_i == snap_s
    # Float latency sums must be EXACT (the ledger makes streamed
    # accumulation order-invariant), not merely close.
    assert snap_i["stats"]["core_mem_latency"] == \
        snap_s["stats"]["core_mem_latency"]
    assert out_s.num_segments == segments.num_segments
    return out_i, out_s, s_s


class TestRandomizedStreamedParity:
    """Hypothesis: any trace, any cut — including one event per segment."""

    @settings(max_examples=40, deadline=None)
    @given(events=EVENTS, segment_events=st.integers(1, 64))
    def test_any_segmentation_matches_in_core(self, events, segment_events):
        trace = events_to_trace(events)
        cfg = baseline_config()
        assert_streamed_parity(
            lambda: BaselineBackend(cfg), trace, segment_events
        )

    @settings(max_examples=15, deadline=None)
    @given(events=EVENTS)
    def test_single_segment_matches_in_core(self, events):
        trace = events_to_trace(events)
        cfg = baseline_config()
        assert_streamed_parity(
            lambda: BaselineBackend(cfg), trace, trace.num_events + 5
        )


class TestAllBackendsStreamedParity:
    """All five backends, one real workload, several segmentations."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    @pytest.mark.parametrize("segment_events", [1000, 4096])
    def test_backend_streamed_parity(self, workload, name,  # noqa: F811
                                     segment_events):
        factories = all_backend_factories(workload)
        trace = workload[0]
        out_i, out_s, _ = assert_streamed_parity(
            factories[name], trace, segment_events
        )
        assert out_s.num_segments > 1
        assert out_i.num_segments == 1

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_backend_single_segment(self, workload, name):  # noqa: F811
        factories = all_backend_factories(workload)
        trace = workload[0]
        _, out_s, _ = assert_streamed_parity(
            factories[name], trace, trace.num_events + 5
        )
        assert out_s.num_segments == 1

    @pytest.mark.parametrize("name", ["baseline", "omega", "dynamic"])
    def test_windowed_timelines_identical(self, workload, name):  # noqa: F811
        """The global window grid survives segment-straddling windows."""
        factories = all_backend_factories(workload)
        trace = workload[0]
        incore = factories[name]()
        s_i = ReplaySampler(4096)
        incore.replay(trace, sampler=s_i)
        # 1000-event segments guarantee several windows straddle a
        # segment boundary (the grids are mutually unaligned).
        _, _, s_s = assert_streamed_parity(
            factories[name], trace, 1000, sampler_window=4096
        )
        cols_i = dict(s_i.timeline().columns)
        cols_s = dict(s_s.timeline().columns)
        cols_i.pop("wall_seconds"), cols_s.pop("wall_seconds")
        assert cols_i == cols_s


class TestStreamedInputContract:
    def test_non_interleaved_archive_rejected(self, workload):  # noqa: F811
        """Per-span interleaving cannot be recovered segment-locally."""
        trace = workload[0]
        segments = SegmentedTrace.from_trace(trace, 1000, interleave=False)
        backend = BaselineBackend(baseline_config())
        with pytest.raises(SimulationError, match="interleaved"):
            backend.replay_segments(segments)

    def test_saved_archive_streams_identically(self, workload,  # noqa: F811
                                               tmp_path):
        """Disk roundtrip: spooled archive == in-memory segmentation."""
        trace = workload[0]
        path = tmp_path / "w.npz"
        SegmentedTrace.from_trace(trace, 1500).save(path)
        with SegmentedTrace.open(path) as segments:
            cfg = baseline_config()
            out_i = BaselineBackend(cfg).replay(trace)
            out_s = BaselineBackend(cfg).replay_segments(segments)
            assert snapshot(out_i) == snapshot(out_s)
