"""Property-based tests for cache, mapping and trace invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.ligra.trace import AccessClass, TraceBuilder
from repro.memsim.cache import Cache
from repro.memsim.mapping import ScratchpadMapping


class TestCacheInvariants:
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=300),
        st.sampled_from([(256, 1), (256, 2), (512, 4)]),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines, geometry):
        size, ways = geometry
        cache = Cache(CacheConfig(size_bytes=size, ways=ways))
        for line in lines:
            cache.access_line(line)
        assert cache.occupancy <= size // 64

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache(CacheConfig(size_bytes=512, ways=2))
        for line in lines:
            cache.access_line(line)
        assert cache.hits + cache.misses == len(lines)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_small_working_set_always_fits(self, lines):
        """Four distinct lines in a 4-line fully-associative set never
        conflict: only cold misses occur."""
        cache = Cache(CacheConfig(size_bytes=256, ways=4))
        for line in lines:
            cache.access_line(line * 4)  # distinct sets? no - force 1 set
        # With 4 ways and at most 4 distinct keys, misses == distinct keys.
        distinct = len({line * 4 for line in lines})
        assert cache.misses == distinct

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_replay_determinism(self, ops):
        a = Cache(CacheConfig(size_bytes=256, ways=2))
        b = Cache(CacheConfig(size_bytes=256, ways=2))
        for line, write in ops:
            assert a.access_line(line, write) == b.access_line(line, write)


class TestMappingInvariants:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_pad_line_pairs_unique(self, cores, capacity, chunk):
        m = ScratchpadMapping(cores, capacity, chunk_size=chunk)
        seen = set()
        for v in range(capacity):
            key = (m.home(v), m.line(v))
            assert key not in seen
            seen.add(key)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_home_in_range(self, cores, capacity, chunk):
        m = ScratchpadMapping(cores, capacity, chunk_size=chunk)
        homes = m.home_many(np.arange(capacity))
        if capacity:
            assert homes.min() >= 0
            assert homes.max() < cores

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=8, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_pads_balanced(self, cores, capacity):
        m = ScratchpadMapping(cores, capacity, chunk_size=1)
        counts = np.bincount(
            m.home_many(np.arange(capacity)), minlength=cores
        )
        assert counts.max() - counts.min() <= 1


class TestTraceInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 1000)),
            min_size=1,
            max_size=100,
        ),
        st.lists(st.integers(0, 99), max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_interleave_is_permutation(self, events, barrier_positions):
        tb = TraceBuilder()
        for core, addr in events:
            tb.append(core, np.array([addr]), 8, AccessClass.VTXPROP)
        tr = tb.build()
        # Inject sorted barrier indices within range.
        tr.barriers = np.array(
            sorted({b for b in barrier_positions if b < len(tr.addr)}),
            dtype=np.int64,
        )
        inter = tr.interleaved()
        assert sorted(
            zip(inter.core.tolist(), inter.addr.tolist())
        ) == sorted(zip(tr.core.tolist(), tr.addr.tolist()))

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 1000)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_interleave_preserves_per_core_order(self, events):
        tb = TraceBuilder()
        for core, addr in events:
            tb.append(core, np.array([addr]), 8, AccessClass.VTXPROP)
        tr = tb.build()
        inter = tr.interleaved()
        for core in range(4):
            orig = tr.addr[tr.core == core].tolist()
            new = inter.addr[inter.core == core].tolist()
            assert orig == new
