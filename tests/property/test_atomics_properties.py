"""Property-based tests for atomic-op semantics (sequential equivalence)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ligra.atomics import AtomicOp, scatter_atomic


@st.composite
def scatter_cases(draw, value_strategy, dtype):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=0, max_value=50))
    idx = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    ops = draw(st.lists(value_strategy, min_size=m, max_size=m))
    init = draw(st.lists(value_strategy, min_size=n, max_size=n))
    return (
        np.array(init, dtype=dtype),
        np.array(idx, dtype=np.int64),
        np.array(ops, dtype=dtype),
    )


ints = st.integers(min_value=-1000, max_value=1000)
uints = st.integers(min_value=0, max_value=1000)


class TestSequentialEquivalence:
    @given(scatter_cases(ints, np.int64))
    @settings(max_examples=60, deadline=None)
    def test_min_scatter(self, case):
        arr, idx, ops = case
        expected = arr.copy()
        for i, o in zip(idx, ops):
            expected[i] = min(expected[i], o)
        scatter_atomic(AtomicOp.SINT_MIN, arr, idx, ops)
        np.testing.assert_array_equal(arr, expected)

    @given(scatter_cases(ints, np.int64))
    @settings(max_examples=60, deadline=None)
    def test_add_scatter(self, case):
        arr, idx, ops = case
        expected = arr.copy()
        for i, o in zip(idx, ops):
            expected[i] += o
        scatter_atomic(AtomicOp.SINT_ADD, arr, idx, ops)
        np.testing.assert_array_equal(arr, expected)

    @given(scatter_cases(uints, np.uint32))
    @settings(max_examples=60, deadline=None)
    def test_or_scatter(self, case):
        arr, idx, ops = case
        expected = arr.copy()
        for i, o in zip(idx, ops):
            expected[i] |= o
        scatter_atomic(AtomicOp.OR, arr, idx, ops)
        np.testing.assert_array_equal(arr, expected)

    @given(scatter_cases(uints, np.uint32))
    @settings(max_examples=60, deadline=None)
    def test_cas_first_writer_wins(self, case):
        arr, idx, ops = case
        sentinel = np.iinfo(np.uint32).max
        arr[:] = sentinel
        expected = arr.copy()
        for i, o in zip(idx, ops):
            if expected[i] == sentinel:
                expected[i] = o
        scatter_atomic(AtomicOp.UINT_CAS, arr, idx, ops)
        np.testing.assert_array_equal(arr, expected)


class TestChangedSet:
    @given(scatter_cases(ints, np.int64))
    @settings(max_examples=60, deadline=None)
    def test_changed_iff_value_changed(self, case):
        arr, idx, ops = case
        before = arr.copy()
        changed = scatter_atomic(AtomicOp.SINT_MIN, arr, idx, ops)
        actually_changed = np.flatnonzero(arr != before)
        np.testing.assert_array_equal(np.sort(changed), actually_changed)

    @given(scatter_cases(ints, np.int64))
    @settings(max_examples=60, deadline=None)
    def test_changed_subset_of_indices(self, case):
        arr, idx, ops = case
        changed = scatter_atomic(AtomicOp.SINT_ADD, arr, idx, ops)
        assert set(changed.tolist()) <= set(idx.tolist())

    @given(scatter_cases(ints, np.int64))
    @settings(max_examples=40, deadline=None)
    def test_min_is_idempotent(self, case):
        arr, idx, ops = case
        scatter_atomic(AtomicOp.SINT_MIN, arr, idx, ops)
        snapshot = arr.copy()
        changed = scatter_atomic(AtomicOp.SINT_MIN, arr, idx, ops)
        np.testing.assert_array_equal(arr, snapshot)
        assert len(changed) == 0
