"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.degree import top_fraction_connectivity
from repro.graph.reorder import (
    reorder_by_degree,
    reorder_nth_element,
    reorder_top_fraction,
)
from repro.graph.slicing import slice_graph


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, src, dst


@st.composite
def graphs(draw, directed=True):
    n, src, dst = draw(edge_lists())
    return CSRGraph(n, src, dst, directed=directed)


class TestCsrInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_arcs(self, spec):
        n, src, dst = spec
        g = CSRGraph(n, src, dst)
        assert int(g.out_degrees().sum()) == g.num_edges
        assert int(g.in_degrees().sum()) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_offsets_monotone(self, spec):
        n, src, dst = spec
        g = CSRGraph(n, src, dst)
        assert (np.diff(g.out_offsets) >= 0).all()
        assert (np.diff(g.in_offsets) >= 0).all()
        assert g.out_offsets[0] == 0
        assert g.out_offsets[-1] == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_in_out_edge_multisets_match(self, spec):
        n, src, dst = spec
        g = CSRGraph(n, src, dst)
        out_pairs = sorted(zip(*g.edge_arrays()))
        in_pairs = sorted(
            (int(s), v)
            for v in range(n)
            for s in g.in_neighbors(v)
        )
        assert out_pairs == in_pairs

    @given(graphs(directed=False))
    @settings(max_examples=40, deadline=None)
    def test_undirected_symmetric_degrees(self, g):
        np.testing.assert_array_equal(g.out_degrees(), g.in_degrees())


class TestRelabelInvariants:
    @given(edge_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_relabel_preserves_degree_multiset(self, spec, rnd):
        n, src, dst = spec
        g = CSRGraph(n, src, dst)
        perm = list(range(n))
        rnd.shuffle(perm)
        g2 = g.relabel(np.array(perm))
        assert sorted(g.in_degrees()) == sorted(g2.in_degrees())
        assert sorted(g.out_degrees()) == sorted(g2.out_degrees())


class TestReorderInvariants:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_full_sort_monotone(self, g):
        rg, _ = reorder_by_degree(g, key="in")
        deg = rg.in_degrees()
        assert (deg[:-1] >= deg[1:]).all()

    @given(graphs(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_nth_element_partition(self, g, fraction):
        rg, _ = reorder_nth_element(g, fraction=fraction)
        k = max(1, int(np.ceil(fraction * g.num_vertices)))
        deg = rg.in_degrees()
        if k < g.num_vertices:
            assert deg[:k].min() >= deg[k:].max()

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_reorderings_preserve_connectivity_metric(self, g):
        """Degree-based relabeling cannot change the degree multiset,
        so top-20% connectivity is invariant."""
        before = top_fraction_connectivity(g.in_degrees())
        rg, _ = reorder_top_fraction(g)
        after = top_fraction_connectivity(rg.in_degrees())
        assert before == after


class TestSlicingInvariants:
    @given(graphs(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_slices_partition_edges(self, g, per_slice):
        slices = slice_graph(g, per_slice)
        assert sum(s.graph.num_edges for s in slices) == g.num_edges
        assert sum(s.num_owned_vertices for s in slices) == g.num_vertices
