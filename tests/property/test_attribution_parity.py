"""Attribution conservation: per-class folds == aggregate stats, exactly.

The attribution subsystem (:mod:`repro.obs.attribution`) promises an
exact conservation invariant: for every backend, every trace, and every
segmentation — including one event per segment — the per-class counter
matrix sums bit-identically (tolerance 0) to the aggregate
:class:`~repro.memsim.stats.MemStats` counters, and the streamed matrix
equals the in-core matrix element for element. These tests pin that
contract with hypothesis traces across all five backends, plus a real
PageRank workload attributed through an actual Region table and degree
split.
"""

import numpy as np
import pytest
from hypothesis import given, settings

import hypothesis.strategies as st

from repro.errors import SimulationError
from repro.graph.degree import degree_classes
from repro.graph.generators import rmat_graph
from repro.ligra.segments import SegmentedTrace
from repro.obs import (
    AttributionAccumulator,
    AttributionSpec,
    ReplaySampler,
)
from repro.obs.attribution import CLASS_NAMES, FIELDS, NUM_CLASSES

from tests.property.test_kernel_parity import (
    EVENTS,
    all_backend_factories,
    baseline_config,
    events_to_trace,
    workload,  # noqa: F401  (module fixture, registered by import)
)

from repro.memsim.engine import BaselineBackend

ALL_BACKENDS = ["baseline", "omega", "locked", "graphpim", "dynamic"]


def fresh_acc(spec=None):
    """An accumulator over a bare spec (no regions: conservation must
    hold no matter how — or how badly — events classify)."""
    return AttributionAccumulator(spec if spec is not None else
                                  AttributionSpec())


def attributed_incore(make_backend, trace, spec=None, sampler_window=None):
    """Replay in-core with attribution; verify conservation; return acc."""
    backend = make_backend()
    acc = fresh_acc(spec)
    sampler = ReplaySampler(sampler_window) if sampler_window else None
    out = backend.replay(trace, sampler=sampler, attribution=acc)
    acc.verify(out.stats, trace.num_events)
    return acc


def attributed_streamed(make_backend, trace, segment_events, spec=None,
                        sampler_window=None):
    """Replay streamed with attribution; verify; return acc."""
    segments = SegmentedTrace.from_trace(trace, segment_events)
    backend = make_backend()
    acc = fresh_acc(spec)
    sampler = ReplaySampler(sampler_window) if sampler_window else None
    out = backend.replay_segments(segments, sampler=sampler,
                                  attribution=acc)
    acc.verify(out.stats, trace.num_events)
    return acc


def assert_attribution_parity(make_backend, trace, segment_events,
                              spec=None, sampler_window=None):
    """In-core and streamed attribution must agree element-for-element."""
    acc_i = attributed_incore(make_backend, trace, spec, sampler_window)
    acc_s = attributed_streamed(make_backend, trace, segment_events, spec,
                                sampler_window)
    assert acc_i.counts.shape == (NUM_CLASSES, len(FIELDS))
    np.testing.assert_array_equal(acc_i.counts, acc_s.counts)
    return acc_i


class TestRandomizedConservation:
    """Hypothesis: any trace, any cut — conservation and stream parity."""

    @settings(max_examples=30, deadline=None)
    @given(events=EVENTS, segment_events=st.integers(1, 64))
    def test_any_segmentation_conserves(self, events, segment_events):
        trace = events_to_trace(events)
        cfg = baseline_config()
        assert_attribution_parity(
            lambda: BaselineBackend(cfg), trace, segment_events
        )

    @settings(max_examples=10, deadline=None)
    @given(events=EVENTS)
    def test_single_event_segments(self, events):
        """The pathological cut: every event is its own segment."""
        trace = events_to_trace(events)
        cfg = baseline_config()
        assert_attribution_parity(lambda: BaselineBackend(cfg), trace, 1)

    @settings(max_examples=10, deadline=None)
    @given(events=EVENTS, segment_events=st.integers(1, 64))
    def test_windowed_replay_conserves(self, events, segment_events):
        """Windowed accounting must not double- or under-fold."""
        trace = events_to_trace(events)
        cfg = baseline_config()
        assert_attribution_parity(
            lambda: BaselineBackend(cfg), trace, segment_events,
            sampler_window=16,
        )

    @settings(max_examples=10, deadline=None)
    @given(events=EVENTS)
    def test_scalar_oracle_conserves(self, events):
        """The REPRO_SCALAR_CACHE reference path fills the record too."""
        trace = events_to_trace(events)
        cfg = baseline_config()

        def make():
            backend = BaselineBackend(cfg)
            backend.force_scalar_cache = True
            return backend

        acc_o = attributed_incore(make, trace)
        acc_k = attributed_incore(lambda: BaselineBackend(cfg), trace)
        np.testing.assert_array_equal(acc_o.counts, acc_k.counts)


class TestAllBackendsConservation:
    """All five backends, one real workload, exact conservation."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    @pytest.mark.parametrize("segment_events", [1000, 4096])
    def test_backend_conserves(self, workload, name,  # noqa: F811
                               segment_events):
        factories = all_backend_factories(workload)
        assert_attribution_parity(factories[name], workload[0],
                                  segment_events)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_backend_windowed_conserves(self, workload, name):  # noqa: F811
        """Segment-straddling windows (unaligned grids) fold once."""
        factories = all_backend_factories(workload)
        assert_attribution_parity(factories[name], workload[0], 1000,
                                  sampler_window=4096)


class TestRealWorkloadAttribution:
    """A Region table + degree split: classes mean what they claim."""

    @pytest.fixture(scope="class")
    def attributed(self):
        graph = rmat_graph(8, edge_factor=6, seed=7)
        from repro.algorithms.registry import run_algorithm

        result = run_algorithm("pagerank", graph, num_cores=4,
                               chunk_size=32, trace=True)
        trace = result.trace
        deg = graph.in_degrees()
        spec = AttributionSpec(
            regions=trace.regions,
            vertex_classes=degree_classes(deg),
            meta={"degree_key": "in"},
        )
        cfg = baseline_config()
        acc = assert_attribution_parity(
            lambda: BaselineBackend(cfg), trace, 1000, spec=spec
        )
        return acc

    def test_every_vtxprop_stratum_populated(self, attributed):
        per = attributed.per_class()
        for name in ("vtxprop-hub", "vtxprop-torso", "vtxprop-tail"):
            assert per[name]["events"] > 0, name

    def test_entity_classes_populated(self, attributed):
        per = attributed.per_class()
        assert per["csr-offsets"]["events"] > 0
        assert per["csr-edges"]["events"] > 0

    def test_result_block_shape(self, attributed):
        block = attributed.result()
        assert block["schema"].startswith("omega-repro/attribution/")
        assert tuple(block["fields"]) == FIELDS
        assert set(block["classes"]) == set(CLASS_NAMES)
        assert block["totals"]["events"] == int(
            attributed.counts[:, 0].sum()
        )

    def test_verify_raises_on_divergence(self, attributed):
        """A single-bit divergence must raise, never warn."""
        acc = fresh_acc()
        acc.counts = attributed.counts.copy()
        acc.counts[0, 1] += 1  # corrupt one l1_hits cell

        class _Stats:
            pass

        stats = _Stats()
        sums = attributed.counts.sum(axis=0)
        for j, name in enumerate(FIELDS):
            setattr(stats, name, int(sums[j]))
        with pytest.raises(SimulationError, match="conservation"):
            acc.verify(stats, int(sums[0]))
