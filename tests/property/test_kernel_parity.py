"""Exact-parity suite: batch kernel vs the scalar reference oracle.

The batch-vectorized cache kernel
(:meth:`repro.memsim.cachestate.CacheSystem._replay_kernel`) must
reproduce the scalar per-event oracle (``REPRO_SCALAR_CACHE=1`` /
``force_scalar_cache``) *exactly* — every integer counter, every
per-core float latency sum, and the full final cache/directory/DRAM
state — across all five hierarchy backends, every interconnect
topology, and every DRAM page policy. No tolerances anywhere in this
file: a single-bit divergence is a bug.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import run_algorithm
from repro.config import SimConfig
from repro.core.offload import microcode_for_algorithm
from repro.graph.generators import rmat_graph
from repro.ligra.trace import (
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_UPDATE,
    FLAG_WRITE,
    AccessClass,
    Trace,
)
from repro.memsim.cachestate import SCALAR_CACHE_ENV, CacheSystem
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.stats import MemStats
from repro.memsim.engine import (
    BaselineBackend,
    DynamicScratchpadBackend,
    GraphPimBackend,
    LockedCacheBackend,
    OmegaBackend,
)
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for
from repro.obs import ReplaySampler

NCORES = 4


def snapshot(out):
    """Every observable a replay produces, as one comparable dict.

    Includes the final *state* of the models — cache set contents with
    LRU order and dirty bits, the directory's line map, DRAM open-row
    registers — not just the counters, so state divergence that has
    not yet surfaced in a counter still fails the comparison.
    """
    return {
        "stats": dataclasses.asdict(out.stats),
        "l1": [
            (c.hits, c.misses, c.evictions, c.dirty_evictions,
             [list(s.items()) for s in c._sets])
            for c in out.l1s
        ],
        "l2": [
            (c.hits, c.misses, c.evictions, c.dirty_evictions,
             [list(s.items()) for s in c._sets])
            for c in out.l2_banks
        ],
        "directory": (
            out.directory.invalidations,
            out.directory.writebacks,
            dict(out.directory._lines),
        ),
        "dram": (
            out.dram.read_accesses, out.dram.write_accesses,
            out.dram.read_bytes, out.dram.write_bytes,
            out.dram.row_hits, out.dram.row_misses,
            list(out.dram._open_rows),
        ),
        "crossbar": (
            out.crossbar.line_packets, out.crossbar.word_packets,
            out.crossbar.control_packets, out.crossbar.line_bytes,
            out.crossbar.word_bytes, out.crossbar.control_bytes,
        ),
    }


def assert_parity(make_backend, trace, sampler=False):
    """Replay twice — kernel and scalar oracle — and compare exactly."""
    kernel = make_backend()
    out_k = kernel.replay(
        trace, sampler=ReplaySampler(64) if sampler else None
    )
    oracle = make_backend()
    oracle.force_scalar_cache = True
    out_o = oracle.replay(
        trace, sampler=ReplaySampler(64) if sampler else None
    )
    snap_k, snap_o = snapshot(out_k), snapshot(out_o)
    assert snap_k == snap_o
    # Float latency sums must be EXACT (same per-core accumulation
    # order), not just close.
    assert snap_k["stats"]["core_mem_latency"] == \
        snap_o["stats"]["core_mem_latency"]
    return out_k, out_o


def make_trace(cores, addrs, flags, classes=None, vertices=None):
    n = len(addrs)
    return Trace(
        core=np.asarray(cores, dtype=np.int16),
        addr=np.asarray(addrs, dtype=np.int64),
        size=np.full(n, 8, dtype=np.int16),
        access_class=(
            np.full(n, int(AccessClass.NGRAPH), dtype=np.int8)
            if classes is None
            else np.asarray(classes, dtype=np.int8)
        ),
        flags=np.asarray(flags, dtype=np.int8),
        vertex=(
            np.full(n, -1, dtype=np.int64)
            if vertices is None
            else np.asarray(vertices, dtype=np.int64)
        ),
    )


def baseline_config(topology="crossbar", page_policy="closed"):
    cfg = SimConfig.scaled_baseline(num_cores=NCORES)
    return dataclasses.replace(
        cfg,
        interconnect=dataclasses.replace(cfg.interconnect,
                                         topology=topology),
        dram=dataclasses.replace(cfg.dram, page_policy=page_policy),
    )


# Event tuples: (core, line_id, offset_words, flags). A small line
# universe forces set conflicts, evictions, coherence churn, and
# repeated same-line runs (the screened fast case) in every example.
EVENTS = st.lists(
    st.tuples(
        st.integers(0, NCORES - 1),
        st.integers(0, 63),
        st.integers(0, 7),
        st.sampled_from([0, FLAG_WRITE, FLAG_WRITE | FLAG_ATOMIC]),
    ),
    min_size=1,
    max_size=400,
)


def events_to_trace(events):
    cores = [e[0] for e in events]
    addrs = [0x100000 + e[1] * 64 + e[2] * 8 for e in events]
    flags = [e[3] for e in events]
    return make_trace(cores, addrs, flags)


class TestRandomizedTraceParity:
    """Hypothesis-driven traces through every config family."""

    @given(EVENTS)
    @settings(max_examples=60, deadline=None)
    def test_crossbar_closed(self, events):
        cfg = baseline_config()
        assert_parity(lambda: BaselineBackend(cfg), events_to_trace(events))

    @given(EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_mesh_topology(self, events):
        cfg = baseline_config(topology="mesh")
        assert_parity(lambda: BaselineBackend(cfg), events_to_trace(events))

    @given(EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_open_page_dram(self, events):
        cfg = baseline_config(page_policy="open")
        # Random ranges set but must be IGNORED under plain open-page.
        assert_parity(
            lambda: BaselineBackend(
                cfg, dram_random_ranges=[(0x100000, 0x100800)]
            ),
            events_to_trace(events),
        )

    @given(EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_hybrid_page_dram(self, events):
        cfg = baseline_config(page_policy="hybrid")
        assert_parity(
            lambda: BaselineBackend(
                cfg, dram_random_ranges=[(0x100000, 0x100800)]
            ),
            events_to_trace(events),
        )

    @given(EVENTS)
    @settings(max_examples=20, deadline=None)
    def test_mesh_hybrid_combined(self, events):
        cfg = baseline_config(topology="mesh", page_policy="hybrid")
        assert_parity(
            lambda: BaselineBackend(
                cfg, dram_random_ranges=[(0x100400, 0x100c00)]
            ),
            events_to_trace(events),
        )

    @given(EVENTS)
    @settings(max_examples=20, deadline=None)
    def test_windowed_replay(self, events):
        cfg = baseline_config()
        assert_parity(
            lambda: BaselineBackend(cfg), events_to_trace(events),
            sampler=True,
        )


@pytest.fixture(scope="module")
def workload():
    """A real PageRank trace plus everything backends need to route it."""
    graph = rmat_graph(8, edge_factor=6, seed=7)
    result = run_algorithm("pagerank", graph, num_cores=NCORES,
                           chunk_size=32, trace=True)
    ranges = [(p.start_addr, p.region.end) for p in result.engine.vtx_props]
    bpv = result.engine.vtxprop_bytes_per_vertex()
    return result.trace, ranges, bpv, graph.num_vertices


def all_backend_factories(workload):
    trace, ranges, bpv, nverts = workload
    bcfg = SimConfig.scaled_baseline(num_cores=NCORES)
    ocfg = SimConfig.scaled_omega(num_cores=NCORES)
    lcfg = SimConfig.scaled_omega(num_cores=NCORES, use_pisc=False,
                                  use_source_buffer=False)
    microcode = microcode_for_algorithm("pagerank")
    hot = hot_capacity_for(ocfg.scratchpad_total_bytes, bpv, nverts)
    mapping = ScratchpadMapping(NCORES, hot, chunk_size=32)
    return {
        "baseline": lambda: BaselineBackend(bcfg, dram_random_ranges=ranges),
        "omega": lambda: OmegaBackend(ocfg, mapping, microcode,
                                      dram_random_ranges=ranges),
        "locked": lambda: LockedCacheBackend(lcfg, mapping),
        "graphpim": lambda: GraphPimBackend(bcfg),
        "dynamic": lambda: DynamicScratchpadBackend(ocfg, hot, microcode),
    }


class TestAllBackendsParity:
    """All five backends, one real workload, exact equality."""

    @pytest.mark.parametrize(
        "name", ["baseline", "omega", "locked", "graphpim", "dynamic"]
    )
    def test_backend_parity(self, workload, name):
        factories = all_backend_factories(workload)
        assert_parity(factories[name], workload[0])

    @pytest.mark.parametrize("name", ["baseline", "omega"])
    def test_windowed_timelines_identical(self, workload, name):
        """Windowed kernel and windowed oracle emit the same timeline."""
        factories = all_backend_factories(workload)
        kernel = factories[name]()
        s_k = ReplaySampler(4096)
        kernel.replay(workload[0], sampler=s_k)
        oracle = factories[name]()
        oracle.force_scalar_cache = True
        s_o = ReplaySampler(4096)
        oracle.replay(workload[0], sampler=s_o)
        cols_k = dict(s_k.timeline().columns)
        cols_o = dict(s_o.timeline().columns)
        cols_k.pop("wall_seconds"), cols_o.pop("wall_seconds")
        assert cols_k == cols_o

    def test_hybrid_dram_workload_parity(self, workload):
        """The paper's hybrid page policy on a real trace."""
        trace, ranges, _, _ = workload
        cfg = baseline_config(page_policy="hybrid")
        assert_parity(
            lambda: BaselineBackend(cfg, dram_random_ranges=ranges), trace
        )


class TestScalarEscapeHatches:
    def test_env_var_forces_oracle(self, monkeypatch):
        monkeypatch.setenv(SCALAR_CACHE_ENV, "1")
        cfg = baseline_config()
        system = CacheSystem(
            cfg,
            MemStats(num_cores=NCORES),
            DramModel(cfg.dram),
            Crossbar(cfg.interconnect, NCORES),
        )
        assert system.fast_path_ok is False

    def test_env_var_replay_matches_kernel(self, monkeypatch):
        trace = make_trace(
            [0, 1, 0, 1, 2, 3] * 20,
            [0x100000 + 64 * (i % 7) for i in range(120)],
            [FLAG_WRITE if i % 3 == 0 else 0 for i in range(120)],
        )
        cfg = baseline_config()
        out_k = BaselineBackend(cfg).replay(trace)
        monkeypatch.setenv(SCALAR_CACHE_ENV, "1")
        out_o = BaselineBackend(cfg).replay(trace)
        assert snapshot(out_k) == snapshot(out_o)

    def test_force_scalar_attribute_respected(self):
        cfg = baseline_config()
        backend = BaselineBackend(cfg)
        backend.force_scalar_cache = True
        trace = make_trace([0], [0x100000], [0])
        out = backend.replay(trace)
        assert out.stats.l1_misses == 1


class TestSourceBufferAndUpdateRoutes:
    """Trace shapes that exercise OMEGA's srcbuf + offload routing
    alongside the cache path, end to end, kernel vs oracle."""

    def test_mixed_class_trace(self, workload):
        _, ranges, bpv, nverts = workload
        ocfg = SimConfig.scaled_omega(num_cores=NCORES)
        hot = hot_capacity_for(ocfg.scratchpad_total_bytes, bpv, nverts)
        mapping = ScratchpadMapping(NCORES, hot, chunk_size=32)
        microcode = microcode_for_algorithm("pagerank")
        rng = np.random.default_rng(3)
        n = 600
        cores = rng.integers(0, NCORES, n)
        verts = rng.integers(0, max(hot, 1) * 2, n)
        addrs = 0x100000 + verts * 8
        classes = np.where(rng.random(n) < 0.6,
                           int(AccessClass.VTXPROP),
                           int(AccessClass.EDGELIST))
        flags = np.where(
            rng.random(n) < 0.3, FLAG_WRITE | FLAG_ATOMIC | FLAG_UPDATE,
            np.where(rng.random(n) < 0.3, FLAG_SRC_READ, 0),
        )
        trace = make_trace(cores, addrs, flags, classes, verts)
        assert_parity(
            lambda: OmegaBackend(ocfg, mapping, microcode), trace
        )
