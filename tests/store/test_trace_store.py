"""Tests for the persistent content-addressed trace store."""

import json
import os

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.system import run_system
from repro.graph.generators import rmat_graph
from repro.ligra.trace import AccessClass, TraceBuilder
from repro.obs.manifest_diff import diff_manifests
from repro.store import (
    TraceStore,
    get_store,
    normalize_kwargs,
    resolve_store,
    set_store,
    trace_key,
    use_store,
)
from repro.store.store import reset_store


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, edge_factor=8, seed=21)


@pytest.fixture(scope="module")
def omega_cfg():
    return SimConfig.scaled_omega(num_cores=4)


def _toy_trace(n=64, seed=0):
    rng = np.random.default_rng(seed)
    tb = TraceBuilder()
    tb.append(0, rng.integers(0, 1 << 20, size=n), 8, AccessClass.VTXPROP,
              write=True, vertex=rng.integers(0, 100, size=n))
    return tb.build()


class TestTraceKey:
    """Every key component must be load-bearing: changing any one of
    graph content, kwargs, cores, chunk size, or reorder recipe must
    change the key; identical inputs must reproduce it."""

    def _key(self, graph, **over):
        params = dict(
            algorithm="pagerank", num_cores=4, chunk_size=32,
            reorder="nth-element/in", alg_kwargs={"iterations": 3},
        )
        params.update(over)
        return trace_key(graph, **params)

    def test_identical_inputs_hit(self, graph):
        assert self._key(graph) == self._key(graph)

    def test_equal_graph_content_hits_across_objects(self):
        # Content addressing: two separately built but identical
        # graphs share a key (dataset name is irrelevant).
        a = rmat_graph(7, edge_factor=4, seed=3)
        b = rmat_graph(7, edge_factor=4, seed=3)
        assert a is not b
        assert self._key(a) == self._key(b)

    def test_graph_content_changes_key(self, graph):
        other = rmat_graph(8, edge_factor=8, seed=22)
        assert self._key(graph) != self._key(other)

    def test_algorithm_changes_key(self, graph):
        assert self._key(graph) != self._key(graph, algorithm="bfs")

    def test_kwargs_change_key(self, graph):
        assert self._key(graph) != self._key(
            graph, alg_kwargs={"iterations": 4}
        )

    def test_cores_change_key(self, graph):
        assert self._key(graph) != self._key(graph, num_cores=8)

    def test_chunk_changes_key(self, graph):
        assert self._key(graph) != self._key(graph, chunk_size=64)

    def test_reorder_changes_key(self, graph):
        assert self._key(graph) != self._key(graph, reorder=None)

    def test_numpy_scalar_kwargs_canonicalized(self, graph):
        assert self._key(graph, alg_kwargs={"iterations": 3}) == self._key(
            graph, alg_kwargs={"iterations": np.int64(3)}
        )

    def test_uncacheable_kwargs_bypass(self, graph):
        assert self._key(graph, alg_kwargs={"cb": lambda: None}) is None
        assert normalize_kwargs({"arr": np.zeros(3)}) is None


class TestStoreRoundtrip:
    def test_store_then_load(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace()
        store.store("k1", tr, {"num_events": tr.num_events})
        entry = store.load("k1")
        assert entry is not None
        loaded, meta = entry
        np.testing.assert_array_equal(loaded.addr, tr.addr)
        assert meta["num_events"] == tr.num_events
        assert meta["key"] == "k1"

    def test_missing_key_is_miss(self, tmp_path):
        assert TraceStore(tmp_path).load("nope") is None

    def test_corrupt_trace_discarded(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace()
        store.store("k1", tr, {"num_events": tr.num_events})
        # Truncate the archive: the entry must read as a miss and be
        # removed so the next store() can rewrite it.
        data = store.trace_path("k1").read_bytes()
        store.trace_path("k1").write_bytes(data[: len(data) // 2])
        assert store.load("k1") is None
        assert not store.trace_path("k1").exists()
        assert not store.meta_path("k1").exists()

    def test_malformed_sidecar_discarded(self, tmp_path):
        store = TraceStore(tmp_path)
        store.store("k1", _toy_trace(), {})
        store.meta_path("k1").write_text("{not json")
        assert store.load("k1") is None

    def test_sidecar_version_mismatch_discarded(self, tmp_path):
        store = TraceStore(tmp_path)
        store.store("k1", _toy_trace(), {})
        meta = json.loads(store.meta_path("k1").read_text())
        meta["sidecar_version"] = 999
        store.meta_path("k1").write_text(json.dumps(meta))
        assert store.load("k1") is None

    def test_event_count_mismatch_discarded(self, tmp_path):
        store = TraceStore(tmp_path)
        store.store("k1", _toy_trace(), {})
        meta = json.loads(store.meta_path("k1").read_text())
        meta["num_events"] = 7
        store.meta_path("k1").write_text(json.dumps(meta))
        assert store.load("k1") is None


class TestSegmentedEntries:
    """Entries are segmented archives; warm hits can stream them."""

    def test_stored_entry_is_a_segmented_archive(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace()
        store.store("k1", tr, {"num_events": tr.num_events})
        with np.load(store.trace_path("k1")) as data:
            assert "segment_bounds" in data.files
            assert int(data["interleaved"]) == 1

    def test_open_segments_streams_warm_hit(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace(n=64)
        store.store("k1", tr, {"num_events": tr.num_events},
                    segment_events=16)
        entry = store.open_segments("k1")
        assert entry is not None
        segments, meta = entry
        assert meta["key"] == "k1"
        assert segments.num_segments == 4
        np.testing.assert_array_equal(
            segments.materialize().addr, tr.interleaved().addr
        )
        segments.close()

    def test_open_segments_miss_and_touch(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.open_segments("nope") is None

    def test_open_segments_discards_corruption(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace()
        store.store("k1", tr, {"num_events": tr.num_events})
        data = store.trace_path("k1").read_bytes()
        store.trace_path("k1").write_bytes(data[: len(data) // 2])
        assert store.open_segments("k1") is None
        assert not store.trace_path("k1").exists()

    def test_open_segments_discards_event_count_mismatch(self, tmp_path):
        store = TraceStore(tmp_path)
        store.store("k1", _toy_trace(), {})
        meta = json.loads(store.meta_path("k1").read_text())
        meta["num_events"] = 7
        store.meta_path("k1").write_text(json.dumps(meta))
        assert store.open_segments("k1") is None

    def test_load_rehydrates_segmented_entry(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace(n=64)
        store.store("k1", tr, {"num_events": tr.num_events},
                    segment_events=16)
        entry = store.load("k1")
        assert entry is not None
        loaded, _ = entry
        np.testing.assert_array_equal(loaded.addr, tr.interleaved().addr)


class TestAdopt:
    def _spool(self, tmp_path, tr, name="spool.npz", step=16):
        from repro.ligra.segments import SegmentedTrace

        path = tmp_path / name
        SegmentedTrace.from_trace(tr, step).save(path)
        return path

    def test_adopt_moves_archive_into_place(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        tr = _toy_trace(n=64)
        spool = self._spool(tmp_path, tr)
        store.adopt("k1", spool, {"num_events": tr.num_events})
        assert not spool.exists()
        entry = store.open_segments("k1")
        assert entry is not None
        segments, meta = entry
        assert meta["num_events"] == tr.num_events
        np.testing.assert_array_equal(
            segments.materialize().addr, tr.interleaved().addr
        )
        segments.close()

    def test_adopt_requires_num_events(self, tmp_path):
        from repro.errors import TraceError

        store = TraceStore(tmp_path / "store")
        tr = _toy_trace()
        spool = self._spool(tmp_path, tr)
        with pytest.raises(TraceError, match="num_events"):
            store.adopt("k1", spool, {})

    def test_adopted_handle_survives_the_rename(self, tmp_path):
        """POSIX: a handle opened on the spool keeps reading after
        adopt() renames (or even unlinks) the path under it."""
        from repro.ligra.segments import SegmentedTrace

        store = TraceStore(tmp_path / "store")
        tr = _toy_trace(n=64)
        spool = self._spool(tmp_path, tr)
        handle = SegmentedTrace.open(spool)
        store.adopt("k1", spool, {"num_events": tr.num_events})
        np.testing.assert_array_equal(
            handle.materialize().addr, tr.interleaved().addr
        )
        handle.close()


class TestOrphanCollection:
    def test_aged_tmp_files_are_collected(self, tmp_path):
        from repro.store.store import ORPHAN_TMP_AGE_SECONDS

        store = TraceStore(tmp_path)
        orphan = tmp_path / ".deadbeef.tmp.npz"
        orphan.write_bytes(b"junk")
        stale = 1_000_000
        os.utime(orphan, (stale, stale))
        fresh = tmp_path / ".cafef00d.tmp.npz"
        fresh.write_bytes(b"junk")
        assert ORPHAN_TMP_AGE_SECONDS > 60
        store.evict()
        assert not orphan.exists()
        assert fresh.exists()  # in-flight writes stay untouched

    def test_visible_entries_never_match_the_orphan_glob(self, tmp_path):
        store = TraceStore(tmp_path)
        tr = _toy_trace()
        store.store("k1", tr, {"num_events": tr.num_events})
        stale = 1_000_000
        for path in (store.trace_path("k1"), store.meta_path("k1")):
            os.utime(path, (stale, stale))
        store.evict()
        assert store.load("k1") is not None


class TestEviction:
    def _fill(self, store, keys):
        for i, key in enumerate(keys):
            store.store(key, _toy_trace(seed=i), {})

    def test_lru_evicts_oldest(self, tmp_path):
        store = TraceStore(tmp_path)
        self._fill(store, ["a", "b", "c"])
        # Age the entries explicitly (mtime resolution is too coarse
        # to rely on insertion timing).
        for age, key in enumerate(["a", "b", "c"]):
            stamp = 1_000_000 + age
            os.utime(store.trace_path(key), (stamp, stamp))
            os.utime(store.meta_path(key), (stamp, stamp))
        entry = store.entries()[0]
        assert entry.key == "a"
        store.capacity_bytes = store.total_bytes() - 1
        assert store.evict() == 1
        assert store.load("a") is None
        assert store.load("b") is not None

    def test_load_refreshes_recency(self, tmp_path):
        store = TraceStore(tmp_path)
        self._fill(store, ["a", "b"])
        for age, key in enumerate(["a", "b"]):
            stamp = 1_000_000 + age
            os.utime(store.trace_path(key), (stamp, stamp))
            os.utime(store.meta_path(key), (stamp, stamp))
        assert store.load("a") is not None  # touches "a" to now
        store.capacity_bytes = store.total_bytes() - 1
        store.evict()
        assert store.load("a") is not None
        assert store.load("b") is None

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        self._fill(store, ["a", "b"])
        store.clear()
        assert len(store) == 0


class TestAmbientStore:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        reset_store()
        assert get_store() is None

    def test_env_var_names_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_store()
        store = get_store()
        assert store is not None
        assert store.root == tmp_path

    def test_set_store_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = TraceStore(tmp_path / "explicit")
        set_store(explicit)
        try:
            assert get_store() is explicit
            set_store(None)
            assert get_store() is None
        finally:
            reset_store()

    def test_use_store_scopes(self, tmp_path):
        store = TraceStore(tmp_path)
        with use_store(store):
            assert get_store() is store
        reset_store()

    def test_resolve_semantics(self, tmp_path):
        store = TraceStore(tmp_path)
        assert resolve_store(False) is None
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path)).root == tmp_path
        with use_store(store):
            assert resolve_store(None) is store
            assert resolve_store(True) is store

    def test_capacity_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_CAPACITY_MB", "2")
        assert TraceStore(tmp_path).capacity_bytes == 2 * 1024 * 1024

    def test_zero_capacity_rejected(self, tmp_path):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            TraceStore(tmp_path, capacity_bytes=0)


class TestRunSystemIntegration:
    def test_warm_hit_is_bit_identical(self, graph, omega_cfg, tmp_path):
        store = TraceStore(tmp_path)
        cold = run_system(graph, "pagerank", omega_cfg, dataset="t",
                          cache=store)
        assert cold.trace_cache == {
            "enabled": True, "hit": False,
            "key": cold.trace_cache["key"],
        }
        assert len(store) == 1
        warm = run_system(graph, "pagerank", omega_cfg, dataset="t",
                          cache=store)
        assert warm.trace_cache["hit"] is True
        assert warm.trace_cache["key"] == cold.trace_cache["key"]
        assert warm.stats.as_dict() == cold.stats.as_dict()
        assert warm.cycles == cold.cycles
        assert warm.energy.as_dict() == cold.energy.as_dict()
        assert warm.trace_events == cold.trace_events
        assert warm.trace_bytes == cold.trace_bytes
        assert warm.hot_capacity == cold.hot_capacity

    def test_warm_vs_cold_manifest_diff_zero_tolerance(
        self, graph, omega_cfg, tmp_path
    ):
        store = TraceStore(tmp_path)
        cold = run_system(graph, "bfs", omega_cfg, cache=store)
        warm = run_system(graph, "bfs", omega_cfg, cache=store)
        result = diff_manifests(cold.manifest(), warm.manifest(),
                                tolerance=0.0)
        assert result.ok, result.regressions

    def test_no_cache_matches_cached_counters(self, graph, omega_cfg,
                                              tmp_path):
        cached = run_system(graph, "pagerank", omega_cfg,
                            cache=TraceStore(tmp_path))
        plain = run_system(graph, "pagerank", omega_cfg, cache=False)
        assert plain.trace_cache == {
            "enabled": False, "hit": False, "key": None,
        }
        assert plain.stats.as_dict() == cached.stats.as_dict()

    def test_corrupt_entry_falls_back_to_regeneration(
        self, graph, omega_cfg, tmp_path
    ):
        store = TraceStore(tmp_path)
        cold = run_system(graph, "pagerank", omega_cfg, cache=store)
        key = cold.trace_cache["key"]
        trace_file = store.trace_path(key)
        trace_file.write_bytes(trace_file.read_bytes()[:100])
        again = run_system(graph, "pagerank", omega_cfg, cache=store)
        assert again.trace_cache["hit"] is False  # regenerated
        assert again.stats.as_dict() == cold.stats.as_dict()
        # ... and the rewrite made the store warm again.
        third = run_system(graph, "pagerank", omega_cfg, cache=store)
        assert third.trace_cache["hit"] is True

    def test_different_backends_share_reordered_trace(
        self, graph, omega_cfg, tmp_path
    ):
        store = TraceStore(tmp_path)
        run_system(graph, "pagerank", omega_cfg, cache=store)
        locked = run_system(
            graph, "pagerank",
            SimConfig.scaled_omega(num_cores=4, use_pisc=False,
                                   use_source_buffer=False),
            backend="locked", cache=store,
        )
        # locked reorders too and has the same cores/chunk -> same trace.
        assert locked.trace_cache["hit"] is True

    def test_numpy_scalar_kwargs_share_entry(self, graph, omega_cfg,
                                             tmp_path):
        store = TraceStore(tmp_path)
        run_system(graph, "pagerank", omega_cfg, cache=store, max_iters=1)
        rep = run_system(graph, "pagerank", omega_cfg, cache=store,
                         max_iters=np.int64(1))
        assert rep.trace_cache["hit"] is True

    def test_uncacheable_kwargs_disable_cache(self, graph, omega_cfg,
                                              tmp_path):
        store = TraceStore(tmp_path)
        # A 0-d array is a working tolerance value but has no canonical
        # JSON form, so the run must bypass the cache, not crash.
        rep = run_system(graph, "pagerank", omega_cfg, cache=store,
                         tolerance=np.array(0.0))
        assert rep.trace_cache == {
            "enabled": False, "hit": False, "key": None,
        }
        assert len(store) == 0
