"""Tests for the memory-trace model."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.ligra.trace import (
    AccessClass,
    AddressSpace,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_WRITE,
    Trace,
    TraceBuilder,
)


class TestAddressSpace:
    def test_regions_page_aligned_and_disjoint(self):
        space = AddressSpace()
        a = space.allocate("a", 100, AccessClass.VTXPROP)
        b = space.allocate("b", 5000, AccessClass.EDGELIST)
        assert a.base % AddressSpace.PAGE == 0
        assert b.base >= a.base + AddressSpace.PAGE
        assert b.base % AddressSpace.PAGE == 0

    def test_classify(self):
        space = AddressSpace()
        a = space.allocate("a", 64, AccessClass.VTXPROP)
        assert space.classify(a.base) is AccessClass.VTXPROP
        assert space.classify(a.base + 63) is AccessClass.VTXPROP
        assert space.classify(a.base + 64) is AccessClass.NGRAPH

    def test_zero_size_region(self):
        space = AddressSpace()
        r = space.allocate("empty", 0, AccessClass.NGRAPH)
        assert r.size == 0
        assert not r.contains(r.base)

    def test_negative_size_rejected(self):
        with pytest.raises(TraceError):
            AddressSpace().allocate("bad", -1, AccessClass.NGRAPH)

    def test_region_contains(self):
        space = AddressSpace()
        r = space.allocate("r", 10, AccessClass.NGRAPH)
        assert r.contains(r.base)
        assert not r.contains(r.base - 1)
        assert r.end == r.base + 10


class TestTraceBuilder:
    def test_append_and_build(self):
        tb = TraceBuilder()
        tb.append(0, np.array([100, 108]), 8, AccessClass.VTXPROP, vertex=np.array([0, 1]))
        tb.append(np.array([1, 2]), np.array([200, 300]), 4, AccessClass.EDGELIST)
        tr = tb.build()
        assert tr.num_events == 4
        assert tr.core.tolist() == [0, 0, 1, 2]
        assert tr.vertex.tolist() == [0, 1, -1, -1]

    def test_flags(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1]), 8, AccessClass.VTXPROP, write=True, atomic=True)
        tb.append(0, np.array([2]), 8, AccessClass.VTXPROP, src_read=True)
        tr = tb.build()
        assert tr.flags[0] == FLAG_WRITE | FLAG_ATOMIC
        assert tr.flags[1] == FLAG_SRC_READ

    def test_empty_batch_ignored(self):
        tb = TraceBuilder()
        tb.append(0, np.zeros(0, dtype=np.int64), 8, AccessClass.VTXPROP)
        assert tb.num_events == 0

    def test_disabled_builder_is_noop(self):
        tb = TraceBuilder(enabled=False)
        tb.append(0, np.array([1, 2]), 8, AccessClass.VTXPROP)
        tb.mark_barrier()
        tr = tb.build()
        assert tr.num_events == 0
        assert len(tr.barriers) == 0

    def test_column_length_mismatch(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.append(np.array([0]), np.array([1, 2]), 8, AccessClass.VTXPROP)

    def test_build_empty(self):
        tr = TraceBuilder().build()
        assert tr.num_events == 0

    def test_barriers_recorded(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1]), 8, AccessClass.VTXPROP)
        tb.mark_barrier()
        tb.append(0, np.array([2]), 8, AccessClass.VTXPROP)
        tr = tb.build()
        assert tr.barriers.tolist() == [1]


class TestTraceQueries:
    def _trace(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1, 2]), 8, AccessClass.VTXPROP,
                  write=True, atomic=True, vertex=np.array([5, 6]))
        tb.append(1, np.array([3]), 8, AccessClass.EDGELIST)
        tb.append(2, np.array([4]), 8, AccessClass.NGRAPH, write=True)
        return tb.build()

    def test_count_by_class(self):
        tr = self._trace()
        assert tr.count(access_class=AccessClass.VTXPROP) == 2
        assert tr.count(access_class=AccessClass.EDGELIST) == 1

    def test_count_by_flags(self):
        tr = self._trace()
        assert tr.count(atomic=True) == 2
        assert tr.count(write=True) == 3
        assert tr.count(write=True, atomic=False) == 1

    def test_vtxprop_vertex_ids(self):
        tr = self._trace()
        assert tr.vtxprop_vertex_ids().tolist() == [5, 6]

    def test_concat(self):
        a, b = self._trace(), self._trace()
        c = a.concat(b)
        assert c.num_events == 8

    def test_concat_shifts_barriers(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1]), 8, AccessClass.VTXPROP)
        tb.mark_barrier()
        a = tb.build()
        c = a.concat(a)
        assert c.barriers.tolist() == [1, 2]


class TestInterleaving:
    def test_round_robin_order(self):
        tb = TraceBuilder()
        tb.append(0, np.array([10, 11, 12]), 8, AccessClass.VTXPROP)
        tb.append(1, np.array([20, 21]), 8, AccessClass.VTXPROP)
        tr = tb.build().interleaved()
        assert tr.addr.tolist() == [10, 20, 11, 21, 12]

    def test_per_core_order_preserved(self):
        tb = TraceBuilder()
        tb.append(2, np.array([5, 6, 7]), 8, AccessClass.VTXPROP)
        tb.append(0, np.array([1, 2]), 8, AccessClass.VTXPROP)
        tr = tb.build().interleaved()
        core0 = tr.addr[tr.core == 0].tolist()
        core2 = tr.addr[tr.core == 2].tolist()
        assert core0 == [1, 2]
        assert core2 == [5, 6, 7]

    def test_barriers_respected(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1, 2]), 8, AccessClass.VTXPROP)
        tb.append(1, np.array([3]), 8, AccessClass.VTXPROP)
        tb.mark_barrier()
        tb.append(1, np.array([4]), 8, AccessClass.VTXPROP)
        tr = tb.build().interleaved()
        # Events before the barrier stay before it.
        assert sorted(tr.addr[:3].tolist()) == [1, 2, 3]
        assert tr.addr[3] == 4

    def test_empty_trace(self):
        tr = TraceBuilder().build()
        assert tr.interleaved().num_events == 0

    def test_event_multiset_preserved(self):
        tb = TraceBuilder()
        tb.append(np.array([0, 3, 1, 3]), np.array([1, 2, 3, 4]), 8,
                  AccessClass.EDGELIST)
        tr = tb.build()
        inter = tr.interleaved()
        assert sorted(inter.addr.tolist()) == sorted(tr.addr.tolist())
