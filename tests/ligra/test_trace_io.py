"""Tests for trace persistence and the GraphMat execution mode."""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import SimulationError, TraceError
from repro.ligra.trace import (
    READABLE_TRACE_VERSIONS,
    TRACE_FORMAT_VERSION,
    AccessClass,
    FLAG_UPDATE,
    Region,
    Trace,
    TraceBuilder,
)
from repro.algorithms.pagerank import pagerank_reference, run_pagerank


class TestTraceSaveLoad:
    def _trace(self):
        tb = TraceBuilder()
        tb.append(0, np.array([1, 2, 3]), 8, AccessClass.VTXPROP,
                  write=True, atomic=True, vertex=np.array([0, 1, 2]))
        tb.mark_barrier()
        tb.append(1, np.array([4]), 4, AccessClass.EDGELIST)
        return tb.build()

    def test_roundtrip(self, tmp_path):
        tr = self._trace()
        path = tmp_path / "t.npz"
        tr.save(path)
        loaded = Trace.load(path)
        np.testing.assert_array_equal(loaded.addr, tr.addr)
        np.testing.assert_array_equal(loaded.flags, tr.flags)
        np.testing.assert_array_equal(loaded.barriers, tr.barriers)

    def test_roundtrip_preserves_replay(self, tmp_path, small_powerlaw):
        from repro.config import SimConfig
        from repro.memsim.hierarchy import BaselineHierarchy

        tr = run_pagerank(small_powerlaw, num_cores=4).trace
        path = tmp_path / "pr.npz"
        tr.save(path)
        loaded = Trace.load(path)
        cfg = SimConfig.scaled_baseline(num_cores=4)
        a = BaselineHierarchy(cfg).replay(tr)
        b = BaselineHierarchy(cfg).replay(loaded)
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError, match="not a trace"):
            Trace.load(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        tr = TraceBuilder().build()
        path = tmp_path / "empty.npz"
        tr.save(path)
        assert Trace.load(path).num_events == 0


class TestTraceFormat:
    def _trace(self):
        tb = TraceBuilder()
        tb.append(0, np.array([0, 64, 128]), 8, AccessClass.VTXPROP,
                  write=True, vertex=np.array([0, 1, 2]))
        return tb.build()

    def test_save_stamps_format_version(self, tmp_path):
        path = tmp_path / "t.npz"
        self._trace().save(path)
        with np.load(path) as data:
            assert int(data["format_version"]) == TRACE_FORMAT_VERSION

    def test_load_rejects_future_format(self, tmp_path):
        path = tmp_path / "t.npz"
        self._trace().save(path)
        with np.load(path) as data:
            columns = {name: data[name] for name in data.files}
        columns["format_version"] = np.int64(TRACE_FORMAT_VERSION + 1)
        np.savez(path, **columns)
        with pytest.raises(TraceError, match="format version"):
            Trace.load(path)

    def test_load_accepts_legacy_unversioned(self, tmp_path):
        # Archives written before versioning carry no format_version
        # scalar; they must still load.
        path = tmp_path / "t.npz"
        self._trace().save(path)
        with np.load(path) as data:
            columns = {
                name: data[name] for name in data.files
                if name != "format_version"
            }
        np.savez(path, **columns)
        assert Trace.load(path).num_events == 3

    def test_load_accepts_every_readable_version(self, tmp_path):
        # Version-1 archives are column-compatible with version 2 and
        # must keep loading across the bump.
        path = tmp_path / "t.npz"
        self._trace().save(path)
        with np.load(path) as data:
            columns = {name: data[name] for name in data.files}
        for version in sorted(READABLE_TRACE_VERSIONS):
            columns["format_version"] = np.int64(version)
            np.savez(path, **columns)
            assert Trace.load(path).num_events == 3

    def test_current_version_is_readable(self):
        assert TRACE_FORMAT_VERSION in READABLE_TRACE_VERSIONS

    def test_legacy_monolithic_archives_replay_unchanged(
        self, tmp_path, small_powerlaw
    ):
        # v1/v2 archives are monolithic ``.npz`` files (no segment
        # index). They must not just load — they must replay to the
        # same counters as the live trace across the v3 bump.
        from repro.config import SimConfig
        from repro.memsim.hierarchy import BaselineHierarchy

        tr = run_pagerank(small_powerlaw, num_cores=4).trace
        cfg = SimConfig.scaled_baseline(num_cores=4)
        want = BaselineHierarchy(cfg).replay(tr).stats.as_dict()
        path = tmp_path / "legacy.npz"
        tr.save(path)
        with np.load(path) as data:
            columns = {name: data[name] for name in data.files}
        assert "segment_bounds" not in columns  # monolithic layout
        for version in (1, 2):
            assert version in READABLE_TRACE_VERSIONS
            columns["format_version"] = np.int64(version)
            np.savez(path, **columns)
            loaded = Trace.load(path)
            got = BaselineHierarchy(cfg).replay(loaded).stats.as_dict()
            assert got == want

    def test_docs_match_constant(self):
        # docs/trace-format.md states the current version inline; the
        # analyzer's doc-sync rule is the single source of truth for
        # that cross-check, so drive it directly instead of re-rolling
        # the regexes here.
        from repro.analyze import ProjectIndex
        from repro.analyze.rules.docsync import (
            check_docs_sync,
            check_version_sync,
        )

        project = ProjectIndex(Path(__file__).resolve().parents[2])
        findings = list(
            check_version_sync(project, check_docs_sync.info)
        )
        assert findings == [], "\n".join(f.format() for f in findings)
        # And the doc really does state something (the rule is silent
        # when the page disappears entirely — that would be a DOC001
        # finding about the missing statements, covered above only if
        # the page exists).
        assert project.doc_text("docs/trace-format.md") is not None

    def test_regions_roundtrip(self, tmp_path):
        tr = self._trace()
        tr.regions = (
            Region(name="vtxprop:rank", base=0, size=4096,
                   access_class=AccessClass.VTXPROP),
            Region(name="edgelist", base=4096, size=1 << 16,
                   access_class=AccessClass.EDGELIST),
        )
        path = tmp_path / "t.npz"
        tr.save(path)
        loaded = Trace.load(path)
        assert loaded.regions == tr.regions

    def test_no_regions_loads_empty_tuple(self, tmp_path):
        path = tmp_path / "t.npz"
        self._trace().save(path)
        assert Trace.load(path).regions == ()

    def test_engine_traces_carry_regions(self, small_powerlaw):
        tr = run_pagerank(small_powerlaw, num_cores=4).trace
        assert tr.regions
        assert any(
            r.access_class == AccessClass.VTXPROP for r in tr.regions
        )

    def test_nbytes_counts_all_columns(self):
        tr = self._trace()
        assert tr.nbytes == (
            tr.addr.nbytes + tr.core.nbytes + tr.size.nbytes
            + tr.access_class.nbytes + tr.flags.nbytes
            + tr.vertex.nbytes + tr.barriers.nbytes
        )
        assert tr.nbytes > 0


class TestUpdateFlag:
    def test_sparse_atomics_carry_update_flag(self, small_powerlaw):
        tr = run_pagerank(small_powerlaw, num_cores=4).trace
        atomics = (tr.flags & 2) != 0
        assert ((tr.flags[atomics] & FLAG_UPDATE) != 0).all()

    def test_graphmat_updates_not_atomic(self, small_powerlaw):
        tr = run_pagerank(
            small_powerlaw, num_cores=4, framework="graphmat"
        ).trace
        assert tr.count(atomic=True) == 0
        updates = (tr.flags & FLAG_UPDATE) != 0
        assert int(updates.sum()) > 0


class TestGraphmatMode:
    def test_matches_reference(self, small_powerlaw):
        res = run_pagerank(small_powerlaw, trace=False, framework="graphmat")
        np.testing.assert_allclose(
            res.value("rank"), pagerank_reference(small_powerlaw, 1)
        )

    def test_matches_ligra_mode(self, small_powerlaw):
        ligra = run_pagerank(small_powerlaw, trace=False)
        graphmat = run_pagerank(small_powerlaw, trace=False,
                                framework="graphmat")
        np.testing.assert_allclose(
            ligra.value("rank"), graphmat.value("rank")
        )

    def test_bad_framework_rejected(self, small_powerlaw):
        with pytest.raises(SimulationError, match="framework"):
            run_pagerank(small_powerlaw, framework="gunrock")

    def test_local_updates_stay_on_owner_core(self, small_powerlaw):
        """With matched chunks every owner-write is local, and a local
        plain update is cheaper on the core than on the PISC."""
        from repro.config import SimConfig
        from repro.core.system import run_system

        rep = run_system(
            small_powerlaw, "pagerank", SimConfig.scaled_omega(num_cores=4),
            framework="graphmat",
        )
        assert rep.stats.atomics_total == 0
        assert rep.stats.pisc_ops == 0
        assert rep.stats.sp_plain_local > 0

    def test_remote_updates_offload_to_pisc(self, small_powerlaw):
        """A mismatched mapping makes owner-writes remote; the PISC
        absorbs them even though they are not atomic."""
        from repro.config import SimConfig
        from repro.core.system import run_system

        rep = run_system(
            small_powerlaw, "pagerank", SimConfig.scaled_omega(num_cores=4),
            framework="graphmat", chunk_size=32, sp_chunk_size=1,
        )
        assert rep.stats.atomics_total == 0
        assert rep.stats.pisc_ops > 0
