"""Tests for the v3 segmented trace archive and the spooling builder."""

import zipfile

import numpy as np
import pytest

from repro.errors import TraceError
from repro.ligra.segments import (
    DEFAULT_SEGMENT_EVENTS,
    SegmentedTrace,
    SegmentWriter,
    SpoolingTraceBuilder,
)
from repro.ligra.trace import (
    READABLE_TRACE_VERSIONS,
    TRACE_FORMAT_VERSION,
    AccessClass,
    Region,
    Trace,
    TraceBuilder,
)

COLUMNS = ("core", "addr", "size", "access_class", "flags", "vertex")


def build_trace(n=100, seed=0, barrier_every=17, cores=4):
    rng = np.random.default_rng(seed)
    tb = TraceBuilder()
    for start in range(0, n, barrier_every):
        span = min(barrier_every, n - start)
        for core in range(cores):
            tb.append(core, rng.integers(0, 1 << 20, size=span), 8,
                      AccessClass.VTXPROP, write=bool(core % 2),
                      vertex=rng.integers(0, 50, size=span))
        tb.mark_barrier()
    trace = tb.build()
    trace.regions = (
        Region(name="vtxprop:x", base=0, size=1 << 20,
               access_class=AccessClass.VTXPROP),
    )
    return trace


def assert_traces_equal(a: Trace, b: Trace):
    for name in COLUMNS:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
    np.testing.assert_array_equal(a.barriers, b.barriers)
    assert a.regions == b.regions


class TestFromTrace:
    def test_segments_cover_the_interleaved_trace(self):
        trace = build_trace()
        seg = SegmentedTrace.from_trace(trace, 37)
        inter = trace.interleaved()
        assert seg.num_events == trace.num_events
        lo = 0
        for part in seg.iter_segments():
            hi = lo + part.num_events
            np.testing.assert_array_equal(part.addr, inter.addr[lo:hi])
            np.testing.assert_array_equal(part.core, inter.core[lo:hi])
            lo = hi
        assert lo == trace.num_events

    def test_materialize_equals_interleaved(self):
        trace = build_trace()
        seg = SegmentedTrace.from_trace(trace, 37)
        assert_traces_equal(seg.materialize(), trace.interleaved())

    @pytest.mark.parametrize("step", [1, 3, 1000])
    def test_every_step_partitions_exactly(self, step):
        trace = build_trace(n=20)
        seg = SegmentedTrace.from_trace(trace, step)
        sizes = np.diff(seg.segment_bounds)
        assert int(sizes.sum()) == seg.num_events
        assert (sizes[:-1] == step).all() if len(sizes) > 1 else True
        assert seg.num_segments == -(-seg.num_events // step)

    def test_barriers_rebase_exactly_once(self):
        trace = build_trace(barrier_every=10)
        seg = SegmentedTrace.from_trace(trace, 33)
        seen = []
        for k, part in enumerate(seg.iter_segments()):
            lo = int(seg.segment_bounds[k])
            hi = int(seg.segment_bounds[k + 1])
            assert ((part.barriers >= 0) & (part.barriers < hi - lo)).all()
            seen.extend(int(b) + lo for b in part.barriers)
        inter = trace.interleaved()
        assert seen == [b for b in inter.barriers.tolist() if b < len(inter)]

    def test_nonpositive_step_rejected(self):
        with pytest.raises(TraceError, match="segment_events"):
            SegmentedTrace.from_trace(build_trace(), 0)

    def test_segment_index_bounds_checked(self):
        seg = SegmentedTrace.from_trace(build_trace(), 50)
        with pytest.raises(TraceError, match="out of range"):
            seg.segment(seg.num_segments)


class TestArchiveRoundtrip:
    def test_save_open_roundtrip(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "t.npz"
        SegmentedTrace.from_trace(trace, 41).save(path)
        with SegmentedTrace.open(path) as loaded:
            assert loaded.interleaved
            assert loaded.num_events == trace.num_events
            assert_traces_equal(loaded.materialize(), trace.interleaved())

    def test_mmap_mode_reads_same_columns(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "t.npz"
        SegmentedTrace.from_trace(trace, 41).save(path)
        with SegmentedTrace.open(path, mmap_mode="r") as loaded:
            assert_traces_equal(loaded.materialize(), trace.interleaved())

    def test_nbytes_matches_trace_semantics(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "t.npz"
        SegmentedTrace.from_trace(trace, 41).save(path)
        inter = trace.interleaved()
        with SegmentedTrace.open(path) as loaded:
            assert loaded.nbytes == inter.nbytes

    def test_open_rejects_future_version(self, tmp_path):
        path = tmp_path / "t.npz"
        writer = SegmentWriter(path, segment_events=8)
        writer.close()
        # Rewrite the version member with a future stamp.
        with zipfile.ZipFile(path) as zf:
            members = {
                name: zf.read(name) for name in zf.namelist()
                if name != "format_version.npy"
            }
        with zipfile.ZipFile(path, "w") as zf:
            for name, blob in members.items():
                zf.writestr(name, blob)
            import io
            buf = io.BytesIO()
            np.save(buf, np.asarray(np.int64(max(READABLE_TRACE_VERSIONS)
                                             + 1)))
            zf.writestr("format_version.npy", buf.getvalue())
        with pytest.raises(TraceError, match="format version"):
            SegmentedTrace.open(path)

    def test_open_rejects_monolithic_archive(self, tmp_path):
        path = tmp_path / "mono.npz"
        build_trace().save(path)
        with pytest.raises(TraceError, match="not a segmented"):
            SegmentedTrace.open(path)

    def test_reads_after_close_fail_cleanly(self, tmp_path):
        path = tmp_path / "t.npz"
        SegmentedTrace.from_trace(build_trace(), 41).save(path)
        loaded = SegmentedTrace.open(path)
        loaded.close()
        loaded.close()  # idempotent
        with pytest.raises(TraceError, match="closed"):
            loaded.segment(0)

    def test_archive_stamps_current_version(self, tmp_path):
        path = tmp_path / "t.npz"
        SegmentedTrace.from_trace(build_trace(), 41).save(path)
        with np.load(path) as data:
            assert int(data["format_version"]) == TRACE_FORMAT_VERSION
            assert "segment_bounds" in data.files


class TestSegmentWriter:
    def test_bounded_buffering_flushes_full_segments(self, tmp_path):
        path = tmp_path / "w.npz"
        writer = SegmentWriter(path, segment_events=10)
        rng = np.random.default_rng(1)
        total = 0
        for batch in (7, 13, 4, 26):
            writer.append({
                "core": np.zeros(batch, dtype=np.int16),
                "addr": rng.integers(0, 1 << 20, size=batch),
                "size": np.full(batch, 8, dtype=np.int16),
                "access_class": np.zeros(batch, dtype=np.int8),
                "flags": np.zeros(batch, dtype=np.int8),
                "vertex": np.full(batch, -1, dtype=np.int64),
            })
            total += batch
            # Never more than one partial segment buffered.
            assert writer._pending_n < 10
        writer.close()
        with SegmentedTrace.open(path) as loaded:
            assert loaded.num_events == total
            sizes = np.diff(loaded.segment_bounds)
            assert (sizes[:-1] == 10).all()

    def test_append_after_close_rejected(self, tmp_path):
        writer = SegmentWriter(tmp_path / "w.npz", segment_events=4)
        writer.close()
        with pytest.raises(TraceError, match="closed"):
            writer.append({"addr": np.zeros(1, dtype=np.int64)})


class TestSpoolingBuilder:
    def _run_both(self, tmp_path, n=120, barrier_every=13):
        """Drive a TraceBuilder and a spooling builder identically."""
        rng = np.random.default_rng(5)
        spool = tmp_path / "spool.npz"
        spooler = SpoolingTraceBuilder(spool, segment_events=25)
        direct = TraceBuilder()
        for start in range(0, n, barrier_every):
            span = min(barrier_every, n - start)
            addrs = rng.integers(0, 1 << 20, size=span)
            verts = rng.integers(0, 40, size=span)
            for core in range(3):
                for tb in (spooler, direct):
                    tb.append(core, addrs, 8, AccessClass.VTXPROP,
                              write=True, vertex=verts)
            for tb in (spooler, direct):
                tb.mark_barrier()
        return spooler, direct

    def test_spooled_archive_equals_interleaved_build(self, tmp_path):
        spooler, direct = self._run_both(tmp_path)
        segments = spooler.finalize()
        assert segments.interleaved
        assert_traces_equal(
            segments.materialize(), direct.build().interleaved()
        )
        segments.close()

    def test_build_is_unavailable(self, tmp_path):
        spooler = SpoolingTraceBuilder(tmp_path / "s.npz")
        with pytest.raises(TraceError, match="finalize"):
            spooler.build()
        spooler.abort()

    def test_regions_land_in_the_archive(self, tmp_path):
        spooler, _ = self._run_both(tmp_path, n=30)
        regions = (
            Region(name="vtxprop:x", base=0, size=4096,
                   access_class=AccessClass.VTXPROP),
        )
        segments = spooler.finalize(regions=regions)
        assert segments.regions == regions
        segments.close()

    def test_empty_run_finalizes_to_empty_archive(self, tmp_path):
        spooler = SpoolingTraceBuilder(tmp_path / "e.npz")
        segments = spooler.finalize()
        assert segments.num_events == 0
        assert segments.materialize().num_events == 0
        segments.close()

    def test_default_segment_size_is_sane(self):
        assert DEFAULT_SEGMENT_EVENTS > 0
