"""Tests for the edgeMap/vertexMap engine and its trace emission."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.graph.csr import from_edges
from repro.ligra.atomics import AtomicOp, scatter_atomic
from repro.ligra.framework import LigraEngine
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, FLAG_SRC_READ, FLAG_WRITE
from repro.ligra.vertex_subset import VertexSubset


@pytest.fixture()
def engine(tiny_graph):
    return LigraEngine(tiny_graph, num_cores=2, chunk_size=2)


class TestConstruction:
    def test_bad_num_cores(self, tiny_graph):
        with pytest.raises(TraceError):
            LigraEngine(tiny_graph, num_cores=0)

    def test_bad_chunk_size(self, tiny_graph):
        with pytest.raises(TraceError):
            LigraEngine(tiny_graph, chunk_size=0)

    def test_edge_regions_allocated(self, engine):
        names = [r.name for r in engine.space.regions]
        for expected in ("out_offsets", "out_targets", "in_offsets",
                         "in_sources", "nGraphData", "active_bits"):
            assert expected in names

    def test_weights_region_only_when_weighted(
        self, tiny_graph, small_powerlaw_weighted
    ):
        unweighted = LigraEngine(tiny_graph)
        weighted = LigraEngine(small_powerlaw_weighted)
        assert all(r.name != "edge_weights" for r in unweighted.space.regions)
        assert any(r.name == "edge_weights" for r in weighted.space.regions)


class TestAllocProp:
    def test_vtxprop_registered(self, engine):
        p = engine.alloc_prop("rank", np.float64)
        assert p in engine.vtx_props
        assert engine.space.classify(p.start_addr) is AccessClass.VTXPROP

    def test_cache_resident_prop(self, engine):
        p = engine.alloc_prop("temp", np.float64, vtxprop=False)
        assert p not in engine.vtx_props
        assert engine.space.classify(p.start_addr) is AccessClass.NGRAPH

    def test_bytes_per_vertex_excludes_active_bits(self, engine):
        engine.alloc_prop("a", np.float64)
        engine.alloc_prop("b", np.int32)
        assert engine.vtxprop_bytes_per_vertex() == 12

    def test_struct_alloc(self, engine):
        props = engine.alloc_struct("s", [("x", np.int32), ("y", np.int32)])
        assert engine.vtxprop_bytes_per_vertex() == 8
        assert all(p in engine.vtx_props for p in props)


class TestScheduling:
    def test_chunked_positions(self, tiny_graph):
        e = LigraEngine(tiny_graph, num_cores=2, chunk_size=2)
        cores = e.cores_for_positions(np.arange(8), 8)
        assert cores.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_block_positions(self, tiny_graph):
        e = LigraEngine(tiny_graph, num_cores=2, chunk_size=None)
        cores = e.cores_for_positions(np.arange(8), 8)
        assert cores.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_edge_balanced(self, tiny_graph):
        e = LigraEngine(tiny_graph, num_cores=4)
        cores = e.cores_for_edges(8)
        assert cores.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_edges_fewer_than_cores(self, tiny_graph):
        e = LigraEngine(tiny_graph, num_cores=8)
        cores = e.cores_for_edges(3)
        assert max(cores) < 8

    def test_empty(self, engine):
        assert len(engine.cores_for_edges(0)) == 0
        assert len(engine.cores_for_positions(np.zeros(0, dtype=np.int64), 0)) == 0


class TestEdgeMapSparse:
    def test_functional_result(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        seen = {}

        def apply_fn(srcs, dsts, weights):
            seen["pairs"] = set(zip(srcs.tolist(), dsts.tolist()))
            assert weights is None
            return np.unique(dsts)

        frontier = VertexSubset(6, ids=np.array([0]))
        out = engine.edge_map(frontier, apply_fn, direction="out")
        assert seen["pairs"] == {(0, 1), (0, 2)}
        assert list(out) == [1, 2]

    def test_trace_event_counts(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        prop = engine.alloc_prop("p", np.float64)

        def apply_fn(srcs, dsts, _):
            return np.unique(dsts)

        frontier = VertexSubset(6, ids=np.array([0, 1]))
        engine.edge_map(
            frontier, apply_fn,
            src_props=[prop], dst_props=[prop],
            direction="out", output="none",
        )
        tr = engine.build_trace()
        # 2 offset reads + 3 target reads (deg 2 + 1) + 3 src reads +
        # 3 atomic RMWs + nGraph bookkeeping.
        assert tr.count(access_class=AccessClass.EDGELIST) == 5
        assert tr.count(atomic=True) == 3
        srcs = (tr.flags & FLAG_SRC_READ) != 0
        assert int(srcs.sum()) == 3

    def test_weights_passed(self, small_powerlaw_weighted):
        engine = LigraEngine(small_powerlaw_weighted, num_cores=2)
        got = {}

        def apply_fn(srcs, dsts, weights):
            got["w"] = weights
            return np.zeros(0, dtype=np.int64)

        engine.edge_map(
            VertexSubset(small_powerlaw_weighted.num_vertices, ids=np.array([0])),
            apply_fn, direction="out", use_weights=True,
        )
        assert got["w"] is not None
        assert len(got["w"]) == small_powerlaw_weighted.out_degree(0)

    def test_weights_on_unweighted_rejected(self, engine):
        with pytest.raises(TraceError):
            engine.edge_map(
                VertexSubset(6, ids=np.array([0])),
                lambda s, d, w: d,
                use_weights=True,
            )

    def test_empty_frontier(self, engine):
        out = engine.edge_map(
            VertexSubset.empty(6), lambda s, d, w: d, direction="out"
        )
        assert len(out) == 0


class TestEdgeMapDense:
    def test_dense_filters_frontier_sources(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        seen = {}

        def apply_fn(srcs, dsts, _):
            seen["pairs"] = set(zip(srcs.tolist(), dsts.tolist()))
            return np.unique(dsts)

        frontier = VertexSubset(6, ids=np.array([3, 4]))
        engine.edge_map(frontier, apply_fn, direction="in")
        assert seen["pairs"] == {(3, 2), (4, 2)}

    def test_dense_writes_not_atomic(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        prop = engine.alloc_prop("p", np.int32)
        engine.edge_map(
            VertexSubset.full(6),
            lambda s, d, w: np.unique(d),
            dst_props=[prop],
            direction="in",
            output="none",
        )
        tr = engine.build_trace()
        assert tr.count(atomic=True) == 0
        assert tr.count(access_class=AccessClass.VTXPROP, write=True) > 0

    def test_auto_direction_switches(self, small_powerlaw):
        engine = LigraEngine(small_powerlaw, num_cores=2)
        engine.edge_map(
            VertexSubset.full(small_powerlaw.num_vertices),
            lambda s, d, w: np.zeros(0, dtype=np.int64),
            direction="auto",
        )
        assert engine.stats.dense_calls == 1
        # A single low-degree vertex stays below the |E|/20 threshold.
        quiet = int(small_powerlaw.out_degrees().argmin())
        engine.edge_map(
            VertexSubset(small_powerlaw.num_vertices, ids=np.array([quiet])),
            lambda s, d, w: np.zeros(0, dtype=np.int64),
            direction="auto",
        )
        assert engine.stats.sparse_calls == 1

    def test_dense_frontier_reads_are_ngraph(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        engine.edge_map(
            VertexSubset.full(6),
            lambda s, d, w: np.zeros(0, dtype=np.int64),
            direction="in",
            output="none",
        )
        tr = engine.build_trace()
        assert tr.count(access_class=AccessClass.NGRAPH) >= tiny_graph.num_edges


class TestEdgeMapValidation:
    def test_bad_direction(self, engine):
        with pytest.raises(TraceError):
            engine.edge_map(VertexSubset.empty(6), lambda s, d, w: d,
                            direction="sideways")

    def test_bad_output(self, engine):
        with pytest.raises(TraceError):
            engine.edge_map(VertexSubset.empty(6), lambda s, d, w: d,
                            output="maybe")

    def test_barrier_marked_per_edge_map(self, engine):
        engine.edge_map(VertexSubset(6, ids=np.array([0])),
                        lambda s, d, w: np.unique(d), direction="out")
        engine.edge_map(VertexSubset(6, ids=np.array([1])),
                        lambda s, d, w: np.unique(d), direction="out")
        tr = engine.build_trace()
        assert len(tr.barriers) >= 1


class TestVertexMap:
    def test_applies_function(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        prop = engine.alloc_prop("x", np.int64)

        def bump(ids):
            prop.values[ids] += 1

        engine.vertex_map(VertexSubset.full(6), bump, write_props=[prop])
        assert prop.values.tolist() == [1] * 6

    def test_filter_semantics(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        out = engine.vertex_map(
            VertexSubset.full(6), lambda ids: ids[ids % 2 == 0]
        )
        assert list(out) == [0, 2, 4]

    def test_trace_reads_and_writes(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        p = engine.alloc_prop("x", np.int64)
        engine.vertex_map(
            VertexSubset.full(6), None, read_props=[p], write_props=[p]
        )
        tr = engine.build_trace()
        assert tr.count(access_class=AccessClass.VTXPROP, write=False) == 6
        assert tr.count(access_class=AccessClass.VTXPROP, write=True) == 6


class TestActiveListTrace:
    def test_dense_output_writes_bits(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        engine.edge_map(
            VertexSubset.full(6),
            lambda s, d, w: np.unique(d),
            direction="out",
            output="dense",
        )
        tr = engine.build_trace()
        bits = (tr.access_class == int(AccessClass.VTXPROP)) & (
            (tr.flags & FLAG_WRITE) != 0
        )
        assert int(bits.sum()) > 0

    def test_sparse_output_writes_list(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        before = engine._sparse_list_cursor
        engine.edge_map(
            VertexSubset(6, ids=np.array([0])),
            lambda s, d, w: np.unique(d),
            direction="out",
            output="sparse",
        )
        assert engine._sparse_list_cursor != before


class TestRawHooks:
    def test_record_offset_and_adjacency(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        engine.record_offset_reads(0, np.array([0, 1]))
        engine.record_adjacency_reads(0, np.array([0, 1, 2]))
        tr = engine.build_trace()
        assert tr.count(access_class=AccessClass.EDGELIST) == 5

    def test_record_prop_access(self, tiny_graph):
        engine = LigraEngine(tiny_graph, num_cores=2)
        p = engine.alloc_prop("c", np.int64)
        engine.record_prop_access(1, p, np.array([2, 3]), write=True, atomic=True)
        tr = engine.build_trace()
        assert tr.count(atomic=True) == 2
        assert tr.vertex.tolist()[-2:] == [2, 3]
