"""Tests for vertex-property arrays and their memory layout."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.ligra.props import alloc_prop, alloc_struct_props
from repro.ligra.trace import AccessClass, AddressSpace


class TestAllocProp:
    def test_basic_layout(self):
        space = AddressSpace()
        p = alloc_prop(space, "rank", 10, np.float64)
        assert p.type_size == 8
        assert p.stride == 8
        assert p.num_vertices == 10
        assert p.start_addr == p.region.base

    def test_addresses(self):
        space = AddressSpace()
        p = alloc_prop(space, "rank", 10, np.float64)
        np.testing.assert_array_equal(
            p.addr(np.array([0, 3])), [p.start_addr, p.start_addr + 24]
        )
        assert p.addr_one(2) == p.start_addr + 16

    def test_explicit_type_size(self):
        space = AddressSpace()
        p = alloc_prop(space, "bit", 10, np.uint8, type_size=1)
        assert p.type_size == 1
        assert p.addr_one(5) == p.start_addr + 5

    def test_fill_value(self):
        space = AddressSpace()
        p = alloc_prop(space, "dist", 4, np.int32, fill=7)
        assert p.values.tolist() == [7, 7, 7, 7]

    def test_vertex_of_inverts_addr(self):
        space = AddressSpace()
        p = alloc_prop(space, "x", 10, np.int64)
        for v in (0, 4, 9):
            assert p.vertex_of(p.addr_one(v)) == v

    def test_vertex_of_out_of_region(self):
        space = AddressSpace()
        p = alloc_prop(space, "x", 4, np.int64)
        with pytest.raises(TraceError):
            p.vertex_of(p.start_addr - 8)

    def test_addr_one_out_of_range(self):
        space = AddressSpace()
        p = alloc_prop(space, "x", 4, np.int64)
        with pytest.raises(TraceError):
            p.addr_one(4)

    def test_region_is_vtxprop_class(self):
        space = AddressSpace()
        p = alloc_prop(space, "x", 4, np.int64)
        assert p.region.access_class is AccessClass.VTXPROP

    def test_bad_type_size(self):
        space = AddressSpace()
        with pytest.raises(TraceError):
            alloc_prop(space, "x", 4, np.int64, type_size=-2)


class TestStructProps:
    def test_stride_is_struct_size(self):
        space = AddressSpace()
        props = alloc_struct_props(
            space, "node", 8, [("len", np.int32), ("visited", np.int32)]
        )
        assert len(props) == 2
        for p in props:
            assert p.stride == 8
            assert p.type_size == 4

    def test_field_offsets(self):
        space = AddressSpace()
        a, b = alloc_struct_props(
            space, "node", 8, [("len", np.int32), ("visited", np.int32)]
        )
        assert b.start_addr == a.start_addr + 4
        # Consecutive entries of the same field are one struct apart.
        assert a.addr_one(1) - a.addr_one(0) == 8

    def test_mixed_field_sizes(self):
        space = AddressSpace()
        a, b = alloc_struct_props(
            space, "node", 4, [("rank", np.float64), ("flag", np.uint8)]
        )
        assert a.stride == 9
        assert b.start_addr == a.start_addr + 8

    def test_empty_fields_rejected(self):
        with pytest.raises(TraceError):
            alloc_struct_props(AddressSpace(), "node", 4, [])

    def test_fields_do_not_collide(self):
        space = AddressSpace()
        a, b = alloc_struct_props(
            space, "node", 16, [("x", np.int32), ("y", np.int32)]
        )
        ax = set(a.addr(np.arange(16)).tolist())
        bx = set(b.addr(np.arange(16)).tolist())
        assert not ax & bx
