"""Tests for the atomic-operation vocabulary."""

import numpy as np
import pytest

from repro.ligra.atomics import AtomicOp, apply_atomic, scatter_atomic


class TestApplyAtomic:
    def test_fp_add(self):
        out = apply_atomic(
            AtomicOp.FP_ADD, np.array([1.0, 2.0]), np.array([0.5, 0.5])
        )
        np.testing.assert_allclose(out, [1.5, 2.5])

    def test_sint_min(self):
        out = apply_atomic(
            AtomicOp.SINT_MIN, np.array([5, -3]), np.array([2, 0])
        )
        np.testing.assert_array_equal(out, [2, -3])

    def test_uint_min(self):
        out = apply_atomic(
            AtomicOp.UINT_MIN,
            np.array([5, 3], dtype=np.uint32),
            np.array([7, 1], dtype=np.uint32),
        )
        np.testing.assert_array_equal(out, [5, 1])

    def test_or(self):
        out = apply_atomic(
            AtomicOp.OR,
            np.array([0b01, 0b10], dtype=np.uint32),
            np.array([0b10, 0b10], dtype=np.uint32),
        )
        np.testing.assert_array_equal(out, [0b11, 0b10])

    def test_sint_add(self):
        out = apply_atomic(AtomicOp.SINT_ADD, np.array([1, 2]), np.array([3, -1]))
        np.testing.assert_array_equal(out, [4, 1])

    def test_uint_cas_only_writes_sentinel(self):
        sentinel = np.iinfo(np.uint32).max
        cur = np.array([sentinel, 7], dtype=np.uint32)
        out = apply_atomic(AtomicOp.UINT_CAS, cur, np.array([3, 3], dtype=np.uint32))
        np.testing.assert_array_equal(out, [3, 7])


class TestScatterAtomic:
    def test_add_with_duplicates(self):
        arr = np.zeros(4)
        changed = scatter_atomic(
            AtomicOp.FP_ADD,
            arr,
            np.array([1, 1, 2]),
            np.array([1.0, 2.0, 0.0]),
        )
        np.testing.assert_allclose(arr, [0, 3.0, 0, 0])
        # index 2 added 0.0: value unchanged, so not reported.
        assert changed.tolist() == [1]

    def test_min_with_duplicates_sequentially_equivalent(self):
        arr = np.full(3, 100, dtype=np.int64)
        scatter_atomic(
            AtomicOp.SINT_MIN,
            arr,
            np.array([0, 0, 0]),
            np.array([50, 10, 70]),
        )
        assert arr[0] == 10

    def test_changed_set_deduplicated(self):
        arr = np.full(4, 100, dtype=np.int64)
        changed = scatter_atomic(
            AtomicOp.SINT_MIN,
            arr,
            np.array([2, 2, 3]),
            np.array([1, 2, 99]),
        )
        assert changed.tolist() == [2, 3]

    def test_unchanged_not_reported(self):
        arr = np.array([5, 5], dtype=np.int64)
        changed = scatter_atomic(
            AtomicOp.SINT_MIN, arr, np.array([0]), np.array([9])
        )
        assert len(changed) == 0

    def test_cas_first_writer_wins(self):
        sentinel = np.iinfo(np.uint32).max
        arr = np.full(3, sentinel, dtype=np.uint32)
        changed = scatter_atomic(
            AtomicOp.UINT_CAS,
            arr,
            np.array([1, 1]),
            np.array([10, 20], dtype=np.uint32),
        )
        assert arr[1] == 10
        assert changed.tolist() == [1]

    def test_cas_skips_visited(self):
        arr = np.array([7], dtype=np.uint32)
        changed = scatter_atomic(
            AtomicOp.UINT_CAS, arr, np.array([0]), np.array([3], dtype=np.uint32)
        )
        assert arr[0] == 7
        assert len(changed) == 0

    def test_empty_indices(self):
        arr = np.zeros(3)
        changed = scatter_atomic(
            AtomicOp.FP_ADD, arr, np.zeros(0, dtype=np.int64), np.zeros(0)
        )
        assert len(changed) == 0

    def test_or_scatter(self):
        arr = np.zeros(2, dtype=np.uint32)
        changed = scatter_atomic(
            AtomicOp.OR,
            arr,
            np.array([0, 0, 1]),
            np.array([1, 2, 0], dtype=np.uint32),
        )
        assert arr[0] == 3
        assert changed.tolist() == [0]


class TestMetadata:
    def test_floating_point_flag(self):
        assert AtomicOp.FP_ADD.is_floating_point
        assert AtomicOp.FP_ADD_DEP.is_floating_point
        assert not AtomicOp.SINT_MIN.is_floating_point

    def test_paper_labels(self):
        assert AtomicOp.FP_ADD.paper_label == "fp add"
        assert AtomicOp.UINT_CAS.paper_label == "unsigned comp."

    @pytest.mark.parametrize("op", list(AtomicOp))
    def test_every_op_has_label(self, op):
        assert op.paper_label
