"""Tests for sparse/dense vertex subsets."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.ligra.vertex_subset import VertexSubset


class TestConstruction:
    def test_from_ids(self):
        s = VertexSubset(10, ids=np.array([3, 1, 1, 7]))
        assert len(s) == 3
        assert s.to_sparse().tolist() == [1, 3, 7]

    def test_from_dense(self):
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        s = VertexSubset(5, dense=mask)
        assert s.to_sparse().tolist() == [2]

    def test_requires_exactly_one_representation(self):
        with pytest.raises(TraceError):
            VertexSubset(5)
        with pytest.raises(TraceError):
            VertexSubset(5, ids=np.array([1]), dense=np.zeros(5, bool))

    def test_out_of_range_ids(self):
        with pytest.raises(TraceError):
            VertexSubset(5, ids=np.array([5]))
        with pytest.raises(TraceError):
            VertexSubset(5, ids=np.array([-1]))

    def test_wrong_dense_shape(self):
        with pytest.raises(TraceError):
            VertexSubset(5, dense=np.zeros(4, bool))

    def test_dense_mask_copied(self):
        mask = np.zeros(4, dtype=bool)
        s = VertexSubset(4, dense=mask)
        mask[0] = True
        assert len(s) == 0


class TestConstructors:
    def test_empty(self):
        s = VertexSubset.empty(8)
        assert len(s) == 0
        assert not s

    def test_single(self):
        s = VertexSubset.single(8, 3)
        assert list(s) == [3]

    def test_full(self):
        s = VertexSubset.full(4)
        assert len(s) == 4

    def test_from_ids_iterable(self):
        s = VertexSubset.from_ids(10, (9, 0, 9))
        assert list(s) == [0, 9]


class TestViews:
    def test_roundtrip_sparse_dense(self):
        s = VertexSubset(6, ids=np.array([0, 5]))
        dense = s.to_dense()
        assert dense.tolist() == [True, False, False, False, False, True]
        s2 = VertexSubset(6, dense=dense)
        assert s == s2

    def test_contains(self):
        s = VertexSubset(6, ids=np.array([2]))
        assert 2 in s
        assert 3 not in s

    def test_iteration_sorted(self):
        s = VertexSubset(10, ids=np.array([7, 1, 4]))
        assert list(s) == [1, 4, 7]

    def test_bool(self):
        assert VertexSubset.single(3, 0)
        assert not VertexSubset.empty(3)

    def test_equality_and_hash(self):
        a = VertexSubset(5, ids=np.array([1, 2]))
        b = VertexSubset(5, dense=np.array([False, True, True, False, False]))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_universe(self):
        a = VertexSubset(5, ids=np.array([1]))
        b = VertexSubset(6, ids=np.array([1]))
        assert a != b


class TestDirectionHeuristic:
    def test_small_frontier_stays_sparse(self):
        deg = np.full(100, 5)
        s = VertexSubset(100, ids=np.array([0]))
        assert not s.should_use_dense(deg, num_edges=500)

    def test_large_frontier_goes_dense(self):
        deg = np.full(100, 5)
        s = VertexSubset.full(100)
        assert s.should_use_dense(deg, num_edges=500)

    def test_hub_frontier_goes_dense(self):
        deg = np.ones(100, dtype=np.int64)
        deg[0] = 99
        s = VertexSubset(100, ids=np.array([0]))
        assert s.should_use_dense(deg, num_edges=199)


class TestAlgebra:
    def test_union(self):
        a = VertexSubset(6, ids=np.array([0, 1]))
        b = VertexSubset(6, ids=np.array([1, 2]))
        assert list(a.union(b)) == [0, 1, 2]

    def test_difference(self):
        a = VertexSubset(6, ids=np.array([0, 1, 2]))
        b = VertexSubset(6, ids=np.array([1]))
        assert list(a.difference(b)) == [0, 2]

    def test_intersection(self):
        a = VertexSubset(6, ids=np.array([0, 1, 2]))
        b = VertexSubset(6, ids=np.array([1, 5]))
        assert list(a.intersection(b)) == [1]

    def test_universe_mismatch(self):
        a = VertexSubset(6, ids=np.array([0]))
        b = VertexSubset(7, ids=np.array([0]))
        with pytest.raises(TraceError):
            a.union(b)
