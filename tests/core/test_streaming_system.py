"""Out-of-core streaming through run_system and the CLI.

The segmented pipeline (generation → store → replay) must be invisible
in the numbers: every streamed path — cold without a store, cold with a
store (spool adopted by rename), warm from the store — produces
simulated counters bit-identical to the plain in-core run, while the
report and manifest record how the run was segmented.
"""

import json
import os

import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.core.system import (
    ENV_SEGMENT_EVENTS,
    _resolve_segment_events,
    run_system,
)
from repro.errors import SimulationError
from repro.graph.generators import rmat_graph
from repro.obs.manifest_diff import diff_manifests
from repro.store import TraceStore


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, edge_factor=8, seed=33)


@pytest.fixture(scope="module")
def omega_cfg():
    return SimConfig.scaled_omega(num_cores=4)


@pytest.fixture(scope="module")
def incore(graph, omega_cfg):
    return run_system(graph, "pagerank", omega_cfg, dataset="t", cache=False)


class TestStreamedRunSystem:
    def test_streamed_counters_bit_identical(self, graph, omega_cfg, incore):
        streamed = run_system(graph, "pagerank", omega_cfg, dataset="t",
                              cache=False, segment_events=2000)
        assert streamed.stats.as_dict() == incore.stats.as_dict()
        assert streamed.cycles == incore.cycles
        assert streamed.energy.as_dict() == incore.energy.as_dict()
        assert streamed.streamed is True
        assert streamed.segment_events == 2000
        assert streamed.num_segments > 1
        assert streamed.trace_events == incore.trace_events
        assert streamed.trace_bytes == incore.trace_bytes

    def test_in_core_run_reports_no_segmentation(self, incore):
        assert incore.streamed is False
        assert incore.segment_events is None
        assert incore.num_segments == 1

    def test_peak_rss_recorded(self, incore):
        assert incore.peak_rss_bytes is not None
        assert incore.peak_rss_bytes > 0

    def test_cold_store_adopts_spool(self, graph, omega_cfg, incore,
                                     tmp_path):
        store = TraceStore(tmp_path)
        cold = run_system(graph, "pagerank", omega_cfg, dataset="t",
                          cache=store, segment_events=2000)
        assert cold.stats.as_dict() == incore.stats.as_dict()
        assert cold.trace_cache["hit"] is False
        assert len(store) == 1
        # The spool was renamed into place, not copied and left behind.
        assert not any(
            p.name.startswith(".") for p in tmp_path.iterdir()
        )

    def test_warm_hit_streams_without_rehydrating(self, graph, omega_cfg,
                                                  incore, tmp_path):
        store = TraceStore(tmp_path)
        run_system(graph, "pagerank", omega_cfg, dataset="t",
                   cache=store, segment_events=2000)
        warm = run_system(graph, "pagerank", omega_cfg, dataset="t",
                          cache=store, segment_events=2000)
        assert warm.trace_cache["hit"] is True
        assert warm.streamed is True
        assert warm.stats.as_dict() == incore.stats.as_dict()
        # And the same entry still serves whole-trace consumers.
        plain = run_system(graph, "pagerank", omega_cfg, dataset="t",
                           cache=store)
        assert plain.trace_cache["hit"] is True
        assert plain.streamed is False
        assert plain.stats.as_dict() == incore.stats.as_dict()

    def test_streamed_vs_incore_manifest_diff_zero_tolerance(
        self, graph, omega_cfg, incore
    ):
        streamed = run_system(graph, "pagerank", omega_cfg, dataset="t",
                              cache=False, segment_events=2000)
        result = diff_manifests(incore.manifest(), streamed.manifest(),
                                tolerance=0.0)
        assert result.ok, result.regressions

    def test_manifest_records_segmentation(self, graph, omega_cfg,
                                           tmp_path):
        path = tmp_path / "deep" / "nested" / "run.json"
        run_system(graph, "pagerank", omega_cfg, dataset="t", cache=False,
                   segment_events=2000, manifest_path=path)
        doc = json.loads(path.read_text())
        seg = doc["segmentation"]
        assert seg["streamed"] is True
        assert seg["segment_events"] == 2000
        assert seg["num_segments"] > 1
        assert doc["replay"]["peak_rss_bytes"] > 0

    def test_windowed_timeline_streams_identically(self, graph, omega_cfg,
                                                   tmp_path):
        a = run_system(graph, "pagerank", omega_cfg, dataset="t",
                       cache=False, obs_window=3000)
        b = run_system(graph, "pagerank", omega_cfg, dataset="t",
                       cache=False, obs_window=3000, segment_events=2000)
        cols_a = dict(a.timeline.columns)
        cols_b = dict(b.timeline.columns)
        cols_a.pop("wall_seconds"), cols_b.pop("wall_seconds")
        assert cols_a == cols_b


class TestSegmentEventsResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SEGMENT_EVENTS, "111")
        assert _resolve_segment_events(222) == 222

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_SEGMENT_EVENTS, "333")
        assert _resolve_segment_events(None) == 333

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_SEGMENT_EVENTS, raising=False)
        assert _resolve_segment_events(None) is None

    def test_nonpositive_means_off(self, monkeypatch):
        monkeypatch.setenv(ENV_SEGMENT_EVENTS, "0")
        assert _resolve_segment_events(None) is None
        assert _resolve_segment_events(-5) is None

    def test_junk_env_rejected(self, monkeypatch, graph, omega_cfg):
        monkeypatch.setenv(ENV_SEGMENT_EVENTS, "lots")
        with pytest.raises(SimulationError, match=ENV_SEGMENT_EVENTS):
            run_system(graph, "pagerank", omega_cfg, cache=False)

    def test_env_var_streams_run_system(self, monkeypatch, graph,
                                        omega_cfg, incore):
        monkeypatch.setenv(ENV_SEGMENT_EVENTS, "2000")
        rep = run_system(graph, "pagerank", omega_cfg, dataset="t",
                         cache=False)
        assert rep.streamed is True
        assert rep.segment_events == 2000
        assert rep.stats.as_dict() == incore.stats.as_dict()


class TestCliStreaming:
    def test_segment_events_flag(self, capsys):
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--segment-events", "4000", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "streamed:" in out

    def test_flag_matches_in_core_cycles(self, capsys):
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "--dataset", "sd", "--scale", "0.5",
                     "--segment-events", "4000", "--no-cache"]) == 0
        streamed = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(("cycles:", "dram_bytes:", "energy_nj:"))
        ]
        assert pick(plain) == pick(streamed)


class TestOutputPathParents:
    """Every CLI output path creates missing parent directories."""

    def test_run_outputs_in_fresh_directories(self, tmp_path, capsys):
        manifest = tmp_path / "m" / "run.json"
        trace_out = tmp_path / "t" / "trace.json"
        metrics = tmp_path / "x" / "timeline.csv"
        assert main([
            "run", "--dataset", "sd", "--scale", "0.5", "--no-cache",
            "--manifest", str(manifest),
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics),
        ]) == 0
        assert manifest.exists() and trace_out.exists() and metrics.exists()

    def test_sweep_outputs_in_fresh_directories(self, tmp_path, capsys):
        json_out = tmp_path / "a" / "rows.json"
        csv_out = tmp_path / "b" / "rows.csv"
        assert main([
            "sweep", "--datasets", "sd", "--algorithms", "pagerank",
            "--backends", "baseline", "--scale", "0.5", "--no-cache",
            "--json-out", str(json_out), "--csv-out", str(csv_out),
        ]) == 0
        assert json_out.exists() and csv_out.exists()
        doc = json.loads(json_out.read_text())
        assert doc["rows"]

    def test_run_system_cleans_spool_without_store(self, graph, omega_cfg,
                                                   tmp_path, monkeypatch):
        # Point the system temp directory somewhere observable: after a
        # storeless streamed run, no spool file may remain.
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            run_system(graph, "pagerank", omega_cfg, dataset="t",
                       cache=False, segment_events=2000)
            assert list(tmp_path.iterdir()) == []
        finally:
            tempfile.tempdir = None
