"""Tests for the scratchpad controller (monitor/partition/index units)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ligra.props import alloc_prop, alloc_struct_props
from repro.ligra.trace import AddressSpace
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import (
    MonitorRegister,
    ScratchpadController,
    hot_capacity_for,
)


@pytest.fixture()
def controller():
    space = AddressSpace()
    props = [
        alloc_prop(space, "rank", 100, np.float64),
        alloc_prop(space, "bits", 100, np.uint8, type_size=1),
    ]
    mapping = ScratchpadMapping(num_cores=4, hot_capacity=40, chunk_size=4)
    return ScratchpadController(props, mapping), props


class TestMonitorUnit:
    def test_matches_registered_range(self, controller):
        ctrl, props = controller
        rank = props[0]
        assert ctrl.monitor(rank.addr_one(0)) == 0
        assert ctrl.monitor(rank.addr_one(7)) == 7

    def test_second_prop_matches(self, controller):
        ctrl, props = controller
        bits = props[1]
        assert ctrl.monitor(bits.addr_one(99)) == 99

    def test_unregistered_address_ignored(self, controller):
        ctrl, props = controller
        assert ctrl.monitor(0x10) is None
        assert ctrl.monitor(props[1].region.end + 4096) is None

    def test_mid_entry_address_resolves(self, controller):
        ctrl, props = controller
        # An address inside an 8-byte entry maps to that vertex.
        assert ctrl.monitor(props[0].addr_one(3) + 4) == 3

    def test_struct_stride_respected(self):
        space = AddressSpace()
        props = alloc_struct_props(
            space, "node", 50, [("len", np.int32), ("vis", np.int32)]
        )
        ctrl = ScratchpadController(props, ScratchpadMapping(2, 50))
        vis = props[1]
        assert ctrl.monitor(vis.addr_one(10)) == 10


class TestMonitorRegister:
    def test_register_fields(self):
        r = MonitorRegister("x", start_addr=0x1000, type_size=8, stride=8,
                            num_entries=10)
        assert r.end_addr == 0x1000 + 80
        assert r.matches(0x1000)
        assert not r.matches(0x1000 + 80)
        assert r.vertex_of(0x1000 + 16) == 2


class TestPartitionAndIndex:
    def test_route_hot_vertex(self, controller):
        ctrl, _ = controller
        route = ctrl.route(5, requester_core=0)
        assert route is not None
        home, line, local = route
        assert home == ctrl.mapping.home(5)
        assert line == ctrl.mapping.line(5)

    def test_route_local_flag(self, controller):
        ctrl, _ = controller
        v = 0  # chunk 0 -> pad 0
        _, _, local = ctrl.route(v, requester_core=0)
        assert local
        _, _, remote = ctrl.route(v, requester_core=1)
        assert not remote

    def test_route_cold_vertex(self, controller):
        ctrl, _ = controller
        assert ctrl.route(40, requester_core=0) is None

    def test_describe_registers(self, controller):
        ctrl, props = controller
        desc = ctrl.describe_registers()
        assert {d["name"] for d in desc} == {"rank", "bits"}
        assert all("start_addr" in d for d in desc)


class TestHotCapacity:
    def test_basic(self):
        # 90 bytes / (8+1) per vertex = 10 vertices.
        assert hot_capacity_for(90, 8, 1000) == 10

    def test_clamped_to_graph(self):
        assert hot_capacity_for(10**6, 8, 50) == 50

    def test_zero_storage(self):
        assert hot_capacity_for(0, 8, 100) == 0

    def test_invalid_line(self):
        with pytest.raises(ConfigError):
            hot_capacity_for(100, -2, 100)
