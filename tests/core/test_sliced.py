"""Tests for the Section VII sliced-execution driver."""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.core.sliced import run_sliced, slice_plan
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def big_graph():
    # 2048 vertices: top-20% (410) overflows a 128-vertex scratchpad.
    return rmat_graph(11, edge_factor=6, seed=17)


@pytest.fixture(scope="module")
def tiny_sp_config():
    # 16 cores x 72 B pads = 1152 B -> 128 nine-byte vertices.
    return SimConfig.scaled_omega().with_scratchpad_bytes(72)


class TestSlicePlan:
    def test_plain_plan_sizes_by_full_capacity(self, big_graph, tiny_sp_config):
        slices = slice_plan(big_graph, tiny_sp_config, 9, power_law_aware=False)
        capacity = tiny_sp_config.scratchpad_total_bytes // 9
        assert all(s.num_owned_vertices <= capacity for s in slices)

    def test_aware_plan_has_fewer_slices(self, big_graph, tiny_sp_config):
        plain = slice_plan(big_graph, tiny_sp_config, 9, power_law_aware=False)
        aware = slice_plan(big_graph, tiny_sp_config, 9, power_law_aware=True)
        assert len(aware) < len(plain)
        # The paper's ~5x claim (1 / hot_fraction).
        assert len(plain) / len(aware) >= 3

    def test_zero_capacity_rejected(self, big_graph):
        cfg = SimConfig.scaled_omega().with_scratchpad_bytes(0)
        with pytest.raises(SimulationError, match="capacity"):
            slice_plan(big_graph, cfg, 9, power_law_aware=True)


class TestRunSliced:
    def test_requires_omega_config(self, big_graph):
        with pytest.raises(SimulationError, match="OMEGA"):
            run_sliced(big_graph, "pagerank",
                       config=SimConfig.scaled_baseline())

    def test_report_accounting(self, big_graph, tiny_sp_config):
        rep = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                         power_law_aware=True)
        assert rep.num_slices == len(rep.slice_reports)
        assert rep.total_cycles == pytest.approx(
            rep.compute_cycles + rep.merge_cycles
        )
        assert 0 <= rep.overhead_fraction < 1

    def test_each_slice_hot_set_fits(self, big_graph, tiny_sp_config):
        rep = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                         power_law_aware=False)
        # With plain slicing every slice's vtxProp fits entirely, so
        # every slice's run reports full hot coverage of its range...
        # hot_fraction is relative to all n vertices, so just check the
        # per-slice hot capacity covers the owned range.
        capacity = tiny_sp_config.scratchpad_total_bytes // 9
        for r in rep.slice_reports:
            assert r.hot_capacity <= max(capacity, 1)

    def test_aware_beats_plain(self, big_graph, tiny_sp_config):
        plain = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                           power_law_aware=False)
        aware = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                           power_law_aware=True)
        assert aware.num_slices < plain.num_slices
        assert aware.total_cycles < plain.total_cycles

    def test_merge_overhead_grows_with_slices(self, big_graph, tiny_sp_config):
        plain = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                           power_law_aware=False)
        aware = run_sliced(big_graph, "pagerank", config=tiny_sp_config,
                           power_law_aware=True)
        assert plain.merge_cycles >= aware.merge_cycles
