"""Tests for the offload compiler (source-to-source tool analogue)."""

import numpy as np
import pytest

from repro.errors import OffloadError
from repro.core.offload import (
    REG_DST_VERTEX,
    REG_OPERAND,
    UpdateSpec,
    compile_update,
    generate_config_code,
    microcode_for_algorithm,
    render_offload_stub,
)
from repro.ligra.atomics import AtomicOp
from repro.ligra.props import alloc_prop
from repro.ligra.trace import AddressSpace
from repro.memsim.pisc import MicroOp


class TestCompileUpdate:
    def test_canonical_sequence(self):
        mc = compile_update(UpdateSpec("u", AtomicOp.FP_ADD))
        assert mc.ops == (MicroOp.SP_READ, MicroOp.ALU, MicroOp.SP_WRITE)

    def test_guarded_adds_guard(self):
        mc = compile_update(UpdateSpec("u", AtomicOp.UINT_CAS, guarded=True))
        assert MicroOp.GUARD in mc.ops
        assert mc.ops.index(MicroOp.GUARD) < mc.ops.index(MicroOp.ALU)

    def test_dense_active_list(self):
        mc = compile_update(
            UpdateSpec("u", AtomicOp.OR, active_list="dense")
        )
        assert mc.ops[-1] is MicroOp.SET_ACTIVE_DENSE

    def test_sparse_active_list(self):
        mc = compile_update(
            UpdateSpec("u", AtomicOp.SINT_MIN, active_list="sparse")
        )
        assert mc.ops[-1] is MicroOp.APPEND_ACTIVE_SPARSE

    def test_bad_active_list(self):
        with pytest.raises(OffloadError):
            UpdateSpec("u", AtomicOp.FP_ADD, active_list="bitmap")

    def test_cycles_positive(self):
        mc = compile_update(UpdateSpec("u", AtomicOp.FP_ADD))
        assert mc.cycles >= 3


class TestAlgorithmMicrocode:
    @pytest.mark.parametrize(
        "name", ["pagerank", "bfs", "sssp", "bc", "radii", "cc", "tc", "kc"]
    )
    def test_every_algorithm_compiles(self, name):
        mc = microcode_for_algorithm(name)
        assert MicroOp.ALU in mc.ops

    def test_pagerank_uses_fp_add(self):
        assert microcode_for_algorithm("pagerank").alu_op is AtomicOp.FP_ADD

    def test_sssp_is_guarded_min(self):
        mc = microcode_for_algorithm("sssp")
        assert mc.alu_op is AtomicOp.SINT_MIN
        assert MicroOp.GUARD in mc.ops

    def test_unknown_algorithm(self):
        with pytest.raises(OffloadError, match="no update spec"):
            microcode_for_algorithm("apsp")


class TestConfigCode:
    def _props(self):
        space = AddressSpace()
        return [
            alloc_prop(space, "next_pagerank", 100, np.float64),
            alloc_prop(space, "active_bits", 100, np.uint8, type_size=1),
        ]

    def test_emits_all_monitor_registers(self):
        props = self._props()
        writes = generate_config_code(
            props, microcode_for_algorithm("pagerank"), 100
        )
        comments = [w.comment for w in writes]
        for prop in props:
            assert f"{prop.name}.start_addr" in comments
            assert f"{prop.name}.type_size" in comments
            assert f"{prop.name}.stride" in comments

    def test_emits_optype_and_vertex_count(self):
        writes = generate_config_code(
            self._props(), microcode_for_algorithm("pagerank"), 100
        )
        assert writes[0].register == 0  # optype
        assert writes[1].value == 100  # num vertices

    def test_emits_microcode_words(self):
        mc = microcode_for_algorithm("sssp")
        writes = generate_config_code(self._props(), mc, 100)
        micro = [w for w in writes if w.comment.startswith("microcode")]
        assert len(micro) == len(mc.ops)

    def test_register_values_match_layout(self):
        props = self._props()
        writes = generate_config_code(
            props, microcode_for_algorithm("pagerank"), 100
        )
        by_comment = {w.comment: w.value for w in writes}
        assert by_comment["next_pagerank.start_addr"] == props[0].start_addr
        assert by_comment["next_pagerank.type_size"] == 8

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(OffloadError):
            generate_config_code([], microcode_for_algorithm("pagerank"), -1)

    def test_render(self):
        writes = generate_config_code(
            self._props(), microcode_for_algorithm("pagerank"), 10
        )
        line = writes[0].render()
        assert line.startswith("mmio_write(R0,")


class TestOffloadStub:
    def test_fig13_shape(self):
        lines = render_offload_stub(
            UpdateSpec("sssp_update", AtomicOp.SINT_MIN, guarded=True)
        )
        assert any(f"R{REG_OPERAND}" in line for line in lines)
        assert any(f"R{REG_DST_VERTEX}" in line for line in lines)
        assert any("sssp_update" in line for line in lines)


class TestCompoundUpdates:
    def test_radii_microcode_has_two_alu_steps(self):
        mc = microcode_for_algorithm("radii")
        assert mc.ops.count(MicroOp.ALU) == 2
        assert mc.alu_ops == (AtomicOp.OR, AtomicOp.SINT_MIN)

    def test_compound_costs_more_cycles(self):
        simple = compile_update(UpdateSpec("u", AtomicOp.OR))
        compound = compile_update(
            UpdateSpec("u", AtomicOp.OR, extra_ops=(AtomicOp.SINT_MIN,))
        )
        assert compound.cycles == simple.cycles + 1

    def test_single_op_alu_ops(self):
        mc = compile_update(UpdateSpec("u", AtomicOp.FP_ADD))
        assert mc.alu_ops == (AtomicOp.FP_ADD,)

    def test_mismatched_alu_count_rejected(self):
        from repro.errors import OffloadError
        from repro.memsim.pisc import Microcode

        with pytest.raises(OffloadError, match="ALU steps"):
            Microcode("bad", (MicroOp.SP_READ, MicroOp.ALU, MicroOp.ALU,
                              MicroOp.SP_WRITE), AtomicOp.OR)
