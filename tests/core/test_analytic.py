"""Tests for the high-level large-graph model (Fig 20 machinery)."""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.core.analytic import (
    LARGE_GRAPHS,
    LargeGraph,
    WorkloadProfile,
    calibrate_zipf_exponent,
    estimate_cycles,
    estimate_speedup,
    zipf_coverage,
)
from repro.algorithms.pagerank import run_pagerank


class TestZipf:
    def test_coverage_monotone_in_fraction(self):
        s = 0.8
        vals = [zipf_coverage(f, s) for f in (0.01, 0.05, 0.2, 0.5, 1.0)]
        assert vals == sorted(vals)
        assert vals[-1] == 1.0

    def test_coverage_grows_with_skew(self):
        assert zipf_coverage(0.2, 0.9) > zipf_coverage(0.2, 0.3)

    def test_zero_fraction(self):
        assert zipf_coverage(0.0, 0.5) == 0.0

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            zipf_coverage(1.5, 0.5)
        with pytest.raises(SimulationError):
            zipf_coverage(0.2, 1.5)

    def test_calibration_roundtrip(self):
        s = calibrate_zipf_exponent(0.05, 0.47)
        assert zipf_coverage(0.05, s) == pytest.approx(0.47)

    def test_calibration_uniform_case(self):
        s = calibrate_zipf_exponent(0.2, 0.1)
        assert s == pytest.approx(0.0, abs=1e-3)

    def test_calibration_validates(self):
        with pytest.raises(SimulationError):
            calibrate_zipf_exponent(0.0, 0.5)


class TestLargeGraphRegistry:
    def test_uk_and_twitter_present(self):
        assert set(LARGE_GRAPHS) == {"uk", "twitter"}

    def test_paper_coverage_points_encoded(self):
        tw = LARGE_GRAPHS["twitter"]
        # "5% of the most-connected vertices are responsible for 47% of
        # the total vtxProp accesses" (paper Section X).
        assert zipf_coverage(0.05, tw.zipf_s) == pytest.approx(0.47)


@pytest.fixture(scope="module")
def pagerank_profile(request):
    import repro.graph.generators as gen

    g = gen.rmat_graph(9, edge_factor=8, seed=21)
    res = run_pagerank(g)
    return WorkloadProfile.from_trace("pagerank", res.trace, g)


class TestWorkloadProfile:
    def test_measured_rates_sane(self, pagerank_profile):
        p = pagerank_profile
        assert p.vtxprop_atomic_per_edge == pytest.approx(1.0, rel=0.05)
        assert p.edgelist_per_edge > 0.5
        assert p.vtxprop_src_read_per_edge == pytest.approx(0.0, abs=0.05)

    def test_empty_graph_guarded(self):
        from repro.ligra.trace import TraceBuilder
        from repro.graph.csr import from_edges

        g = from_edges([(0, 1)], num_vertices=2)
        profile = WorkloadProfile.from_trace("x", TraceBuilder().build(), g)
        assert profile.vtxprop_atomic_per_edge == 0.0


class TestEstimates:
    def test_omega_beats_baseline_on_twitter(self, pagerank_profile):
        speedup = estimate_speedup(LARGE_GRAPHS["twitter"], pagerank_profile)
        # Fig 20: ~1.68x for PageRank on twitter.
        assert 1.2 < speedup < 3.0

    def test_omega_beats_baseline_on_uk(self, pagerank_profile):
        speedup = estimate_speedup(LARGE_GRAPHS["uk"], pagerank_profile)
        assert speedup > 1.2

    def test_more_scratchpad_helps(self, pagerank_profile):
        uk = LARGE_GRAPHS["uk"]
        small = SimConfig.paper_omega().with_scratchpad_bytes(256 * 1024)
        big = SimConfig.paper_omega()
        c_small = estimate_cycles(uk, pagerank_profile, small, 8)
        c_big = estimate_cycles(uk, pagerank_profile, big, 8)
        assert c_big.cycles < c_small.cycles
        assert c_big.sp_coverage > c_small.sp_coverage

    def test_baseline_estimate_has_no_coverage(self, pagerank_profile):
        res = estimate_cycles(
            LARGE_GRAPHS["uk"], pagerank_profile, SimConfig.paper_baseline(), 8
        )
        assert res.sp_coverage == 0.0
        assert res.hot_fraction == 0.0

    def test_coverage_below_one_for_huge_graph(self, pagerank_profile):
        res = estimate_cycles(
            LARGE_GRAPHS["twitter"], pagerank_profile, SimConfig.paper_omega(), 8
        )
        # twitter's hot set overflows even 16 MB of scratchpads.
        assert res.hot_fraction < 0.2
        assert res.sp_coverage < 1.0

    def test_skewed_graph_gains_more(self, pagerank_profile):
        flat = LargeGraph("flat", 20_000_000, 300_000_000, 0.05, 0.4)
        skewed = LargeGraph("skewed", 20_000_000, 300_000_000, 0.85, 0.4)
        assert estimate_speedup(skewed, pagerank_profile) > estimate_speedup(
            flat, pagerank_profile
        )
