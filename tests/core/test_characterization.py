"""Tests for workload characterization (Figs 3-5 machinery)."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import TraceError
from repro.core.characterization import (
    access_fraction_to_top,
    measured_algorithm_profile,
    tmam_breakdown,
)
from repro.core.system import run_system
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.tc import run_tc


class TestAccessFractionToTop:
    def test_powerlaw_graph_concentrates(self, small_powerlaw):
        res = run_pagerank(small_powerlaw)
        frac = access_fraction_to_top(res.trace, small_powerlaw)
        # Fig 4b: over 75% in the paper; our stand-ins are a bit milder
        # but must clearly exceed the uniform 20% line.
        assert frac > 50.0

    def test_road_graph_does_not(self, small_road):
        res = run_pagerank(small_road)
        frac = access_fraction_to_top(res.trace, small_road)
        assert frac < 50.0

    def test_fraction_one_is_total(self, small_powerlaw):
        res = run_pagerank(small_powerlaw)
        assert access_fraction_to_top(
            res.trace, small_powerlaw, fraction=1.0
        ) == pytest.approx(100.0)

    def test_empty_trace(self, small_powerlaw):
        res = run_pagerank(small_powerlaw, trace=False)
        assert access_fraction_to_top(res.trace, small_powerlaw) == 0.0

    def test_invalid_fraction(self, small_powerlaw):
        res = run_pagerank(small_powerlaw)
        with pytest.raises(TraceError):
            access_fraction_to_top(res.trace, small_powerlaw, fraction=0)


class TestTmam:
    def test_baseline_memory_bound(self, small_powerlaw):
        rep = run_system(
            small_powerlaw, "pagerank", SimConfig.scaled_baseline(num_cores=4)
        )
        breakdown = tmam_breakdown(rep)
        # Fig 3: graph workloads are strongly memory bound (~71%).
        assert breakdown["memory_bound"] > 0.5
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_fractions_in_range(self, small_powerlaw):
        rep = run_system(
            small_powerlaw, "pagerank", SimConfig.scaled_baseline(num_cores=4)
        )
        for v in tmam_breakdown(rep).values():
            assert 0.0 <= v <= 1.0


class TestMeasuredProfile:
    def test_pagerank_profile(self, small_powerlaw):
        res = run_pagerank(small_powerlaw)
        prof = measured_algorithm_profile(res.trace)
        assert prof.total_events == res.trace.num_events
        assert prof.atomic_events == small_powerlaw.num_edges
        assert prof.atomic_fraction > 0.05
        # Random scatter to vtxProp dominates for PageRank.
        assert prof.random_fraction > 0.5

    def test_tc_profile_low_atomic_low_random(self, small_ba_undirected):
        res = run_tc(small_ba_undirected)
        prof = measured_algorithm_profile(res.trace)
        assert prof.edgelist_events > prof.vtxprop_events
        assert prof.atomic_fraction < 0.3

    def test_component_counts_sum(self, small_powerlaw):
        res = run_pagerank(small_powerlaw)
        prof = measured_algorithm_profile(res.trace)
        assert (
            prof.vtxprop_events + prof.edgelist_events + prof.ngraph_events
            == prof.total_events
        )

    def test_empty_trace_profile(self, small_powerlaw):
        res = run_pagerank(small_powerlaw, trace=False)
        prof = measured_algorithm_profile(res.trace)
        assert prof.total_events == 0
        assert prof.atomic_fraction == 0.0
