"""Tests for the shared-trace multi-backend driver (run_backends)."""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.core.system import (
    compare_systems,
    default_backend_config,
    run_backends,
    run_system,
)
from repro.graph.generators import rmat_graph
from repro.store import TraceStore

BACKENDS = ("baseline", "omega", "locked", "graphpim", "dynamic")


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, edge_factor=8, seed=21)


@pytest.fixture(scope="module")
def shared(graph):
    return run_backends(graph, "pagerank", BACKENDS, num_cores=4)


class TestDefaultBackendConfig:
    def test_roles(self):
        assert not default_backend_config("baseline").use_scratchpad
        assert not default_backend_config("graphpim").use_scratchpad
        omega = default_backend_config("omega")
        assert omega.use_scratchpad and omega.use_pisc
        locked = default_backend_config("locked")
        assert locked.use_scratchpad and not locked.use_pisc

    def test_num_cores_forwarded(self):
        assert default_backend_config("omega", num_cores=4).core.num_cores == 4


class TestRunBackends:
    def test_matches_solo_run_system(self, graph, shared):
        """Sharing the trace must not change any simulated counter:
        every backend's report equals a standalone run_system run."""
        for name in BACKENDS:
            solo = run_system(
                graph, "pagerank",
                default_backend_config(name, num_cores=4),
                backend=name, cache=False,
            )
            assert shared[name].stats.as_dict() == solo.stats.as_dict(), name
            assert shared[name].cycles == solo.cycles, name
            assert shared[name].energy.as_dict() == solo.energy.as_dict(), name
            assert shared[name].hot_capacity == solo.hot_capacity, name

    def test_preserves_request_order(self, shared):
        assert tuple(shared) == BACKENDS

    def test_generates_two_traces_for_default_grid(self, graph, tmp_path):
        """baseline/graphpim/dynamic share the original-order trace;
        omega/locked share the reordered one — two entries, not five."""
        store = TraceStore(tmp_path)
        run_backends(graph, "pagerank", BACKENDS, num_cores=4, cache=store)
        assert len(store) == 2

    def test_warm_store_hits_for_all_groups(self, graph, tmp_path):
        store = TraceStore(tmp_path)
        run_backends(graph, "pagerank", ("baseline", "omega"),
                     num_cores=4, cache=store)
        warm = run_backends(graph, "pagerank", ("baseline", "omega"),
                            num_cores=4, cache=store)
        assert all(r.trace_cache["hit"] for r in warm.values())

    def test_explicit_config_overrides_default(self, graph):
        cfg = SimConfig.scaled_omega(num_cores=2)
        reports = run_backends(graph, "pagerank", ("omega",),
                               configs={"omega": cfg})
        assert reports["omega"].config.core.num_cores == 2

    def test_empty_backends_rejected(self, graph):
        with pytest.raises(SimulationError):
            run_backends(graph, "pagerank", ())

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(SimulationError):
            run_backends(graph, "pagerank", ("tpu",))

    def test_source_pinned_once_for_traversals(self, graph):
        """bfs must resolve its default source before grouping so the
        reordered and original-order traces walk the same logical root."""
        reports = run_backends(graph, "bfs", ("baseline", "omega"),
                               num_cores=4)
        base, omega = reports["baseline"], reports["omega"]
        assert base.trace_events == pytest.approx(
            omega.trace_events, rel=0.05
        )


class TestCompareSystemsWrapper:
    def test_equals_run_backends(self, graph, shared):
        cmp = compare_systems(
            graph, "pagerank",
            SimConfig.scaled_baseline(num_cores=4),
            SimConfig.scaled_omega(num_cores=4),
        )
        assert (
            cmp.baseline.stats.as_dict()
            == shared["baseline"].stats.as_dict()
        )
        assert cmp.omega.stats.as_dict() == shared["omega"].stats.as_dict()

    def test_shares_cache_with_run_backends(self, graph, tmp_path):
        store = TraceStore(tmp_path)
        run_backends(graph, "pagerank", ("baseline", "omega"), cache=store)
        cmp = compare_systems(graph, "pagerank", cache=store)
        assert cmp.baseline.trace_cache["hit"]
        assert cmp.omega.trace_cache["hit"]
