"""RunContext/RunRequest: env resolution, specs, thread isolation."""

import threading

import pytest

from repro.core.context import (
    RunContext,
    RunRequest,
    attribution_from_env,
    cache_capacity_from_env,
    ledger_path_from_env,
    scalar_cache_from_env,
    segment_events_from_env,
)
from repro.errors import SimulationError
from repro.graph.generators import rmat_graph
from repro.store import TraceStore, set_store, reset_store


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, edge_factor=8, seed=21)


class TestEnvHelpers:
    def test_capacity_megabytes_to_bytes(self):
        assert cache_capacity_from_env({"REPRO_CACHE_CAPACITY_MB": "2"}) \
            == 2 * 1024 * 1024
        assert cache_capacity_from_env({}) is None

    def test_segment_events_parsing(self):
        assert segment_events_from_env({"REPRO_SEGMENT_EVENTS": "4096"}) \
            == 4096
        assert segment_events_from_env({"REPRO_SEGMENT_EVENTS": "0"}) is None
        assert segment_events_from_env({}) is None
        with pytest.raises(SimulationError):
            segment_events_from_env({"REPRO_SEGMENT_EVENTS": "lots"})

    def test_attribution_truthiness(self):
        for value in ("1", "true", "on", "YES"):
            assert attribution_from_env({"REPRO_ATTRIBUTION": value})
        for value in ("", "0", "off", "no"):
            assert not attribution_from_env({"REPRO_ATTRIBUTION": value})

    def test_ledger_empty_string_disables(self):
        assert ledger_path_from_env({"REPRO_LEDGER": ""}) is None
        assert ledger_path_from_env({"REPRO_LEDGER": "runs.jsonl"}) \
            == "runs.jsonl"

    def test_scalar_cache_is_exactly_one(self):
        assert scalar_cache_from_env({"REPRO_SCALAR_CACHE": "1"})
        assert not scalar_cache_from_env({"REPRO_SCALAR_CACHE": "true"})


class TestRunContext:
    def test_from_env_reads_the_given_mapping(self, tmp_path):
        ctx = RunContext.from_env(environ={
            "REPRO_CACHE_DIR": str(tmp_path / "store"),
            "REPRO_SEGMENT_EVENTS": "8192",
            "REPRO_ATTRIBUTION": "1",
            "REPRO_LEDGER": "runs.jsonl",
            "REPRO_SCALAR_CACHE": "1",
        })
        assert isinstance(ctx.store, TraceStore)
        assert ctx.segment_events == 8192
        assert ctx.attribution is True
        assert ctx.ledger_path == "runs.jsonl"
        assert ctx.scalar_cache is True

    def test_explicit_arguments_beat_environment(self, tmp_path):
        ctx = RunContext.from_env(
            cache=False, segment_events=16, attribution=False,
            environ={
                "REPRO_CACHE_DIR": str(tmp_path),
                "REPRO_SEGMENT_EVENTS": "8192",
                "REPRO_ATTRIBUTION": "1",
            },
        )
        assert ctx.store is None
        assert ctx.segment_events == 16
        assert ctx.attribution is False

    def test_installed_store_pin_wins_over_env(self, tmp_path):
        pinned = TraceStore(tmp_path / "pinned")
        set_store(pinned)
        try:
            ctx = RunContext.from_env(
                environ={"REPRO_CACHE_DIR": str(tmp_path / "other")}
            )
            assert ctx.store is pinned
        finally:
            reset_store()

    def test_set_store_none_pins_caching_off(self, tmp_path):
        set_store(None)
        try:
            ctx = RunContext.from_env(
                environ={"REPRO_CACHE_DIR": str(tmp_path)}
            )
            assert ctx.store is None
        finally:
            reset_store()

    def test_spec_round_trip(self, tmp_path):
        store = TraceStore(tmp_path / "s", capacity_bytes=123456)
        ctx = RunContext(
            store=store, segment_events=4096, attribution=True,
            ledger_path="runs.jsonl", scalar_cache=True,
        )
        back = RunContext.from_spec(ctx.to_spec())
        assert str(back.store.root) == str(store.root)
        assert back.store.capacity_bytes == 123456
        assert back.segment_events == 4096
        assert back.attribution is True
        assert back.ledger_path == "runs.jsonl"
        assert back.scalar_cache is True

    def test_with_options(self):
        ctx = RunContext()
        assert ctx.with_options(attribution=True).attribution is True
        assert ctx.attribution is False  # frozen original untouched


class TestRunRequest:
    def test_run_system_rejects_request_plus_legacy(self, graph):
        from repro.core.system import run_system

        req = RunRequest(algorithm="pagerank")
        with pytest.raises(SimulationError):
            run_system(graph, "pagerank", request=req)
        with pytest.raises(SimulationError):
            run_system(graph)  # no workload at all

    def test_request_equals_legacy_kwargs(self, graph):
        from repro.core.system import run_system

        legacy = run_system(
            graph, "pagerank", dataset="t", chunk_size=16, cache=False,
        )
        req = RunRequest(
            algorithm="pagerank", dataset="t", chunk_size=16,
        )
        modern = run_system(
            graph, request=req, context=RunContext(),
        )
        assert modern.cycles == legacy.cycles
        assert modern.stats.as_dict() == legacy.stats.as_dict()
        assert modern.dataset == "t"

    def test_request_dict_round_trip(self):
        req = RunRequest(
            algorithm="bfs", backend="omega", dataset="lj",
            num_cores=8, alg_kwargs={"source": 3},
        )
        back = RunRequest.from_dict(req.to_dict())
        assert back == req
        with pytest.raises(SimulationError):
            RunRequest.from_dict({"dataset": "lj"})  # no algorithm

    def test_config_derived_from_backend_when_omitted(self, graph):
        from repro.core.system import run_system

        rep = run_system(
            graph,
            request=RunRequest(
                algorithm="pagerank", backend="omega", num_cores=4
            ),
            context=RunContext(),
        )
        assert rep.hot_capacity > 0  # an OMEGA config was built


#: Manifest blocks/fields that legitimately differ between hosts or
#: runs of identical simulated work (timings, RSS, cache hit state).
_HOST_FIELDS = ("telemetry", "trace_cache")


def _strip_host_fields(manifest):
    doc = {k: v for k, v in manifest.items() if k not in _HOST_FIELDS}
    replay = dict(doc.get("replay") or {})
    for key in ("seconds", "events_per_second", "peak_rss_bytes"):
        replay.pop(key, None)
    doc["replay"] = replay
    return doc


class TestConcurrentContexts:
    def test_two_stores_two_threads_no_interleaving(self, graph, tmp_path):
        """Two concurrent run_system threads on *different* stores must
        produce bit-identical manifests to their serial equivalents and
        populate only their own store — the regression that motivated
        RunContext (ambient use_store would interleave)."""
        from repro.core.system import run_system

        store_a = TraceStore(tmp_path / "a")
        store_b = TraceStore(tmp_path / "b")
        ctx_a = RunContext(store=store_a)
        ctx_b = RunContext(store=store_b)
        req_a = RunRequest(algorithm="pagerank", dataset="ta")
        req_b = RunRequest(algorithm="bfs", dataset="tb")

        # Serial references, on throwaway stores with identical layout.
        ref_a = run_system(
            graph, request=req_a,
            context=RunContext(store=TraceStore(tmp_path / "ref_a")),
        ).manifest()
        ref_b = run_system(
            graph, request=req_b,
            context=RunContext(store=TraceStore(tmp_path / "ref_b")),
        ).manifest()

        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(name, request, context):
            try:
                barrier.wait(timeout=30)
                report = run_system(graph, request=request, context=context)
                results[name] = report.manifest()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((name, exc))

        threads = [
            threading.Thread(target=worker, args=("a", req_a, ctx_a)),
            threading.Thread(target=worker, args=("b", req_b, ctx_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert set(results) == {"a", "b"}

        # Tolerance 0: every simulated field identical to the serial run.
        assert _strip_host_fields(results["a"]) == _strip_host_fields(ref_a)
        assert _strip_host_fields(results["b"]) == _strip_host_fields(ref_b)

        # Each store holds exactly its own thread's trace — no bleed.
        entries_a = {e.key for e in store_a.entries()}
        entries_b = {e.key for e in store_b.entries()}
        assert len(entries_a) == 1
        assert len(entries_b) == 1
        assert entries_a.isdisjoint(entries_b)
