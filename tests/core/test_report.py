"""Tests for SimReport / Comparison reporting."""

import json

import pytest

from repro.config import SimConfig
from repro.core.system import compare_systems, run_system
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def report():
    g = rmat_graph(8, edge_factor=6, seed=5)
    return run_system(g, "pagerank", SimConfig.scaled_baseline(num_cores=4),
                      dataset="t")


class TestSimReport:
    def test_cycles_and_seconds(self, report):
        assert report.cycles > 0
        assert report.seconds == pytest.approx(
            report.cycles / (report.config.core.freq_ghz * 1e9)
        )

    def test_dram_bandwidth_positive(self, report):
        assert report.dram_bandwidth_gbps > 0

    def test_to_dict_structure(self, report):
        d = report.to_dict()
        assert set(d) == {"summary", "workload", "stats", "timing",
                          "energy_nj"}
        assert d["workload"]["num_vertices"] == report.num_vertices
        assert d["timing"]["total_cycles"] == report.timing.total_cycles

    def test_save_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "r.json"
        report.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["summary"]["algorithm"] == "pagerank"
        assert loaded["stats"]["atomics_total"] == (
            report.stats.atomics_total
        )

    def test_memory_bound_fraction_in_range(self, report):
        assert 0.0 <= report.timing.memory_bound_fraction <= 1.0


class TestManifest:
    REQUIRED_KEYS = {
        "schema", "system", "backend", "algorithm", "dataset", "config",
        "workload", "replay", "timing", "energy_nj", "event_counts",
        "telemetry",
    }

    def test_manifest_round_trip(self, report, tmp_path):
        path = tmp_path / "manifest.json"
        report.save_manifest(path)
        loaded = json.loads(path.read_text())
        assert self.REQUIRED_KEYS <= set(loaded)
        assert loaded["schema"] == "omega-repro/run-manifest/v6"
        assert loaded == report.manifest()

    def test_manifest_is_loadable_by_diff_tool(self, report, tmp_path):
        from repro.obs import diff_manifests, load_manifest

        path = tmp_path / "manifest.json"
        report.save_manifest(path)
        doc = load_manifest(path)
        assert diff_manifests(doc, doc).ok

    def test_unsampled_run_has_null_telemetry(self, report):
        assert report.manifest()["telemetry"] is None

    def test_sampled_run_attaches_telemetry(self, tmp_path):
        from repro.graph.generators import rmat_graph as _rmat

        g = _rmat(7, edge_factor=6, seed=5)
        sampled = run_system(
            g, "pagerank", SimConfig.scaled_baseline(num_cores=4),
            dataset="t", obs_window=0,
        )
        block = sampled.manifest()["telemetry"]
        assert block["num_windows"] == sampled.timeline.num_windows
        assert block["window_events"] == sampled.timeline.window_events
        assert set(block["summary"]) <= {
            "l1_hit_rate", "l2_hit_rate", "last_level_hit_rate",
            "dram_gbps", "onchip_traffic_bytes", "dram_bytes",
            "sp_offloads",
        }

    def test_manifest_creates_parent_dirs(self, report, tmp_path):
        path = tmp_path / "a" / "b" / "manifest.json"
        report.save_manifest(path)
        assert path.exists()


class TestComparisonReport:
    @pytest.fixture(scope="class")
    def cmp(self):
        g = rmat_graph(8, edge_factor=6, seed=5)
        return compare_systems(
            g, "pagerank",
            SimConfig.scaled_baseline(num_cores=4),
            SimConfig.scaled_omega(num_cores=4),
            dataset="t",
        )

    def test_all_ratios_finite_positive(self, cmp):
        for value in (cmp.speedup, cmp.traffic_reduction,
                      cmp.dram_bw_improvement, cmp.energy_saving):
            assert value > 0
            assert value != float("inf")

    def test_summary_round_trips_to_json(self, cmp):
        assert json.loads(json.dumps(cmp.summary()))["dataset"] == "t"
