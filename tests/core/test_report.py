"""Tests for SimReport / Comparison reporting."""

import json

import pytest

from repro.config import SimConfig
from repro.core.system import compare_systems, run_system
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def report():
    g = rmat_graph(8, edge_factor=6, seed=5)
    return run_system(g, "pagerank", SimConfig.scaled_baseline(num_cores=4),
                      dataset="t")


class TestSimReport:
    def test_cycles_and_seconds(self, report):
        assert report.cycles > 0
        assert report.seconds == pytest.approx(
            report.cycles / (report.config.core.freq_ghz * 1e9)
        )

    def test_dram_bandwidth_positive(self, report):
        assert report.dram_bandwidth_gbps > 0

    def test_to_dict_structure(self, report):
        d = report.to_dict()
        assert set(d) == {"summary", "workload", "stats", "timing",
                          "energy_nj"}
        assert d["workload"]["num_vertices"] == report.num_vertices
        assert d["timing"]["total_cycles"] == report.timing.total_cycles

    def test_save_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "r.json"
        report.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["summary"]["algorithm"] == "pagerank"
        assert loaded["stats"]["atomics_total"] == (
            report.stats.atomics_total
        )

    def test_memory_bound_fraction_in_range(self, report):
        assert 0.0 <= report.timing.memory_bound_fraction <= 1.0


class TestComparisonReport:
    @pytest.fixture(scope="class")
    def cmp(self):
        g = rmat_graph(8, edge_factor=6, seed=5)
        return compare_systems(
            g, "pagerank",
            SimConfig.scaled_baseline(num_cores=4),
            SimConfig.scaled_omega(num_cores=4),
            dataset="t",
        )

    def test_all_ratios_finite_positive(self, cmp):
        for value in (cmp.speedup, cmp.traffic_reduction,
                      cmp.dram_bw_improvement, cmp.energy_saving):
            assert value > 0
            assert value != float("inf")

    def test_summary_round_trips_to_json(self, cmp):
        assert json.loads(json.dumps(cmp.summary()))["dataset"] == "t"
