"""Tests for the full-system drivers (run_system / compare_systems)."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.core.system import compare_systems, run_system
from repro.graph.generators import rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(8, edge_factor=8, seed=21)


@pytest.fixture(scope="module")
def baseline_cfg():
    return SimConfig.scaled_baseline(num_cores=4)


@pytest.fixture(scope="module")
def omega_cfg():
    return SimConfig.scaled_omega(num_cores=4)


class TestRunSystem:
    def test_baseline_report_fields(self, graph, baseline_cfg):
        rep = run_system(graph, "pagerank", baseline_cfg, dataset="t")
        assert rep.system == baseline_cfg.name
        assert rep.algorithm == "pagerank"
        assert rep.dataset == "t"
        assert rep.cycles > 0
        assert rep.trace_events > 0
        assert rep.hot_capacity == 0

    def test_omega_report_has_hot_capacity(self, graph, omega_cfg):
        rep = run_system(graph, "pagerank", omega_cfg)
        assert rep.hot_capacity > 0
        assert 0 < rep.hot_fraction <= 1

    def test_omega_offloads_atomics(self, graph, omega_cfg):
        rep = run_system(graph, "pagerank", omega_cfg)
        assert rep.stats.atomics_offloaded > 0

    def test_baseline_keeps_atomics_on_cores(self, graph, baseline_cfg):
        rep = run_system(graph, "pagerank", baseline_cfg)
        assert rep.stats.atomics_offloaded == 0
        assert rep.stats.atomics_on_cores > 0

    def test_reorder_default_only_for_omega(self, graph, baseline_cfg, omega_cfg):
        base = run_system(graph, "pagerank", baseline_cfg)
        omega = run_system(graph, "pagerank", omega_cfg)
        # Same workload size either way.
        assert base.num_edges == omega.num_edges

    def test_source_translated_through_reorder(self, graph, omega_cfg):
        # Explicit source in original ids must survive reordering:
        # the traversal must touch the same number of vertices.
        from repro.algorithms.bfs import run_bfs

        src = int(graph.out_degrees().argmax())
        plain = run_bfs(graph, source=src, trace=False)
        reached = int((plain.value("level") >= 0).sum())
        rep = run_system(graph, "bfs", omega_cfg, source=src)
        # Compare via trace volume: same reachable set size implies
        # comparable edge work (exact equality of traces is not
        # expected since ids differ).
        rep_base = run_system(graph, "bfs", SimConfig.scaled_baseline(num_cores=4),
                              source=src)
        assert rep.trace_events == pytest.approx(rep_base.trace_events, rel=0.05)
        assert reached > 1

    def test_sp_chunk_mismatch_increases_remote(self, graph, omega_cfg):
        matched = run_system(graph, "pagerank", omega_cfg, chunk_size=32,
                             sp_chunk_size=32)
        mismatched = run_system(graph, "pagerank", omega_cfg, chunk_size=32,
                                sp_chunk_size=1)
        assert (
            mismatched.stats.sp_remote_accesses
            > matched.stats.sp_remote_accesses
        )

    def test_energy_model_override(self, graph, baseline_cfg):
        from repro.memsim.energy import EnergyModel

        expensive = EnergyModel(dram_nj_per_byte=100.0)
        rep = run_system(graph, "pagerank", baseline_cfg,
                         energy_model=expensive)
        cheap = run_system(graph, "pagerank", baseline_cfg)
        assert rep.energy.dram_nj > cheap.energy.dram_nj

    def test_summary_keys(self, graph, baseline_cfg):
        rep = run_system(graph, "pagerank", baseline_cfg, dataset="x")
        s = rep.summary()
        for key in ("cycles", "l2_hit_rate", "dram_bw_gbps", "bottleneck"):
            assert key in s


class TestCompareSystems:
    def test_speedup_positive(self, graph, baseline_cfg, omega_cfg):
        cmp = compare_systems(graph, "pagerank", baseline_cfg, omega_cfg)
        assert cmp.speedup > 0
        assert cmp.baseline.algorithm == cmp.omega.algorithm

    def test_powerlaw_speedup_above_one(self, graph, baseline_cfg, omega_cfg):
        cmp = compare_systems(graph, "pagerank", baseline_cfg, omega_cfg)
        assert cmp.speedup > 1.2

    def test_traffic_reduction_above_one(self, graph, baseline_cfg, omega_cfg):
        cmp = compare_systems(graph, "pagerank", baseline_cfg, omega_cfg)
        assert cmp.traffic_reduction > 1.0

    def test_summary(self, graph, baseline_cfg, omega_cfg):
        s = compare_systems(graph, "pagerank", baseline_cfg, omega_cfg,
                            dataset="d").summary()
        assert s["dataset"] == "d"
        assert "speedup" in s and "energy_saving" in s

    def test_default_configs(self, graph):
        cmp = compare_systems(graph, "pagerank")
        assert cmp.baseline.config.name == "baseline-cmp-scaled"
        assert cmp.omega.config.name == "omega-scaled"

    def test_wrong_config_roles_rejected(self, graph, baseline_cfg, omega_cfg):
        with pytest.raises(SimulationError):
            compare_systems(graph, "pagerank", omega_cfg, omega_cfg)
        with pytest.raises(SimulationError):
            compare_systems(graph, "pagerank", baseline_cfg, baseline_cfg)

    def test_mismatched_algorithms_rejected(self, graph, baseline_cfg, omega_cfg):
        from repro.core.report import Comparison

        a = run_system(graph, "pagerank", baseline_cfg)
        b = run_system(graph, "bfs", omega_cfg)
        with pytest.raises(SimulationError):
            Comparison(baseline=a, omega=b)


class TestEqualStorageInvariant:
    def test_scaled_configs_match_totals(self):
        base = SimConfig.scaled_baseline()
        omega = SimConfig.scaled_omega()
        assert base.total_onchip_bytes == omega.total_onchip_bytes

    def test_paper_configs_match_totals(self):
        base = SimConfig.paper_baseline()
        omega = SimConfig.paper_omega()
        assert base.total_onchip_bytes == omega.total_onchip_bytes

    def test_with_scratchpad_bytes(self):
        omega = SimConfig.scaled_omega()
        shrunk = omega.with_scratchpad_bytes(512)
        assert shrunk.scratchpad.size_bytes == 512
        assert shrunk.l2_per_core.size_bytes == omega.l2_per_core.size_bytes
