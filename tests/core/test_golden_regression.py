"""Golden regression: the engine refactor must not move the results.

The headline ``compare_systems`` ratios below were captured from the
pre-refactor tree (seed commit 296ad4d), where every hierarchy ran its
own hand-written per-event replay loop. The unified batch engine must
reproduce them to float-noise precision (1e-9 relative): integer event
counters are bit-exact by construction, and the only permitted float
deviation is summation order in the per-core latency folds.
"""

import pytest

from repro.core.system import compare_systems
from repro.graph.generators import rmat_graph

#: compare_systems ratios recorded from the seed tree.
GOLDEN = {
    "rmat8_pagerank": {
        "speedup": 1.2691732762267351,
        "traffic_reduction": 5.042659974905897,
        "dram_bw_improvement": 1.321781494930434,
        "energy_saving": 1.3562589008083694,
    },
    "rmat7_bfs": {
        "speedup": 0.9905729114682102,
        "traffic_reduction": 1.233159674618408,
        "dram_bw_improvement": 0.9143749952014248,
        "energy_saving": 1.0565702335103304,
    },
}

REL_TOL = 1e-9


def _check(comparison, golden):
    for metric, expected in golden.items():
        got = getattr(comparison, metric)
        assert got == pytest.approx(expected, rel=REL_TOL), (
            f"{metric}: {got!r} deviates from pre-refactor {expected!r}"
        )


@pytest.mark.slow
def test_pagerank_ratios_match_pre_refactor():
    graph = rmat_graph(8, edge_factor=8, seed=21)
    comparison = compare_systems(graph, "pagerank", dataset="rmat8")
    _check(comparison, GOLDEN["rmat8_pagerank"])


@pytest.mark.slow
def test_bfs_ratios_match_pre_refactor():
    graph = rmat_graph(7, edge_factor=6, seed=5)
    comparison = compare_systems(graph, "bfs", dataset="rmat7")
    _check(comparison, GOLDEN["rmat7_bfs"])
