"""Unit tests for the serve job model: hashing, coalescing, bounds.

Everything here drives :class:`JobManager` with fake runners — no
graphs, no replay — so the scheduling invariants are tested in
milliseconds.
"""

import threading
import time

import pytest

from repro.errors import SimulationError
from repro.serve.jobs import JobManager, JobSpec, QueueFullError, job_key


class TestJobSpec:
    def test_from_dict_defaults(self):
        spec = JobSpec.from_dict({"dataset": "lj", "algorithm": "pagerank"})
        assert spec.backend == "omega"
        assert spec.scale == 1.0
        assert spec.num_cores == 16
        assert spec.chunk_size == 32
        assert dict(spec.alg_kwargs) == {}

    def test_from_dict_rejects_junk(self):
        with pytest.raises(SimulationError):
            JobSpec.from_dict({"algorithm": "pagerank"})  # no dataset
        with pytest.raises(SimulationError):
            JobSpec.from_dict({"dataset": "lj", "algorithm": "bfs",
                               "bogus": 1})
        with pytest.raises(SimulationError):
            JobSpec.from_dict([1, 2])

    def test_wait_is_transport_not_spec(self):
        a = JobSpec.from_dict({"dataset": "lj", "algorithm": "bfs"})
        b = JobSpec.from_dict({"dataset": "lj", "algorithm": "bfs",
                               "wait": True})
        assert a == b


class TestJobKey:
    def test_identical_specs_collide(self):
        a = JobSpec("lj", "pagerank", alg_kwargs={"x": 1, "y": 2})
        b = JobSpec("lj", "pagerank", alg_kwargs={"y": 2, "x": 1})
        assert job_key(a) == job_key(b)

    def test_any_field_perturbs_the_key(self):
        base = JobSpec("lj", "pagerank")
        for other in (
            JobSpec("sd", "pagerank"),
            JobSpec("lj", "bfs"),
            JobSpec("lj", "pagerank", backend="baseline"),
            JobSpec("lj", "pagerank", scale=0.5),
            JobSpec("lj", "pagerank", num_cores=8),
            JobSpec("lj", "pagerank", chunk_size=64),
            JobSpec("lj", "pagerank", alg_kwargs={"source": 1}),
        ):
            assert job_key(base) != job_key(other)

    def test_uncacheable_kwargs_rejected(self):
        spec = JobSpec("lj", "pagerank", alg_kwargs={"bad": [1, 2]})
        with pytest.raises(SimulationError):
            job_key(spec)


def _instant_runner(spec, progress):
    progress("compute")
    return {"dataset": spec.dataset, "algorithm": spec.algorithm}


class TestJobManager:
    def test_cold_then_warm(self):
        mgr = JobManager(_instant_runner, workers=1)
        spec = JobSpec("lj", "pagerank")
        state, job, manifest = mgr.submit(spec)
        assert state == "cold" and manifest is None
        assert mgr.wait(job, timeout=10)
        assert job.status == "done"
        assert job.manifest == {"dataset": "lj", "algorithm": "pagerank"}
        assert job.progress == ["compute"]

        state, job2, manifest = mgr.submit(spec)
        assert state == "warm" and job2 is None
        assert manifest == job.manifest
        stats = mgr.stats()
        assert stats["computed"] == 1 and stats["warm"] == 1
        mgr.shutdown()

    def test_concurrent_identical_requests_coalesce(self):
        release = threading.Event()
        calls = []

        def gated_runner(spec, progress):
            calls.append(spec)
            assert release.wait(timeout=10)
            return {"ok": True}

        mgr = JobManager(gated_runner, workers=2)
        spec = JobSpec("lj", "pagerank")
        state1, job1, _ = mgr.submit(spec)
        state2, job2, _ = mgr.submit(spec)
        state3, job3, _ = mgr.submit(spec)
        assert state1 == "cold"
        assert state2 == state3 == "coalesced"
        assert job2 is job1 and job3 is job1
        assert job1.clients == 3
        release.set()
        assert mgr.wait(job1, timeout=10)
        assert len(calls) == 1  # one computation served three requests
        assert mgr.stats()["coalesced"] == 2
        mgr.shutdown()

    def test_queue_bound_rejects_with_queue_full(self):
        release = threading.Event()

        def gated_runner(spec, progress):
            assert release.wait(timeout=10)
            return {}

        mgr = JobManager(gated_runner, workers=1, queue_depth=2)
        mgr.submit(JobSpec("a", "pagerank"))
        _, second, _ = mgr.submit(JobSpec("b", "pagerank"))
        with pytest.raises(QueueFullError):
            mgr.submit(JobSpec("c", "pagerank"))
        assert mgr.stats()["rejected"] == 1
        # A duplicate of a live job still coalesces while the queue is
        # full — coalescing creates no new job.
        state, _, _ = mgr.submit(JobSpec("a", "pagerank"))
        assert state == "coalesced"
        release.set()
        assert mgr.wait(second, timeout=10)
        # Draining the queue re-opens admission.
        for _ in range(100):
            if mgr.stats()["live_jobs"] == 0:
                break
            time.sleep(0.05)
        state, job, _ = mgr.submit(JobSpec("c", "pagerank"))
        assert state == "cold"
        assert mgr.wait(job, timeout=10)
        mgr.shutdown()

    def test_failed_job_reports_error_and_frees_the_key(self):
        attempts = []

        def flaky_runner(spec, progress):
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("boom")
            return {"ok": True}

        mgr = JobManager(flaky_runner, workers=1)
        spec = JobSpec("lj", "pagerank")
        _, job, _ = mgr.submit(spec)
        assert mgr.wait(job, timeout=10)
        assert job.status == "failed"
        assert "boom" in job.error
        assert mgr.stats()["failed"] == 1
        # Failures are not cached: the next request recomputes.
        state, job2, _ = mgr.submit(spec)
        assert state == "cold"
        assert mgr.wait(job2, timeout=10)
        assert job2.status == "done"
        mgr.shutdown()

    def test_warm_cache_is_bounded_lru(self):
        mgr = JobManager(_instant_runner, workers=1, warm_capacity=2)
        specs = [JobSpec(f"d{i}", "pagerank") for i in range(3)]
        for spec in specs:
            _, job, _ = mgr.submit(spec)
            assert mgr.wait(job, timeout=10)
        assert mgr.stats()["warm_entries"] == 2
        # The oldest key was evicted; resubmitting it computes again.
        state, job, _ = mgr.submit(specs[0])
        assert state == "cold"
        assert mgr.wait(job, timeout=10)
        mgr.shutdown()

    def test_snapshot_shapes(self):
        mgr = JobManager(_instant_runner, workers=1)
        _, job, _ = mgr.submit(JobSpec("lj", "pagerank"))
        assert mgr.wait(job, timeout=10)
        snap = job.snapshot()
        assert snap["status"] == "done"
        assert snap["spec"]["dataset"] == "lj"
        assert snap["manifest"] == job.manifest
        assert mgr.get(job.id) is job
        assert mgr.get("nope") is None
        mgr.shutdown()
