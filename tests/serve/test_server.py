"""End-to-end `repro serve` tests over a real ephemeral-port server.

One workload (the sd stand-in at half scale) is submitted three ways —
cold, coalesced while the cold run is in flight, and warm after it
finishes — and the served manifest is checked bit-identical (in all
simulated fields) to a direct ``run_system`` call on the same spec.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.context import RunContext, RunRequest
from repro.serve import JobManager, make_server, make_system_runner
from repro.store import TraceStore

DATASET = "sd"
SCALE = 0.5


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("serve-store"))
    context = RunContext(store=store)
    manager = JobManager(
        make_system_runner(context), workers=2, queue_depth=4
    )
    srv = make_server(port=0, manager=manager)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=60) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server, body, timeout=300):
    req = urllib.request.Request(
        _url(server, "/v1/jobs"),
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _strip_host_fields(manifest):
    doc = {
        k: v for k, v in manifest.items()
        if k not in ("telemetry", "trace_cache")
    }
    replay = dict(doc.get("replay") or {})
    for key in ("seconds", "events_per_second", "peak_rss_bytes"):
        replay.pop(key, None)
    doc["replay"] = replay
    return doc


def test_health_and_unknown_routes(server):
    assert _get(server, "/healthz") == (200, {"ok": True})
    status, _ = _get(server, "/nope")
    assert status == 404
    status, _ = _get(server, "/v1/jobs/doesnotexist")
    assert status == 404


def test_bad_specs_get_400(server):
    assert _post(server, {"dataset": DATASET})[0] == 400  # no algorithm
    assert _post(server, {"dataset": DATASET, "algorithm": "pagerank",
                          "bogus": 1})[0] == 400
    assert _post(server, {"dataset": DATASET, "algorithm": "pagerank",
                          "alg_kwargs": {"bad": [1]}})[0] == 400


def test_cold_coalesced_warm_lifecycle(server):
    spec = {"dataset": DATASET, "algorithm": "pagerank", "scale": SCALE,
            "num_cores": 4}

    # Cold: accepted asynchronously.
    status, doc = _post(server, spec)
    assert status == 202
    assert doc["state"] == "cold"
    job_id = doc["job_id"]

    # Identical request while the first is in flight: coalesced, and
    # waiting on it yields the manifest of the one shared computation.
    status, joined = _post(server, {**spec, "wait": True})
    assert status == 200
    assert joined["state"] == "coalesced"
    assert joined["status"] == "done"
    assert joined["job_id"] == job_id
    assert joined["clients"] == 2
    manifest = joined["manifest"]
    assert manifest["algorithm"] == "pagerank"
    # Progress streamed from the run's tracer spans.
    assert "load_dataset" in joined["progress"]
    assert any("replay" in p for p in joined["progress"])

    # Third request after completion: warm, no new job.
    status, warm = _post(server, spec)
    assert status == 200
    assert warm["state"] == "warm"
    assert warm["manifest"] == manifest

    # Status poll agrees.
    status, polled = _get(server, f"/v1/jobs/{job_id}")
    assert status == 200
    assert polled["status"] == "done"
    assert polled["manifest"] == manifest

    # Counters: exactly one computation for three requests.
    status, stats = _get(server, "/v1/stats")
    assert status == 200
    assert stats["computed"] == 1
    assert stats["coalesced"] == 1
    assert stats["warm"] == 1

    # The served manifest is bit-identical (simulated fields) to a
    # direct run_system call on the same spec.
    from repro.algorithms.registry import ALGORITHMS
    from repro.core.system import run_system
    from repro.graph.datasets import load_dataset

    info = ALGORITHMS["pagerank"]
    graph, _ = load_dataset(
        DATASET, scale=SCALE, weighted=info.requires_weights
    )
    direct = run_system(
        graph,
        request=RunRequest(
            algorithm="pagerank", dataset=DATASET, num_cores=4
        ),
        context=RunContext(),
    ).manifest()
    assert _strip_host_fields(manifest) == _strip_host_fields(direct)
