"""Tests for the set-associative LRU cache."""

import pytest

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.memsim.cache import Cache


def make_cache(size=1024, ways=4, line=64):
    return Cache(CacheConfig(size_bytes=size, ways=ways, line_bytes=line))


class TestGeometry:
    def test_num_sets(self):
        c = CacheConfig(size_bytes=1024, ways=4, line_bytes=64)
        assert c.num_sets == 4

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=100, ways=3, line_bytes=64)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, ways=1)

    def test_line_of(self):
        c = make_cache()
        assert c.line_of(0) == 0
        assert c.line_of(63) == 0
        assert c.line_of(64) == 1


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        hit, _ = c.access(0x100)
        assert not hit
        hit, _ = c.access(0x100)
        assert hit

    def test_same_line_different_words_hit(self):
        c = make_cache()
        c.access(0x100)
        hit, _ = c.access(0x108)
        assert hit

    def test_counts(self):
        c = make_cache()
        c.access(0)
        c.access(0)
        c.access(64)
        assert c.hits == 1
        assert c.misses == 2
        assert c.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_empty(self):
        assert make_cache().hit_rate == 0.0


class TestLru:
    def test_eviction_order(self):
        # 1 set x 2 ways: cache of 2 lines.
        c = make_cache(size=128, ways=2)
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)  # 0 is now MRU
        c.access_line(2)  # evicts 1
        assert c.contains_line(0)
        assert not c.contains_line(1)

    def test_set_isolation(self):
        # 2 sets x 1 way: even/odd lines map to different sets.
        c = make_cache(size=128, ways=1)
        c.access_line(0)
        c.access_line(1)
        assert c.contains_line(0)
        assert c.contains_line(1)
        c.access_line(2)  # same set as 0
        assert not c.contains_line(0)
        assert c.contains_line(1)

    def test_occupancy_bounded(self):
        c = make_cache(size=256, ways=2)  # 4 lines total
        for line in range(100):
            c.access_line(line)
        assert c.occupancy <= 4


class TestDirtyTracking:
    def test_write_marks_dirty_and_reports_on_eviction(self):
        c = make_cache(size=64, ways=1)  # single line
        c.access_line(0, write=True)
        hit, victim = c.access_line(1)  # evict line 0
        assert victim == 0
        assert c.dirty_evictions == 1

    def test_clean_eviction_reports_none(self):
        c = make_cache(size=64, ways=1)
        c.access_line(0, write=False)
        _, victim = c.access_line(1)
        assert victim is None
        assert c.evictions == 1

    def test_write_hit_upgrades_to_dirty(self):
        c = make_cache(size=64, ways=1)
        c.access_line(0, write=False)
        c.access_line(0, write=True)
        _, victim = c.access_line(1)
        assert victim == 0

    def test_flush_counts_dirty(self):
        c = make_cache()
        c.access_line(0, write=True)
        c.access_line(100, write=False)
        assert c.flush() == 1
        assert c.occupancy == 0


class TestInvalidate:
    def test_invalidate_present(self):
        c = make_cache()
        c.access_line(5)
        assert c.invalidate_line(5)
        assert not c.contains_line(5)

    def test_invalidate_absent(self):
        assert not make_cache().invalidate_line(5)

    def test_contains_does_not_touch_lru(self):
        c = make_cache(size=128, ways=2)
        c.access_line(0)
        c.access_line(1)
        c.contains_line(0)  # must not refresh 0
        c.access_line(2)    # evicts LRU = 0
        assert not c.contains_line(0)
