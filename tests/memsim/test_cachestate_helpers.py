"""Unit tests for the cachestate helpers shared across the kernel."""

import numpy as np
import pytest

from repro.memsim.cachestate import iter_set_bits, screen_guaranteed_hits


class TestIterSetBits:
    def test_empty_mask(self):
        assert list(iter_set_bits(0)) == []

    def test_single_bit_masks(self):
        for pos in (0, 1, 7, 15, 31, 63):
            assert list(iter_set_bits(1 << pos)) == [pos]

    def test_full_mask(self):
        assert list(iter_set_bits((1 << 16) - 1)) == list(range(16))

    def test_sparse_mask_lsb_first(self):
        mask = (1 << 2) | (1 << 5) | (1 << 11)
        assert list(iter_set_bits(mask)) == [2, 5, 11]

    def test_matches_bin_representation(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            mask = int(rng.integers(0, 1 << 20))
            expect = [i for i in range(20) if mask >> i & 1]
            assert list(iter_set_bits(mask)) == expect


def screen(cores, lines, writes, num_sets=4):
    return screen_guaranteed_hits(
        np.asarray(cores, dtype=np.int64),
        np.asarray(lines, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        num_sets,
    ).tolist()


class TestScreenGuaranteedHits:
    def test_empty_batch(self):
        assert screen([], [], []) == []

    def test_first_touch_never_screened(self):
        assert screen([0], [10], [False]) == [False]

    def test_immediate_reread_screened(self):
        # Same core, same line, back to back: second event is a
        # guaranteed MRU hit.
        assert screen([0, 0], [10, 10], [False, False]) == [False, True]

    def test_other_core_intervenes(self):
        # Core 1 touches the line between core 0's two reads: the
        # second read may have been invalidated, so it must replay.
        assert screen(
            [0, 1, 0], [10, 10, 10], [False] * 3
        ) == [False, False, False]

    def test_set_conflict_intervenes(self):
        # Lines 2 and 6 share set 2 (num_sets=4): the conflicting
        # touch could have evicted line 2, so no screen.
        assert screen(
            [0, 0, 0], [2, 6, 2], [False] * 3
        ) == [False, False, False]

    def test_different_set_does_not_block(self):
        # Line 3 lives in another set; line 2 stays MRU in its own.
        assert screen(
            [0, 0, 0], [2, 3, 2], [False] * 3
        ) == [False, False, True]

    def test_write_after_read_not_screened(self):
        # The write's dirty/directory transition is real work.
        assert screen([0, 0], [10, 10], [False, True]) == [False, False]

    def test_write_after_write_screened(self):
        assert screen([0, 0], [10, 10], [True, True]) == [False, True]

    def test_read_after_write_screened(self):
        assert screen([0, 0], [10, 10], [True, False]) == [False, True]

    def test_chain_of_repeats(self):
        # Screening chains: every repeat after the first is covered.
        assert screen(
            [1] * 5, [7] * 5, [False] * 5
        ) == [False, True, True, True, True]

    @pytest.mark.parametrize("num_sets", [1, 2, 4, 16])
    def test_never_screens_distinct_lines(self, num_sets):
        out = screen([0, 0, 0], [1, 2, 3], [False] * 3, num_sets)
        assert out == [False, False, False]
