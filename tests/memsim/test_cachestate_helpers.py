"""Unit tests for the cachestate helpers shared across the kernel."""

import numpy as np
import pytest

from repro.memsim.cachestate import (
    _line_argsort,
    iter_set_bits,
    screen_fixpoint,
    screen_guaranteed_hits,
)


class TestIterSetBits:
    def test_empty_mask(self):
        assert list(iter_set_bits(0)) == []

    def test_single_bit_masks(self):
        for pos in (0, 1, 7, 15, 31, 63):
            assert list(iter_set_bits(1 << pos)) == [pos]

    def test_full_mask(self):
        assert list(iter_set_bits((1 << 16) - 1)) == list(range(16))

    def test_sparse_mask_lsb_first(self):
        mask = (1 << 2) | (1 << 5) | (1 << 11)
        assert list(iter_set_bits(mask)) == [2, 5, 11]

    def test_matches_bin_representation(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            mask = int(rng.integers(0, 1 << 20))
            expect = [i for i in range(20) if mask >> i & 1]
            assert list(iter_set_bits(mask)) == expect


def screen(cores, lines, writes, num_sets=4):
    return screen_guaranteed_hits(
        np.asarray(cores, dtype=np.int64),
        np.asarray(lines, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        num_sets,
    ).tolist()


class TestScreenGuaranteedHits:
    def test_empty_batch(self):
        assert screen([], [], []) == []

    def test_first_touch_never_screened(self):
        assert screen([0], [10], [False]) == [False]

    def test_immediate_reread_screened(self):
        # Same core, same line, back to back: second event is a
        # guaranteed MRU hit.
        assert screen([0, 0], [10, 10], [False, False]) == [False, True]

    def test_other_core_write_intervenes(self):
        # Core 1 *writes* the line between core 0's two reads: the
        # second read may have been invalidated, so it must replay.
        assert screen(
            [0, 1, 0], [10, 10, 10], [False, True, False]
        ) == [False, False, False]

    def test_other_core_read_is_transparent(self):
        # Core 1 only *reads* the line in between: a read never
        # invalidates another core's copy and a read hit never
        # consults the directory, so core 0's second read still
        # screens.
        assert screen(
            [0, 1, 0], [10, 10, 10], [False] * 3
        ) == [False, False, True]

    def test_other_core_read_does_not_unblock_writes(self):
        # The write rule stays strict: core 1's intervening read
        # downgrades core 0's exclusive ownership (the write would
        # have to invalidate core 1's copy), so the second write
        # must replay.
        assert screen(
            [0, 0, 1, 0], [10, 10, 10, 10], [True, True, False, True]
        ) == [False, True, False, False]

    def test_set_conflict_intervenes(self):
        # Lines 2 and 6 share set 2 (num_sets=4): the conflicting
        # touch could have evicted line 2, so no screen.
        assert screen(
            [0, 0, 0], [2, 6, 2], [False] * 3
        ) == [False, False, False]

    def test_different_set_does_not_block(self):
        # Line 3 lives in another set; line 2 stays MRU in its own.
        assert screen(
            [0, 0, 0], [2, 3, 2], [False] * 3
        ) == [False, False, True]

    def test_write_after_read_not_screened(self):
        # The write's dirty/directory transition is real work.
        assert screen([0, 0], [10, 10], [False, True]) == [False, False]

    def test_write_after_write_screened(self):
        assert screen([0, 0], [10, 10], [True, True]) == [False, True]

    def test_read_after_write_screened(self):
        assert screen([0, 0], [10, 10], [True, False]) == [False, True]

    def test_chain_of_repeats(self):
        # Screening chains: every repeat after the first is covered.
        assert screen(
            [1] * 5, [7] * 5, [False] * 5
        ) == [False, True, True, True, True]

    @pytest.mark.parametrize("num_sets", [1, 2, 4, 16])
    def test_never_screens_distinct_lines(self, num_sets):
        out = screen([0, 0, 0], [1, 2, 3], [False] * 3, num_sets)
        assert out == [False, False, False]

    def test_all_write_chain_screens_in_one_pass(self):
        # A same-core run of writes collapses in a single generation:
        # every adjacent pair satisfies the write rule simultaneously
        # (the screen evaluates against the pre-pass residual, not the
        # shrinking one).
        assert screen(
            [0] * 5, [7] * 5, [True] * 5
        ) == [False, True, True, True, True]

    def test_wide_line_window_falls_back(self):
        # Line ids spanning more than 2**16 exercise _line_argsort's
        # int64 comparison-sort fallback; the screen must not change.
        assert screen(
            [0, 0, 0], [10, 10 + (1 << 20), 10], [False] * 3
        ) == [False, False, False]
        assert screen(
            [0, 0], [1 << 40, 1 << 40], [False, False]
        ) == [False, True]


def fixpoint_reference(cores, lines, writes, num_sets):
    """Re-derive the fixpoint by literally re-screening the compacted
    residual with :func:`screen_guaranteed_hits`, including the same
    1/32 diminishing-returns cutoff."""
    cores = np.asarray(cores, dtype=np.int64)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    skip = np.zeros(len(lines), dtype=bool)
    gens = []
    while True:
        idx = np.flatnonzero(~skip)
        if len(idx) < 2:
            break
        hit = screen_guaranteed_hits(
            cores[idx], lines[idx], writes[idx], num_sets
        )
        c = int(hit.sum())
        if c == 0:
            break
        skip[idx[hit]] = True
        gens.append(c)
        if c * 32 < len(idx):
            break
    return skip, gens


class TestScreenFixpoint:
    def fixpoint(self, cores, lines, writes, num_sets=4):
        return screen_fixpoint(
            np.asarray(cores, dtype=np.int64),
            np.asarray(lines, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            num_sets,
        )

    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_batches_return_trivial_triple(self, n):
        skip, gens, lo = self.fixpoint([0] * n, [10] * n, [False] * n)
        assert skip.tolist() == [False] * n
        assert gens == []
        assert lo.tolist() == list(range(n))

    def test_returns_three_tuple_with_residual_line_order(self):
        skip, gens, lo = self.fixpoint(
            [0, 1, 0, 1], [9, 5, 9, 5], [False] * 4
        )
        # Events 2 and 3 screen in generation 1; the surviving
        # residual [0, 1] comes back line-major (line 5 before 9).
        assert skip.tolist() == [False, False, True, True]
        assert gens == [2]
        assert lo.tolist() == [1, 0]

    def test_second_generation_convergence(self):
        # Same-core W,R,W: generation 1 screens only the read (the
        # second write's slot predecessor is the read, which fails the
        # write rule); once the read is compacted away, the two writes
        # become adjacent and generation 2 screens the second one.
        skip, gens, _ = self.fixpoint(
            [0, 0, 0], [10, 10, 10], [True, False, True]
        )
        assert skip.tolist() == [False, True, True]
        assert gens == [1, 1]

    def test_all_write_chain_single_generation(self):
        skip, gens, _ = self.fixpoint([0] * 6, [7] * 6, [True] * 6)
        assert skip.tolist() == [False] + [True] * 5
        assert gens == [5]

    def test_num_sets_one_merges_all_sets(self):
        # With one set per core, every line conflicts: the re-touch of
        # line 2 cannot screen. With four sets, lines 2 and 3 map to
        # different sets and it screens — the contrast pins the slot
        # computation.
        skip1, _, _ = self.fixpoint(
            [0, 0, 0], [2, 3, 2], [False] * 3, num_sets=1
        )
        assert skip1.tolist() == [False, False, False]
        skip4, _, _ = self.fixpoint(
            [0, 0, 0], [2, 3, 2], [False] * 3, num_sets=4
        )
        assert skip4.tolist() == [False, False, True]

    @pytest.mark.parametrize("num_sets", [1, 4])
    def test_matches_iterated_screen_on_random_batches(self, num_sets):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(2, 300))
            cores = rng.integers(0, 4, n)
            lines = rng.integers(0, 24, n)
            writes = rng.random(n) < 0.4
            skip, gens, lo = self.fixpoint(cores, lines, writes, num_sets)
            ref_skip, ref_gens = fixpoint_reference(
                cores, lines, writes, num_sets
            )
            assert skip.tolist() == ref_skip.tolist()
            assert gens == ref_gens
            # The third element is the residual in line-major stable
            # (line, batch-position) order.
            surv = np.flatnonzero(~skip)
            ref_lo = surv[np.argsort(lines[surv], kind="stable")]
            assert lo.tolist() == ref_lo.tolist()


class TestLineArgsort:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(7)
        # Narrow window (uint16 radix path) and wide window (int64
        # fallback) must both reproduce numpy's stable argsort.
        for lines in (
            rng.integers(4_194_304, 4_194_304 + 50_000, 500),
            rng.integers(0, 1 << 40, 500),
            np.array([], dtype=np.int64),
        ):
            lines = lines.astype(np.int64)
            expect = np.argsort(lines, kind="stable")
            assert _line_argsort(lines).tolist() == expect.tolist()
