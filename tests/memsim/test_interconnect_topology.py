"""Tests for the interconnect topologies (crossbar vs 2D mesh)."""

import pytest

from repro.config import InterconnectConfig
from repro.errors import ConfigError
from repro.memsim.interconnect import Crossbar


class TestCrossbarTopology:
    def test_uniform_latency(self):
        xb = Crossbar(InterconnectConfig(), 16)
        assert xb.transfer_latency(0, 15) == 17
        assert xb.transfer_latency(0, 1) == 17
        assert xb.transfer_latency() == 17


class TestMeshTopology:
    def _mesh(self, cores=16):
        return Crossbar(
            InterconnectConfig(topology="mesh", mesh_hop_cycles=3,
                               mesh_router_cycles=2),
            cores,
        )

    def test_hops_manhattan(self):
        mesh = self._mesh(16)  # 4x4 grid
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3    # same row
        assert mesh.hops(0, 12) == 3   # same column
        assert mesh.hops(0, 15) == 6   # opposite corner

    def test_latency_scales_with_distance(self):
        mesh = self._mesh(16)
        near = mesh.transfer_latency(0, 1)
        far = mesh.transfer_latency(0, 15)
        assert near == 2 + 3
        assert far == 2 + 18
        assert far > near

    def test_unknown_endpoints_use_average(self):
        mesh = self._mesh(16)
        avg = mesh.transfer_latency()
        assert mesh.transfer_latency(0, 1) <= avg <= mesh.transfer_latency(0, 15)

    def test_average_hops_formula(self):
        mesh = self._mesh(16)
        # Brute force the expectation over all (src, dst) pairs.
        side = 4
        total = sum(
            mesh.hops(a, b) for a in range(16) for b in range(16)
        )
        brute = total / (16 * 16)
        assert mesh.average_hops() == pytest.approx(brute, rel=1e-9)

    def test_bigger_mesh_longer_average(self):
        small = self._mesh(16)
        big = self._mesh(64)
        assert big.average_hops() > small.average_hops()

    def test_traffic_accounting_identical_across_topologies(self):
        xb = Crossbar(InterconnectConfig(), 16)
        mesh = self._mesh(16)
        xb.line_transfer(64, 0, 1)
        mesh.line_transfer(64, 0, 1)
        assert xb.total_bytes == mesh.total_bytes

    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigError, match="topology"):
            InterconnectConfig(topology="torus")


class TestEndToEndTopology:
    def test_mesh_16_cores_cheaper_than_crossbar(self):
        """A 4x4 mesh's average distance (~2.7 hops ≈ 10 cycles) beats
        the paper's 17-cycle crossbar average, so the baseline —
        which moves whole cache lines across the chip — speeds up."""
        import dataclasses

        from repro.config import SimConfig
        from repro.core.system import run_system
        from repro.graph.generators import rmat_graph

        g = rmat_graph(9, edge_factor=8, seed=3)
        base = SimConfig.scaled_baseline(num_cores=16)
        mesh_cfg = dataclasses.replace(
            base, interconnect=InterconnectConfig(topology="mesh")
        )
        crossbar = run_system(g, "pagerank", base)
        mesh = run_system(g, "pagerank", mesh_cfg)
        assert mesh.cycles <= crossbar.cycles
