"""Tests for the DRAM page-policy model."""

import pytest

from repro.config import DramConfig
from repro.errors import ConfigError
from repro.memsim.dram import DramModel


class TestClosedPolicy:
    def test_flat_latency(self):
        m = DramModel(DramConfig(page_policy="closed"))
        assert m.read(64, addr=0) == 100
        assert m.read(64, addr=0) == 100
        assert m.row_hits == 0

    def test_no_addr_defaults_to_flat(self):
        m = DramModel(DramConfig(page_policy="open"))
        assert m.read(64) == 100


class TestOpenPolicy:
    def test_first_access_misses_row(self):
        m = DramModel(DramConfig(page_policy="open"))
        assert m.read(64, addr=0x10000) == 120
        assert m.row_misses == 1

    def test_same_row_hits(self):
        m = DramModel(DramConfig(page_policy="open", channels=1))
        m.read(64, addr=0x10000)
        assert m.read(64, addr=0x10040) == 60
        assert m.row_hits == 1

    def test_line_interleave_across_channels(self):
        # Consecutive lines stripe across channels: with 4 channels the
        # next line lands on a different channel's (cold) row buffer.
        m = DramModel(DramConfig(page_policy="open", channels=4))
        m.read(64, addr=0x10000)
        assert m.read(64, addr=0x10040) == 120
        # Coming back to the first channel's stripe hits its open row.
        assert m.read(64, addr=0x10000 + 4 * 64) == 60

    def test_row_conflict(self):
        m = DramModel(DramConfig(page_policy="open", channels=1))
        m.read(64, addr=0)
        assert m.read(64, addr=DramConfig().row_bytes) == 120

    def test_channels_track_independent_rows(self):
        m = DramModel(DramConfig(page_policy="open", channels=2))
        m.read(64, addr=0)        # channel 0
        m.read(64, addr=64)       # channel 1
        # Both rows now open; repeats hit.
        assert m.read(64, addr=0) == 60
        assert m.read(64, addr=64) == 60

    def test_row_hit_rate(self):
        m = DramModel(DramConfig(page_policy="open", channels=1))
        m.read(64, addr=0)
        m.read(64, addr=64)
        assert m.row_hit_rate == pytest.approx(0.5)


class TestHybridPolicy:
    def test_random_range_gets_closed_latency(self):
        m = DramModel(DramConfig(page_policy="hybrid", channels=1))
        m.set_random_ranges([(0x1000, 0x2000)])
        assert m.read(64, addr=0x1000) == 100
        assert m.read(64, addr=0x1040) == 100  # still closed, no row state

    def test_other_ranges_get_open_behaviour(self):
        m = DramModel(DramConfig(page_policy="hybrid", channels=1))
        m.set_random_ranges([(0x1000, 0x2000)])
        m.read(64, addr=0x90000)
        assert m.read(64, addr=0x90040) == 60

    def test_random_accesses_do_not_thrash_rows(self):
        """vtxProp accesses must not evict the streams' open rows."""
        m = DramModel(DramConfig(page_policy="hybrid", channels=1))
        m.set_random_ranges([(0x1000, 0x2000)])
        m.read(64, addr=0x90000)  # stream opens its row
        m.read(64, addr=0x1000)   # random access, served closed
        assert m.read(64, addr=0x90040) == 60  # stream row still open


class TestValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError, match="page_policy"):
            DramConfig(page_policy="adaptive")

    def test_writes_share_row_state(self):
        m = DramModel(DramConfig(page_policy="open", channels=1))
        m.read(64, addr=0)
        assert m.write(64, addr=64) == 60
