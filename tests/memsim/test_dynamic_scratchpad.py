"""Tests for the dynamic hot-set identification hierarchy (Section VI)."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, FLAG_WRITE, Trace
from repro.memsim.alternatives import DynamicScratchpadHierarchy
from repro.core.offload import microcode_for_algorithm


def make_trace(cores, vertices, flags=None):
    n = len(vertices)
    return Trace(
        core=np.asarray(cores, dtype=np.int16),
        addr=np.asarray([0x1000 + 8 * v for v in vertices], dtype=np.int64),
        size=np.full(n, 8, dtype=np.int16),
        access_class=np.full(n, int(AccessClass.VTXPROP), dtype=np.int8),
        flags=np.asarray(flags if flags is not None else [0] * n,
                         dtype=np.int8),
        vertex=np.asarray(vertices, dtype=np.int64),
    )


@pytest.fixture()
def cfg():
    return SimConfig.scaled_omega(num_cores=4)


class TestConstruction:
    def test_requires_omega_config(self):
        with pytest.raises(SimulationError):
            DynamicScratchpadHierarchy(SimConfig.scaled_baseline(), 64)

    def test_validates_capacity(self, cfg):
        with pytest.raises(SimulationError):
            DynamicScratchpadHierarchy(cfg, -1)

    def test_validates_slots(self, cfg):
        with pytest.raises(SimulationError):
            DynamicScratchpadHierarchy(cfg, 64, slots_per_set=0)


class TestDynamicBehaviour:
    def test_first_touch_allocates(self, cfg):
        dyn = DynamicScratchpadHierarchy(cfg, capacity_vertices=64)
        out = dyn.replay(make_trace([0, 0], [5, 5]))
        # Both accesses resident (allocated on first touch).
        assert out.stats.sp_accesses == 2
        assert out.stats.l1_accesses == 0

    def test_hot_vertex_displaces_cold(self, cfg):
        # Capacity 4, one set: vertices 0,4,8,12 fill it (same set via
        # modulo), then a frequently-touched vertex evicts the coldest.
        dyn = DynamicScratchpadHierarchy(cfg, capacity_vertices=4,
                                         slots_per_set=4)
        fill = [0, 4, 8, 12]
        hot = [16] * 5
        trace = make_trace([0] * 9, fill + hot)
        out = dyn.replay(trace)
        # The first hot access misses (count 1 not > resident count 1),
        # later ones win a slot and hit.
        assert out.stats.sp_accesses >= len(fill) + len(hot) - 2

    def test_atomics_offload_when_resident(self, cfg):
        dyn = DynamicScratchpadHierarchy(
            cfg, capacity_vertices=64,
            microcode=microcode_for_algorithm("pagerank"),
        )
        tr = make_trace([0, 1], [3, 3],
                        flags=[FLAG_WRITE | FLAG_ATOMIC] * 2)
        out = dyn.replay(tr)
        assert out.stats.atomics_offloaded == 2
        assert out.stats.pisc_ops == 2

    def test_atomics_on_core_without_microcode(self, cfg):
        dyn = DynamicScratchpadHierarchy(cfg, capacity_vertices=64)
        tr = make_trace([0], [3], flags=[FLAG_WRITE | FLAG_ATOMIC])
        out = dyn.replay(tr)
        assert out.stats.atomics_on_cores == 1

    def test_zero_capacity_falls_through_to_caches(self, cfg):
        dyn = DynamicScratchpadHierarchy(cfg, capacity_vertices=0)
        out = dyn.replay(make_trace([0, 0], [1, 1]))
        assert out.stats.sp_accesses == 0
        assert out.stats.l1_accesses == 2

    def test_tag_overhead_matches_paper_claim(self, cfg):
        dyn = DynamicScratchpadHierarchy(cfg, capacity_vertices=64)
        # BFS: 4-byte vtxProp, 4-byte tag -> "2x overhead" (i.e. +100%).
        assert dyn.tag_overhead_fraction(4) == pytest.approx(1.0)
        assert dyn.tag_overhead_fraction(8) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            dyn.tag_overhead_fraction(0)


class TestEndToEnd:
    def test_dynamic_close_to_static_without_preprocessing(self):
        """The dynamic approach approaches static OMEGA's benefit with
        no reordering pass (the paper's stated motivation for it)."""
        from repro.algorithms.pagerank import run_pagerank
        from repro.core.system import run_system
        from repro.graph.generators import rmat_graph
        from repro.memsim.core_model import compute_timing
        from repro.memsim.scratchpad import hot_capacity_for

        g = rmat_graph(9, edge_factor=8, seed=3)
        cfg = SimConfig.scaled_omega()
        base = run_system(g, "pagerank", SimConfig.scaled_baseline())
        static = run_system(g, "pagerank", cfg)

        res = run_pagerank(g, num_cores=16, chunk_size=32)
        cap = hot_capacity_for(cfg.scratchpad_total_bytes, 9, g.num_vertices)
        dyn = DynamicScratchpadHierarchy(
            cfg, cap, microcode_for_algorithm("pagerank")
        )
        out = dyn.replay(res.trace)
        cycles = compute_timing(out, cfg).total_cycles
        assert cycles < base.cycles                 # beats the baseline
        assert cycles > static.cycles * 0.8         # near, usually behind,
        #                                             the static mapping
