"""Tests for the locked-cache and GraphPIM alternative hierarchies."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, FLAG_WRITE, Trace
from repro.memsim.alternatives import LockedCacheHierarchy, PimConfig, PimHierarchy
from repro.memsim.mapping import ScratchpadMapping


def make_trace(cores, addrs, flags, access_class, vertices=None):
    n = len(addrs)
    return Trace(
        core=np.asarray(cores, dtype=np.int16),
        addr=np.asarray(addrs, dtype=np.int64),
        size=np.full(n, 8, dtype=np.int16),
        access_class=np.full(n, int(access_class), dtype=np.int8),
        flags=np.asarray(flags, dtype=np.int8),
        vertex=(
            np.asarray(vertices, dtype=np.int64)
            if vertices is not None
            else np.full(n, -1, dtype=np.int64)
        ),
    )


@pytest.fixture()
def locked_cfg():
    return SimConfig.scaled_omega(num_cores=4, use_pisc=False,
                                  use_source_buffer=False)


class TestLockedCache:
    def test_rejects_pisc_config(self):
        with pytest.raises(SimulationError, match="no PISC"):
            LockedCacheHierarchy(
                SimConfig.scaled_omega(num_cores=4),
                ScratchpadMapping(4, 16),
            )

    def test_hot_access_always_l2_hit(self, locked_cfg):
        tr = make_trace([0], [0x1000], [0], AccessClass.VTXPROP, vertices=[5])
        out = LockedCacheHierarchy(
            locked_cfg, ScratchpadMapping(4, 64, 2)
        ).replay(tr)
        assert out.stats.l2_hits == 1
        assert out.stats.l2_misses == 0
        assert out.stats.dram_bytes == 0

    def test_remote_bank_moves_full_line(self, locked_cfg):
        # vertex 2 with chunk 2 homes on bank 1; requester is core 0.
        tr = make_trace([0], [0x1000], [0], AccessClass.VTXPROP, vertices=[2])
        out = LockedCacheHierarchy(
            locked_cfg, ScratchpadMapping(4, 64, 2)
        ).replay(tr)
        assert out.stats.onchip_line_bytes >= 64

    def test_local_bank_no_traffic(self, locked_cfg):
        tr = make_trace([0], [0x1000], [0], AccessClass.VTXPROP, vertices=[0])
        out = LockedCacheHierarchy(
            locked_cfg, ScratchpadMapping(4, 64, 2)
        ).replay(tr)
        assert out.stats.onchip_traffic_bytes == 0

    def test_atomics_stay_on_cores(self, locked_cfg):
        tr = make_trace(
            [0], [0x1000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.VTXPROP,
            vertices=[0],
        )
        out = LockedCacheHierarchy(
            locked_cfg, ScratchpadMapping(4, 64, 2)
        ).replay(tr)
        assert out.stats.atomics_on_cores == 1
        assert out.stats.atomics_offloaded == 0

    def test_cold_access_uses_cache_path(self, locked_cfg):
        tr = make_trace([0], [0x1000], [0], AccessClass.VTXPROP,
                        vertices=[999])
        out = LockedCacheHierarchy(
            locked_cfg, ScratchpadMapping(4, 64, 2)
        ).replay(tr)
        assert out.stats.l1_misses == 1


class TestPim:
    def test_rejects_scratchpad_config(self):
        with pytest.raises(SimulationError):
            PimHierarchy(SimConfig.scaled_omega(num_cores=4))

    def test_atomics_offloaded_off_chip(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        tr = make_trace(
            [0] * 3, [0x1000] * 3, [FLAG_WRITE | FLAG_ATOMIC] * 3,
            AccessClass.VTXPROP, vertices=[1, 2, 3],
        )
        out = PimHierarchy(cfg).replay(tr)
        assert out.stats.atomics_offloaded == 3
        assert out.stats.atomics_on_cores == 0
        # Each op costs off-chip bytes instead of cache lines.
        assert out.stats.dram_bytes == 3 * 16
        assert out.stats.l1_accesses == 0

    def test_pim_occupancy_bounds_run(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        pim = PimConfig(op_cycles=1000, units=2)
        tr = make_trace(
            [0] * 10, [0x1000] * 10, [FLAG_WRITE | FLAG_ATOMIC] * 10,
            AccessClass.VTXPROP, vertices=[0] * 10,
        )
        out = PimHierarchy(cfg, pim).replay(tr)
        assert max(out.stats.pisc_occupancy) >= 10 * 1000

    def test_non_atomic_traffic_uses_caches(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        tr = make_trace([0, 0], [0x9000, 0x9000], [0, 0], AccessClass.EDGELIST)
        out = PimHierarchy(cfg).replay(tr)
        assert out.stats.l1_accesses == 2

    def test_ngraph_atomics_stay_on_core(self):
        """Only vtxProp atomics are PIM-eligible (GraphPIM's host-side
        instrumentation targets the vertex property region)."""
        cfg = SimConfig.scaled_baseline(num_cores=4)
        tr = make_trace(
            [0], [0x9000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.NGRAPH
        )
        out = PimHierarchy(cfg).replay(tr)
        assert out.stats.atomics_on_cores == 1

    def test_pim_config_validation(self):
        with pytest.raises(SimulationError):
            PimConfig(units=0)


class TestEndToEnd:
    def test_design_ordering_on_powerlaw(self):
        """OMEGA > {locked cache, GraphPIM} > baseline (PageRank)."""
        from repro.core.system import (
            run_graphpim,
            run_locked_cache,
            run_system,
        )
        from repro.graph.generators import rmat_graph

        g = rmat_graph(9, edge_factor=8, seed=3)
        base = run_system(g, "pagerank", SimConfig.scaled_baseline())
        omega = run_system(g, "pagerank", SimConfig.scaled_omega())
        locked = run_locked_cache(g, "pagerank")
        pim = run_graphpim(g, "pagerank")
        assert omega.cycles < locked.cycles < base.cycles
        # OMEGA also beats PIM offloading; PIM itself can even lose to
        # the baseline on extremely hub-concentrated graphs (hot-vault
        # serialization), so no baseline ordering is asserted for it.
        assert omega.cycles < pim.cycles
