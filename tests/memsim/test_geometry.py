"""Unit tests for the shared bank/line address-math helper."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.memsim.geometry import BankGeometry


class TestValidation:
    def test_requires_power_of_two_banks(self):
        with pytest.raises(ConfigError):
            BankGeometry(num_banks=12, line_bytes=64)

    def test_requires_power_of_two_line(self):
        with pytest.raises(ConfigError):
            BankGeometry(num_banks=16, line_bytes=48)

    def test_requires_positive(self):
        with pytest.raises(ConfigError):
            BankGeometry(num_banks=0, line_bytes=64)
        with pytest.raises(ConfigError):
            BankGeometry(num_banks=16, line_bytes=0)


class TestScalarMath:
    def test_line_and_bank_bits(self):
        geo = BankGeometry(num_banks=16, line_bytes=64)
        assert geo.line_bits == 6
        assert geo.bank_bits == 4
        assert geo.bank_mask == 15

    def test_line_of_strips_offset(self):
        geo = BankGeometry(num_banks=16, line_bytes=64)
        assert geo.line_of(0) == 0
        assert geo.line_of(63) == 0
        assert geo.line_of(64) == 1
        assert geo.line_of(0x1000) == 0x1000 // 64

    def test_bank_interleaves_consecutive_lines(self):
        geo = BankGeometry(num_banks=4, line_bytes=64)
        banks = [geo.bank_of(line) for line in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_bank_key_round_trips(self):
        geo = BankGeometry(num_banks=8, line_bytes=32)
        for line in (0, 1, 7, 8, 1000, 12345):
            bank = geo.bank_of(line)
            key = geo.bank_key_of(line)
            assert geo.line_from_bank(key, bank) == line

    def test_addr_of_line_round_trips(self):
        geo = BankGeometry(num_banks=16, line_bytes=64)
        for addr in (0, 64, 4096, 0x1234_5678):
            line = geo.line_of(addr)
            assert geo.line_of(geo.addr_of_line(line)) == line

    def test_victim_addr_matches_key_and_bank(self):
        geo = BankGeometry(num_banks=16, line_bytes=64)
        line = geo.line_of(0xABCD00)
        bank = geo.bank_of(line)
        key = geo.bank_key_of(line)
        addr = geo.victim_addr(key, bank)
        assert geo.line_of(addr) == line

    def test_single_bank_degenerates(self):
        geo = BankGeometry(num_banks=1, line_bytes=64)
        assert geo.bank_bits == 0
        assert geo.bank_of(123) == 0
        assert geo.bank_key_of(123) == 123


class TestVectorizedMath:
    def test_vector_forms_match_scalar(self):
        geo = BankGeometry(num_banks=16, line_bytes=64)
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 40, size=1000, dtype=np.int64)
        lines = geo.lines_of(addrs)
        banks = geo.banks_of(lines)
        keys = geo.bank_keys_of(lines)
        for i, addr in enumerate(addrs.tolist()):
            line = geo.line_of(addr)
            assert lines[i] == line
            assert banks[i] == geo.bank_of(line)
            assert keys[i] == geo.bank_key_of(line)

    def test_vector_dtype_is_int64(self):
        geo = BankGeometry(num_banks=4, line_bytes=64)
        lines = geo.lines_of(np.array([0, 64, 128]))
        assert lines.dtype == np.int64
