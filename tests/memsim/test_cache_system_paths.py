"""Targeted tests for the shared cache path's corner cases."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.ligra.trace import AccessClass, FLAG_WRITE, Trace
from repro.memsim.hierarchy import BaselineHierarchy


def make_trace(cores, addrs, flags):
    n = len(addrs)
    return Trace(
        core=np.asarray(cores, dtype=np.int16),
        addr=np.asarray(addrs, dtype=np.int64),
        size=np.full(n, 8, dtype=np.int16),
        access_class=np.full(n, int(AccessClass.NGRAPH), dtype=np.int8),
        flags=np.asarray(flags, dtype=np.int8),
        vertex=np.full(n, -1, dtype=np.int64),
    )


def replay(trace, cores=4):
    return BaselineHierarchy(SimConfig.scaled_baseline(num_cores=cores)).replay(trace)


class TestL2Banking:
    def test_local_bank_no_crossbar_traffic(self):
        # Core 1 accessing a line whose low bits select bank 1.
        addr = (1 << 6) | 0x100000  # line % 4 == 1
        out = replay(make_trace([1], [addr], [0]))
        assert out.stats.onchip_line_bytes == 0

    def test_remote_bank_moves_line(self):
        addr = (2 << 6) | 0x100000  # bank 2, requested by core 0
        out = replay(make_trace([0], [addr], [0]))
        assert out.stats.onchip_line_bytes == 64 + 8

    def test_bank_spread(self):
        # Four consecutive lines land on four different banks.
        addrs = [0x100000 + 64 * i for i in range(4)]
        out = replay(make_trace([0] * 4, addrs, [0] * 4))
        # Three of the four banks are remote to core 0.
        assert out.stats.onchip_line_bytes == 3 * (64 + 8)


class TestWritebackPaths:
    def test_dirty_l1_victim_reaches_l2(self):
        # L1 is 1 KB = 16 lines, 4-way -> 4 sets. Write 5 lines in the
        # same set: one dirty victim must be written back to its bank.
        cfg = SimConfig.scaled_baseline(num_cores=4)
        set_stride = 4 * 64  # same-set lines are num_sets(=4) lines apart
        addrs = [0x100000 + i * set_stride for i in range(5)]
        out = BaselineHierarchy(cfg).replay(
            make_trace([0] * 5, addrs, [FLAG_WRITE] * 5)
        )
        # All misses; the victim write-back hits L2 (no DRAM write yet).
        assert out.stats.l1_misses == 5
        assert out.l2_banks  # structural sanity

    def test_l2_dirty_eviction_reaches_dram(self):
        # Stream enough distinct dirty lines through the tiny scaled L2
        # (4x2KB banks) to force DRAM write-backs.
        n = 4096
        addrs = [0x100000 + 64 * i for i in range(n)]
        out = replay(make_trace([0] * n, addrs, [FLAG_WRITE] * n))
        assert out.stats.dram_write_bytes > 0
        # Write-backs are whole lines.
        assert out.stats.dram_write_bytes % 64 == 0

    def test_total_dram_reads_match_l2_misses(self):
        n = 512
        addrs = [0x100000 + 64 * i * 3 for i in range(n)]
        out = replay(make_trace([0] * n, addrs, [0] * n))
        assert out.stats.dram_read_bytes == out.stats.l2_misses * 64


class TestCacheToCacheTransfer:
    def test_read_of_remote_modified_line(self):
        # Core 0 writes, core 1 reads the same line: the read must
        # trigger a modified-line fetch (extra on-chip line transfer).
        addr = 0x100000
        just_write = replay(make_trace([0], [addr], [FLAG_WRITE]))
        write_then_read = replay(
            make_trace([0, 1], [addr, addr], [FLAG_WRITE, 0])
        )
        extra = (
            write_then_read.stats.onchip_line_bytes
            - just_write.stats.onchip_line_bytes
        )
        # The reader's own fill plus the writeback transfer.
        assert extra >= 64 + 8
        assert write_then_read.directory.writebacks == 1


class TestPrefetcherInterplay:
    def test_prefetch_hides_latency_not_traffic(self):
        n = 64
        addrs = [0x200000 + 64 * i for i in range(n)]
        out = replay(make_trace([0] * n, addrs, [0] * n))
        assert out.stats.prefetch_hits >= n - 2
        # Traffic still counted in full.
        assert out.stats.dram_read_bytes == out.stats.l2_misses * 64
        # Latency mostly hidden: far below n * dram latency.
        assert sum(out.stats.core_mem_latency) < n * 50

    def test_interleaved_streams_tracked_separately(self):
        # Two interleaved sequential streams from one core.
        a = [0x300000 + 64 * i for i in range(32)]
        b = [0x500000 + 64 * i for i in range(32)]
        mixed = [x for pair in zip(a, b) for x in pair]
        out = replay(make_trace([0] * 64, mixed, [0] * 64))
        assert out.stats.prefetch_hits >= 60
