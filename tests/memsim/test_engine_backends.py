"""The pluggable backend registry and the unified run_system driver."""

import json

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.system import run_graphpim, run_locked_cache, run_system
from repro.errors import SimulationError
from repro.graph.generators import rmat_graph
from repro.memsim.engine import (
    BACKENDS,
    BaselineBackend,
    HierarchyBackend,
    OmegaBackend,
    backend_names,
    get_backend,
    register_backend,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(7, edge_factor=6, seed=11)


class TestRegistry:
    def test_all_variants_registered(self):
        assert set(backend_names()) >= {
            "baseline", "omega", "locked", "graphpim", "dynamic",
        }

    def test_get_backend_returns_class(self):
        assert get_backend("baseline") is BaselineBackend
        assert get_backend("omega") is OmegaBackend

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            get_backend("tpu")

    def test_names_recorded_on_classes(self):
        for name in ("baseline", "omega", "locked", "graphpim", "dynamic"):
            assert get_backend(name).name == name

    def test_register_backend_extension(self, graph):
        @register_backend("test-null")
        class NullBackend(HierarchyBackend):
            """Everything through the cache path, no scratchpads."""

        try:
            assert get_backend("test-null") is NullBackend
            report = run_system(
                graph, "pagerank", SimConfig.scaled_baseline(),
                backend="test-null",
            )
            assert report.backend == "test-null"
            assert report.cycles > 0
        finally:
            BACKENDS.pop("test-null", None)


class TestRunSystemBackends:
    @pytest.mark.parametrize("backend,config_factory", [
        ("baseline", SimConfig.scaled_baseline),
        ("omega", SimConfig.scaled_omega),
        (
            "locked",
            lambda: SimConfig.scaled_omega(
                use_pisc=False, use_source_buffer=False
            ),
        ),
        ("graphpim", SimConfig.scaled_baseline),
        ("dynamic", SimConfig.scaled_omega),
    ])
    def test_every_variant_runs(self, graph, backend, config_factory):
        report = run_system(
            graph, "pagerank", config_factory(), backend=backend
        )
        assert report.backend == backend
        assert report.cycles > 0
        assert report.trace_events > 0
        assert report.replay_seconds > 0
        assert sum(report.stats.core_accesses) == report.trace_events

    def test_backend_inferred_from_config(self, graph):
        base = run_system(graph, "pagerank", SimConfig.scaled_baseline())
        omega = run_system(graph, "pagerank", SimConfig.scaled_omega())
        assert base.backend == "baseline"
        assert omega.backend == "omega"

    def test_unknown_backend_name_raises(self, graph):
        with pytest.raises(SimulationError, match="unknown backend"):
            run_system(
                graph, "pagerank", SimConfig.scaled_baseline(),
                backend="nope",
            )

    def test_locked_alias_matches_run_system(self, graph):
        config = SimConfig.scaled_omega(
            use_pisc=False, use_source_buffer=False
        )
        via_alias = run_locked_cache(graph, "pagerank", config)
        via_backend = run_system(graph, "pagerank", config, backend="locked")
        assert via_alias.system == "locked-cache"
        assert via_alias.cycles == via_backend.cycles
        assert via_alias.stats.as_dict() == via_backend.stats.as_dict()
        assert via_alias.hot_capacity == via_backend.hot_capacity

    def test_graphpim_alias_matches_run_system(self, graph):
        config = SimConfig.scaled_baseline()
        via_alias = run_graphpim(graph, "pagerank", config)
        via_backend = run_system(
            graph, "pagerank", config, backend="graphpim"
        )
        assert via_alias.system == "graphpim"
        assert via_alias.cycles == via_backend.cycles
        assert via_alias.stats.as_dict() == via_backend.stats.as_dict()


class TestScalarFastEquivalence:
    """The inlined batch cache loop is exact vs the per-event path."""

    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs"])
    @pytest.mark.parametrize("config_factory", [
        SimConfig.scaled_baseline, SimConfig.scaled_omega,
    ])
    def test_fast_loop_matches_scalar_loop(
        self, graph, algorithm, config_factory
    ):
        from repro.algorithms.registry import run_algorithm
        from repro.core.offload import microcode_for_algorithm
        from repro.core.system import DEFAULT_CHUNK_SIZE
        from repro.memsim.mapping import ScratchpadMapping
        from repro.memsim.scratchpad import hot_capacity_for

        config = config_factory()
        result = run_algorithm(
            algorithm, graph, num_cores=config.core.num_cores,
            chunk_size=DEFAULT_CHUNK_SIZE, trace=True,
        )

        def make():
            if not config.use_scratchpad:
                return BaselineBackend(config)
            hot = hot_capacity_for(
                config.scratchpad_total_bytes,
                result.engine.vtxprop_bytes_per_vertex(),
                graph.num_vertices,
            )
            mapping = ScratchpadMapping(
                config.core.num_cores, hot, chunk_size=DEFAULT_CHUNK_SIZE
            )
            return OmegaBackend(
                config, mapping, microcode_for_algorithm(algorithm)
            )

        fast = make().replay(result.trace)
        slow_backend = make()
        slow_backend.force_scalar_cache = True
        slow = slow_backend.replay(result.trace)

        fast_stats = fast.stats.as_dict()
        slow_stats = slow.stats.as_dict()
        assert fast_stats.keys() == slow_stats.keys()
        for key, fast_val in fast_stats.items():
            slow_val = slow_stats[key]
            if isinstance(fast_val, float):
                assert fast_val == pytest.approx(slow_val, rel=1e-9), key
            else:
                assert fast_val == slow_val, key
        assert np.allclose(
            fast.stats.core_mem_latency, slow.stats.core_mem_latency,
            rtol=1e-9,
        )
        assert np.allclose(
            fast.stats.core_serial_cycles, slow.stats.core_serial_cycles,
            rtol=1e-9,
        )
        for fast_cache, slow_cache in zip(
            fast.l1s + fast.l2_banks, slow.l1s + slow.l2_banks
        ):
            assert fast_cache.hits == slow_cache.hits
            assert fast_cache.misses == slow_cache.misses
            assert fast_cache.evictions == slow_cache.evictions
            assert fast_cache.dirty_evictions == slow_cache.dirty_evictions
        assert fast.directory.invalidations == slow.directory.invalidations
        assert fast.directory.writebacks == slow.directory.writebacks


class TestManifest:
    def test_run_manifest_written(self, graph, tmp_path):
        path = tmp_path / "manifest.json"
        config = SimConfig.scaled_omega()
        report = run_system(
            graph, "pagerank", config, dataset="rmat7",
            manifest_path=path,
        )
        data = json.loads(path.read_text())
        assert data["schema"] == "omega-repro/run-manifest/v6"
        assert data["backend"] == "omega"
        assert data["dataset"] == "rmat7"
        assert data["config"]["hash"] == config.config_hash()
        assert data["workload"]["trace_events"] == report.trace_events
        assert data["replay"]["events_per_second"] > 0
        assert data["timing"]["total_cycles"] == report.cycles
        assert "event_counts" in data
        # Unsampled runs still carry the telemetry key (as null).
        assert data["telemetry"] is None

    def test_config_hash_stable_and_sensitive(self):
        a = SimConfig.scaled_omega()
        b = SimConfig.scaled_omega()
        assert a.config_hash() == b.config_hash()
        c = a.with_scratchpad_bytes(2048)
        assert a.config_hash() != c.config_hash()
