"""Tests for coherence directory, DRAM, crossbar, mapping, buffers, PISC."""

import pytest

from repro.config import DramConfig, InterconnectConfig
from repro.errors import ConfigError, OffloadError
from repro.ligra.atomics import AtomicOp
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import MICRO_OP_CYCLES, MicroOp, Microcode, PiscEngine
from repro.memsim.srcbuffer import SourceVertexBuffer


class TestDirectory:
    def test_first_read_no_action(self):
        d = Directory(4)
        assert d.on_read(1, 0) == (0, False)

    def test_read_after_remote_write_forces_writeback(self):
        d = Directory(4)
        d.on_write(1, 0)
        invals, wb = d.on_read(1, 2)
        assert invals == 0
        assert wb
        assert d.writebacks == 1

    def test_write_invalidates_sharers(self):
        d = Directory(4)
        d.on_read(1, 0)
        d.on_read(1, 1)
        d.on_read(1, 2)
        mask, _ = d.on_write(1, 3)
        assert mask == 0b0111
        assert d.invalidations == 3

    def test_write_by_sharer_excludes_self(self):
        d = Directory(4)
        d.on_read(1, 0)
        d.on_read(1, 1)
        mask, _ = d.on_write(1, 0)
        assert mask == 0b0010

    def test_repeat_write_same_core_free(self):
        d = Directory(4)
        d.on_write(1, 0)
        mask, wb = d.on_write(1, 0)
        assert mask == 0 and not wb

    def test_alternating_writers_ping_pong(self):
        d = Directory(2)
        d.on_write(1, 0)
        mask, wb = d.on_write(1, 1)
        assert mask == 0b01 and wb

    def test_eviction_clears_sharer(self):
        d = Directory(4)
        d.on_read(1, 0)
        d.on_eviction(1, 0)
        assert d.sharers(1) == 0

    def test_eviction_of_owner_clears_modified(self):
        d = Directory(4)
        d.on_write(1, 0)
        d.on_eviction(1, 0)
        assert not d.is_modified(1)

    def test_eviction_of_untracked_line(self):
        Directory(4).on_eviction(99, 0)  # must not raise


class TestDram:
    def test_read_latency_and_accounting(self):
        m = DramModel(DramConfig(latency_cycles=100))
        assert m.read(64) == 100
        assert m.read_bytes == 64
        assert m.read_accesses == 1

    def test_write_accounting(self):
        m = DramModel(DramConfig())
        m.write(64)
        assert m.write_bytes == 64
        assert m.total_bytes == 64

    def test_bandwidth_bound(self):
        m = DramModel(DramConfig(channels=4, bytes_per_cycle_per_channel=6.0))
        m.read(2400)
        assert m.min_cycles_for_bandwidth() == pytest.approx(100.0)

    def test_utilization_gbps(self):
        m = DramModel(DramConfig())
        m.read(1000)
        # 1000 bytes over 500 cycles at 2GHz = 4 GB/s.
        assert m.utilization_gbps(500, 2.0) == pytest.approx(4.0)

    def test_utilization_zero_cycles(self):
        assert DramModel(DramConfig()).utilization_gbps(0, 2.0) == 0.0


class TestCrossbar:
    def test_line_transfer(self):
        xb = Crossbar(InterconnectConfig(), 16)
        lat = xb.line_transfer(64)
        assert lat == 17
        assert xb.line_bytes == 64 + 8

    def test_word_transfer_caps_payload(self):
        xb = Crossbar(InterconnectConfig(), 16)
        xb.word_transfer(100)
        assert xb.word_bytes == 8 + 8

    def test_control_message(self):
        xb = Crossbar(InterconnectConfig(), 16)
        xb.control_message()
        assert xb.control_bytes == 8

    def test_total_and_bound(self):
        xb = Crossbar(InterconnectConfig(bus_bytes=16), 4)
        xb.line_transfer(64)
        assert xb.total_bytes == 72
        assert xb.min_cycles_for_bandwidth() == pytest.approx(72 / 64)


class TestMapping:
    def test_chunked_interleave(self):
        m = ScratchpadMapping(num_cores=4, hot_capacity=32, chunk_size=2)
        assert [m.home(v) for v in range(10)] == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0]

    def test_block_partition_default(self):
        m = ScratchpadMapping(num_cores=4, hot_capacity=16)
        assert m.chunk_size == 4
        assert m.home(0) == 0
        assert m.home(15) == 3

    def test_line_indices_unique_per_pad(self):
        m = ScratchpadMapping(num_cores=4, hot_capacity=64, chunk_size=4)
        seen = {}
        for v in range(64):
            key = (m.home(v), m.line(v))
            assert key not in seen, f"collision at {v} with {seen.get(key)}"
            seen[key] = v

    def test_is_hot(self):
        m = ScratchpadMapping(num_cores=4, hot_capacity=10)
        assert m.is_hot(0)
        assert m.is_hot(9)
        assert not m.is_hot(10)
        assert not m.is_hot(-1)

    def test_is_hot_many(self):
        import numpy as np

        m = ScratchpadMapping(num_cores=2, hot_capacity=3)
        out = m.is_hot_many(np.array([0, 3, 2, -1]))
        assert out.tolist() == [True, False, True, False]

    def test_vertices_per_pad(self):
        m = ScratchpadMapping(num_cores=4, hot_capacity=10, chunk_size=1)
        assert m.vertices_per_pad() == 3

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            ScratchpadMapping(0, 10)
        with pytest.raises(ConfigError):
            ScratchpadMapping(4, -1)
        with pytest.raises(ConfigError):
            ScratchpadMapping(4, 10, chunk_size=0)


class TestSourceBuffer:
    def test_miss_then_hit(self):
        b = SourceVertexBuffer(4)
        assert not b.lookup(100)
        assert b.lookup(100)
        assert b.hits == 1 and b.misses == 1

    def test_lru_eviction(self):
        b = SourceVertexBuffer(2)
        b.lookup(1)
        b.lookup(2)
        b.lookup(1)  # refresh 1
        b.lookup(3)  # evicts 2
        assert b.lookup(1)
        assert not b.lookup(2)

    def test_invalidate_all(self):
        b = SourceVertexBuffer(4)
        b.lookup(1)
        b.invalidate_all()
        assert not b.lookup(1)
        assert b.invalidations == 1

    def test_hit_rate(self):
        b = SourceVertexBuffer(4)
        b.lookup(1)
        b.lookup(1)
        assert b.hit_rate == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            SourceVertexBuffer(0)

    def test_len(self):
        b = SourceVertexBuffer(4)
        b.lookup(1)
        b.lookup(2)
        assert len(b) == 2


class TestPisc:
    def _microcode(self):
        return Microcode(
            "test",
            (MicroOp.SP_READ, MicroOp.ALU, MicroOp.SP_WRITE),
            AtomicOp.FP_ADD,
        )

    def test_cycles_sum_micro_ops(self):
        assert self._microcode().cycles == sum(
            MICRO_OP_CYCLES[op]
            for op in (MicroOp.SP_READ, MicroOp.ALU, MicroOp.SP_WRITE)
        )

    def test_execute_requires_microcode(self):
        with pytest.raises(OffloadError, match="no microcode"):
            PiscEngine(0).execute(3)

    def test_execute_accumulates_occupancy(self):
        p = PiscEngine(0)
        p.load_microcode(self._microcode())
        c1 = p.execute(1)
        c2 = p.execute(2)
        assert p.ops_executed == 2
        assert p.busy_cycles == c1 + c2

    def test_same_vertex_conflict_tracked(self):
        p = PiscEngine(0)
        p.load_microcode(self._microcode())
        p.execute(7)
        p.execute(7)
        p.execute(8)
        assert p.conflict_cycles == self._microcode().cycles

    def test_empty_microcode_rejected(self):
        with pytest.raises(OffloadError):
            Microcode("empty", (), AtomicOp.FP_ADD)
