"""Tests for trace replay through both hierarchies."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import (
    AccessClass,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_WRITE,
    Trace,
)
from repro.memsim.hierarchy import BaselineHierarchy, OmegaHierarchy
from repro.memsim.mapping import ScratchpadMapping
from repro.core.offload import microcode_for_algorithm


def make_trace(cores, addrs, flags, access_class, vertices=None, sizes=8,
               barriers=()):
    n = len(addrs)
    return Trace(
        core=np.asarray(cores, dtype=np.int16),
        addr=np.asarray(addrs, dtype=np.int64),
        size=np.full(n, sizes, dtype=np.int16),
        access_class=np.full(n, int(access_class), dtype=np.int8),
        flags=np.asarray(flags, dtype=np.int8),
        vertex=(
            np.asarray(vertices, dtype=np.int64)
            if vertices is not None
            else np.full(n, -1, dtype=np.int64)
        ),
        barriers=np.asarray(barriers, dtype=np.int64),
    )


@pytest.fixture()
def baseline_cfg():
    return SimConfig.scaled_baseline(num_cores=4)


@pytest.fixture()
def omega_cfg():
    return SimConfig.scaled_omega(num_cores=4)


class TestBaselineHierarchy:
    def test_rejects_scratchpad_config(self, omega_cfg):
        with pytest.raises(SimulationError):
            BaselineHierarchy(omega_cfg)

    def test_repeat_access_hits_l1(self, baseline_cfg):
        tr = make_trace([0, 0], [0x1000, 0x1000], [0, 0], AccessClass.NGRAPH)
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.l1_hits == 1
        assert out.stats.l1_misses == 1

    def test_miss_goes_to_dram(self, baseline_cfg):
        tr = make_trace([0], [0x1000], [0], AccessClass.NGRAPH)
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.l2_misses == 1
        assert out.stats.dram_read_bytes == 64

    def test_atomics_counted_and_serialized(self, baseline_cfg):
        tr = make_trace(
            [0], [0x1000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.VTXPROP,
            vertices=[0],
        )
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.atomics_on_cores == 1
        assert sum(out.stats.core_serial_cycles) > 0

    def test_ping_pong_invalidations(self, baseline_cfg):
        n = 40
        tr = make_trace(
            [i % 4 for i in range(n)],
            [0x1000] * n,
            [FLAG_WRITE | FLAG_ATOMIC] * n,
            AccessClass.VTXPROP,
            vertices=[0] * n,
        )
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.coherence_invalidations >= n - 4

    def test_streaming_prefetched(self, baseline_cfg):
        addrs = [0x10000 + 64 * i for i in range(32)]
        tr = make_trace([0] * 32, addrs, [0] * 32, AccessClass.EDGELIST)
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        # All but the first line of the run are prefetch hits.
        assert out.stats.prefetch_hits >= 30

    def test_random_not_prefetched(self, baseline_cfg, rng):
        addrs = (rng.permutation(4096) * 64 + 0x100000).tolist()
        tr = make_trace([0] * len(addrs), addrs, [0] * len(addrs),
                        AccessClass.VTXPROP, vertices=[-1] * len(addrs))
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.prefetch_hits < len(addrs) * 0.1

    def test_empty_trace(self, baseline_cfg):
        tr = make_trace([], [], [], AccessClass.NGRAPH)
        out = BaselineHierarchy(baseline_cfg).replay(tr)
        assert out.stats.l1_accesses == 0

    def test_dirty_eviction_writes_back(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        # Write many distinct lines through a tiny L1 to force dirty
        # evictions into L2 and eventually DRAM write-backs.
        n = 4096
        addrs = [0x100000 + 64 * i * 7 for i in range(n)]
        tr = make_trace([0] * n, addrs, [FLAG_WRITE] * n, AccessClass.NGRAPH)
        out = BaselineHierarchy(cfg).replay(tr)
        assert out.stats.dram_write_bytes > 0


class TestOmegaHierarchy:
    def _mapping(self, hot=64, cores=4, chunk=2):
        return ScratchpadMapping(cores, hot, chunk_size=chunk)

    def test_rejects_baseline_config(self, baseline_cfg):
        with pytest.raises(SimulationError):
            OmegaHierarchy(baseline_cfg, self._mapping())

    def test_hot_atomic_offloaded(self, omega_cfg):
        tr = make_trace(
            [0], [0x1000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.VTXPROP,
            vertices=[5],
        )
        out = OmegaHierarchy(
            omega_cfg, self._mapping(), microcode_for_algorithm("pagerank")
        ).replay(tr)
        assert out.stats.atomics_offloaded == 1
        assert out.stats.pisc_ops == 1
        assert out.stats.atomics_on_cores == 0

    def test_cold_atomic_stays_on_core(self, omega_cfg):
        tr = make_trace(
            [0], [0x1000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.VTXPROP,
            vertices=[1000],
        )
        out = OmegaHierarchy(
            omega_cfg, self._mapping(hot=64), microcode_for_algorithm("pagerank")
        ).replay(tr)
        assert out.stats.atomics_on_cores == 1
        assert out.stats.atomics_offloaded == 0

    def test_local_vs_remote_scratchpad(self, omega_cfg):
        mapping = self._mapping(hot=64, cores=4, chunk=2)
        # vertex 0 homes on pad 0; vertex 2 homes on pad 1.
        tr = make_trace(
            [0, 0], [0x1000, 0x1008], [0, 0], AccessClass.VTXPROP,
            vertices=[0, 2],
        )
        out = OmegaHierarchy(omega_cfg, mapping).replay(tr)
        assert out.stats.sp_local_accesses == 1
        assert out.stats.sp_remote_accesses == 1

    def test_remote_word_traffic(self, omega_cfg):
        tr = make_trace([0], [0x1000], [0], AccessClass.VTXPROP, vertices=[2])
        out = OmegaHierarchy(omega_cfg, self._mapping()).replay(tr)
        assert 0 < out.stats.onchip_word_bytes <= 16

    def test_source_buffer_absorbs_repeats(self, omega_cfg):
        tr = make_trace(
            [0] * 4, [0x1000] * 4, [FLAG_SRC_READ] * 4, AccessClass.VTXPROP,
            vertices=[2] * 4,
        )
        out = OmegaHierarchy(omega_cfg, self._mapping()).replay(tr)
        assert out.stats.srcbuf_hits == 3
        assert out.stats.sp_remote_accesses == 1

    def test_source_buffer_invalidated_at_barrier(self, omega_cfg):
        tr = make_trace(
            [0, 0], [0x1000, 0x1000], [FLAG_SRC_READ] * 2, AccessClass.VTXPROP,
            vertices=[2, 2], barriers=[1],
        )
        out = OmegaHierarchy(omega_cfg, self._mapping()).replay(tr)
        assert out.stats.srcbuf_hits == 0

    def test_source_buffer_disabled(self):
        cfg = SimConfig.scaled_omega(num_cores=4, use_source_buffer=False)
        tr = make_trace(
            [0] * 3, [0x1000] * 3, [FLAG_SRC_READ] * 3, AccessClass.VTXPROP,
            vertices=[2] * 3,
        )
        out = OmegaHierarchy(cfg, self._mapping()).replay(tr)
        assert out.srcbufs is None
        assert out.stats.srcbuf_hits == 0

    def test_local_reads_skip_source_buffer(self, omega_cfg):
        tr = make_trace(
            [0] * 3, [0x1000] * 3, [FLAG_SRC_READ] * 3, AccessClass.VTXPROP,
            vertices=[0] * 3,
        )
        out = OmegaHierarchy(omega_cfg, self._mapping()).replay(tr)
        assert out.stats.srcbuf_hits == 0
        assert out.stats.sp_local_accesses == 3

    def test_no_pisc_atomics_serialize_on_core(self):
        cfg = SimConfig.scaled_omega(num_cores=4, use_pisc=False)
        tr = make_trace(
            [0], [0x1000], [FLAG_WRITE | FLAG_ATOMIC], AccessClass.VTXPROP,
            vertices=[2],
        )
        out = OmegaHierarchy(cfg, ScratchpadMapping(4, 64, 2)).replay(tr)
        assert out.stats.atomics_on_cores == 1
        assert out.stats.sp_remote_accesses == 1

    def test_edgelist_goes_through_caches(self, omega_cfg):
        tr = make_trace([0, 0], [0x9000, 0x9000], [0, 0], AccessClass.EDGELIST)
        out = OmegaHierarchy(omega_cfg, self._mapping()).replay(tr)
        assert out.stats.l1_accesses == 2
        assert out.stats.sp_accesses == 0

    def test_pisc_occupancy_tracked(self, omega_cfg):
        tr = make_trace(
            [0] * 10, [0x1000] * 10, [FLAG_WRITE | FLAG_ATOMIC] * 10,
            AccessClass.VTXPROP, vertices=[0] * 10,
        )
        out = OmegaHierarchy(
            omega_cfg, self._mapping(), microcode_for_algorithm("pagerank")
        ).replay(tr)
        assert out.stats.pisc_occupancy[0] > 0
