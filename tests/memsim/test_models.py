"""Tests for the timing, energy and area models."""

import pytest

from repro.config import SimConfig
from repro.memsim.area import (
    BASELINE_COMPONENTS,
    OMEGA_COMPONENTS,
    area_power_table,
    node_budget,
)
from repro.memsim.core_model import compute_timing
from repro.memsim.dram import DramModel
from repro.memsim.energy import EnergyModel
from repro.memsim.hierarchy import ReplayOutput
from repro.memsim.interconnect import Crossbar
from repro.memsim.stats import MemStats


def make_output(cfg, stats):
    return ReplayOutput(
        stats=stats,
        dram=DramModel(cfg.dram),
        crossbar=Crossbar(cfg.interconnect, cfg.core.num_cores),
        l1s=[],
        l2_banks=[],
        directory=None,
    )


class TestCoreModel:
    def test_balanced_aggregation(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        stats = MemStats(num_cores=4)
        stats.core_accesses = [100, 100, 100, 100]
        stats.core_mem_latency = [400.0, 400.0, 400.0, 400.0]
        stats.core_serial_cycles = [0.0, 0.0, 0.0, 0.0]
        timing = compute_timing(make_output(cfg, stats), cfg)
        expected = (100 + 400 / cfg.core.mlp) * cfg.core.imbalance_factor
        assert timing.total_cycles == pytest.approx(expected)
        assert timing.bottleneck == "cores"

    def test_imbalance_spread_by_work_stealing(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        skew = MemStats(num_cores=4)
        skew.core_accesses = [400, 0, 0, 0]
        skew.core_mem_latency = [1600.0, 0, 0, 0]
        skew.core_serial_cycles = [0.0] * 4
        even = MemStats(num_cores=4)
        even.core_accesses = [100] * 4
        even.core_mem_latency = [400.0] * 4
        even.core_serial_cycles = [0.0] * 4
        t_skew = compute_timing(make_output(cfg, skew), cfg)
        t_even = compute_timing(make_output(cfg, even), cfg)
        assert t_skew.total_cycles == pytest.approx(t_even.total_cycles)

    def test_dram_bandwidth_bound(self):
        cfg = SimConfig.scaled_baseline(num_cores=4)
        stats = MemStats(num_cores=4)
        out = make_output(cfg, stats)
        out.dram.read(10**7)
        timing = compute_timing(out, cfg)
        assert timing.bottleneck == "dram_bandwidth"

    def test_pisc_bound(self):
        cfg = SimConfig.scaled_omega(num_cores=4)
        stats = MemStats(num_cores=4)
        stats.pisc_occupancy = [10**6, 0, 0, 0]
        timing = compute_timing(make_output(cfg, stats), cfg)
        assert timing.bottleneck == "pisc"

    def test_memory_bound_fraction(self):
        cfg = SimConfig.scaled_baseline(num_cores=2)
        stats = MemStats(num_cores=2)
        stats.core_accesses = [10, 10]
        stats.core_mem_latency = [400.0, 400.0]
        stats.core_serial_cycles = [20.0, 20.0]
        timing = compute_timing(make_output(cfg, stats), cfg)
        assert 0.9 < timing.memory_bound_fraction < 1.0

    def test_seconds(self):
        cfg = SimConfig.scaled_baseline(num_cores=2)
        stats = MemStats(num_cores=2)
        stats.core_accesses = [1, 1]
        timing = compute_timing(make_output(cfg, stats), cfg)
        assert timing.seconds(2.0) == pytest.approx(
            timing.total_cycles / 2e9
        )


class TestEnergyModel:
    def test_breakdown_components(self):
        stats = MemStats(num_cores=2)
        stats.l1_hits = 100
        stats.l2_hits = 10
        stats.sp_local_accesses = 50
        stats.pisc_ops = 20
        stats.atomics_on_cores = 5
        stats.dram_read_bytes = 1000
        stats.onchip_line_bytes = 640
        bd = EnergyModel().breakdown(stats)
        assert bd.cache_nj > 0
        assert bd.scratchpad_nj > 0
        assert bd.dram_nj == pytest.approx(1000 * 0.35)
        assert bd.total_nj == pytest.approx(
            bd.cache_nj + bd.scratchpad_nj + bd.core_atomic_nj + bd.dram_nj
            + bd.noc_nj
        )

    def test_scratchpad_cheaper_than_cache_per_access(self):
        m = EnergyModel()
        assert m.sp_access_nj < m.l2_access_nj

    def test_as_dict_keys(self):
        bd = EnergyModel().breakdown(MemStats(num_cores=1))
        assert set(bd.as_dict()) == {
            "cache", "scratchpad", "core_atomics", "dram", "noc", "total"
        }

    def test_zero_stats_zero_energy(self):
        assert EnergyModel().breakdown(MemStats(num_cores=1)).total_nj == 0.0


class TestAreaModel:
    def test_table_iv_node_totals(self):
        base = node_budget(BASELINE_COMPONENTS)
        omega = node_budget(OMEGA_COMPONENTS)
        assert base.power_w == pytest.approx(6.17)
        assert base.area_mm2 == pytest.approx(32.91)
        assert omega.power_w == pytest.approx(6.214)
        assert omega.area_mm2 == pytest.approx(32.15)

    def test_paper_deltas(self):
        table = area_power_table()
        # Paper: -2.31% area, +0.65% peak power.
        assert table["delta"]["area_pct"] == pytest.approx(-2.31, abs=0.05)
        assert table["delta"]["power_pct"] == pytest.approx(0.65, abs=0.1)

    def test_pisc_is_tiny(self):
        pisc = next(c for c in OMEGA_COMPONENTS if c.name == "PISC")
        base = node_budget(BASELINE_COMPONENTS)
        assert pisc.area_mm2 / base.area_mm2 < 0.01


class TestStats:
    def test_last_level_hit_rate_counts_scratchpads(self):
        s = MemStats(num_cores=2)
        s.l2_hits = 10
        s.l2_misses = 10
        s.sp_local_accesses = 20
        assert s.last_level_hit_rate == pytest.approx(30 / 40)

    def test_l2_hit_rate_empty(self):
        assert MemStats(num_cores=1).l2_hit_rate == 0.0

    def test_traffic_totals(self):
        s = MemStats(num_cores=1)
        s.onchip_line_bytes = 100
        s.onchip_word_bytes = 28
        assert s.onchip_traffic_bytes == 128

    def test_as_dict_complete(self):
        d = MemStats(num_cores=1).as_dict()
        assert "l1_hit_rate" in d
        assert "l2_hit_rate" in d
        assert "atomics_offloaded" in d

    def test_ratios_safe_on_zero_access_run(self):
        s = MemStats(num_cores=1)
        assert s.l1_hit_rate == 0.0
        assert s.l2_hit_rate == 0.0
        assert s.last_level_hit_rate == 0.0
        assert s.sp_plain_remote_share == 0.0
        assert s.atomics_offload_share == 0.0
        # as_dict must also be total-function on an empty run.
        assert s.as_dict()["l1_hit_rate"] == 0.0

    def test_l1_hit_rate(self):
        s = MemStats(num_cores=1)
        s.l1_hits, s.l1_misses = 75, 25
        assert s.l1_hit_rate == pytest.approx(0.75)

    def test_atomics_offload_share(self):
        s = MemStats(num_cores=1)
        s.atomics_total = 10
        s.atomics_offloaded = 4
        assert s.atomics_offload_share == pytest.approx(0.4)


class TestEnergyScaling:
    def test_paper_config_matches_defaults(self):
        from repro.config import SimConfig

        m = EnergyModel.for_config(SimConfig.paper_omega())
        assert m.l1_access_nj == pytest.approx(EnergyModel().l1_access_nj)
        assert m.sp_access_nj == pytest.approx(EnergyModel().sp_access_nj)

    def test_scaled_config_is_cheaper(self):
        from repro.config import SimConfig

        scaled = EnergyModel.for_config(SimConfig.scaled_omega())
        paper = EnergyModel()
        assert scaled.l2_access_nj < paper.l2_access_nj
        assert scaled.sp_access_nj < paper.sp_access_nj

    def test_sqrt_scaling(self):
        from repro.config import SimConfig

        quarter = SimConfig.paper_omega().with_scratchpad_bytes(256 * 1024)
        m = EnergyModel.for_config(quarter)
        assert m.sp_access_nj == pytest.approx(
            EnergyModel().sp_access_nj / 2
        )

    def test_zero_scratchpad_keeps_reference(self):
        from repro.config import SimConfig

        m = EnergyModel.for_config(SimConfig.paper_baseline())
        assert m.sp_access_nj == EnergyModel().sp_access_nj

    def test_dram_constants_size_independent(self):
        from repro.config import SimConfig

        m = EnergyModel.for_config(SimConfig.scaled_baseline())
        assert m.dram_nj_per_byte == EnergyModel().dram_nj_per_byte
