"""End-to-end telemetry tests: one instrumented run, all three lenses."""

import json

import pytest

from repro.config import SimConfig
from repro.core.system import run_system
from repro.graph.generators import rmat_graph
from repro.obs import MetricsRegistry, SpanTracer, use_registry, use_tracer


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(7, edge_factor=6, seed=3)


class TestInstrumentedRun:
    def test_trace_has_nested_phases(self, graph, tmp_path):
        path = tmp_path / "trace.json"
        run_system(graph, "pagerank", SimConfig.scaled_omega(num_cores=4),
                   dataset="t", trace_path=path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events}
        assert {"run_system", "trace_generation", "algorithm", "edge_map",
                "replay"} <= names
        # Every replay also samples the kernel-screening counter track.
        assert any(e["ph"] == "C" and e["name"] == "kernel.screening"
                   for e in events)
        # The acceptance bar: at least 3 levels of span nesting
        # (counter samples carry values, not depth).
        assert max(e["args"]["depth"] for e in events
                   if e["ph"] == "X") >= 3

    def test_windowed_run_emits_windows_and_spans(self, graph, tmp_path):
        trace = tmp_path / "trace.json"
        timeline = tmp_path / "timeline.json"
        report = run_system(
            graph, "pagerank", SimConfig.scaled_omega(num_cores=4),
            dataset="t", trace_path=trace, timeline_path=timeline,
        )
        doc = json.loads(timeline.read_text())
        assert doc["num_windows"] >= 10
        assert doc["num_windows"] == report.timeline.num_windows
        spans = json.loads(trace.read_text())["traceEvents"]
        assert sum(1 for e in spans if e["name"] == "window") == (
            doc["num_windows"]
        )

    def test_installed_tracer_is_reused(self, graph):
        tracer = SpanTracer()
        with use_tracer(tracer):
            run_system(graph, "pagerank",
                       SimConfig.scaled_baseline(num_cores=4), dataset="t")
        assert any(r.name == "run_system" for r in tracer.records)

    def test_metrics_registry_collects_counters(self, graph):
        registry = MetricsRegistry()
        with use_registry(registry):
            report = run_system(
                graph, "pagerank", SimConfig.scaled_baseline(num_cores=4),
                dataset="t",
            )
        counters = registry.snapshot()["counters"]
        assert counters["replay.events"] == report.trace_events
        assert counters["ligra.edge_map_calls"] > 0
        assert counters["ligra.vertex_map_calls"] > 0

    def test_registry_snapshot_rides_timeline(self, graph, tmp_path):
        path = tmp_path / "timeline.json"
        with use_registry(MetricsRegistry()):
            run_system(graph, "pagerank",
                       SimConfig.scaled_baseline(num_cores=4),
                       dataset="t", timeline_path=path)
        doc = json.loads(path.read_text())
        assert doc["metrics"]["counters"]["replay.events"] > 0

    def test_manifest_telemetry_block(self, graph, tmp_path):
        path = tmp_path / "manifest.json"
        run_system(graph, "pagerank", SimConfig.scaled_omega(num_cores=4),
                   dataset="t", manifest_path=path, obs_window=0)
        doc = json.loads(path.read_text())
        block = doc["telemetry"]
        assert block["num_windows"] >= 10
        assert "l2_hit_rate" in block["summary"]
        assert block["summary"]["dram_gbps"]["count"] == (
            block["num_windows"]
        )
