"""Tests for the package logging setup."""

import logging

import pytest

from repro.errors import ObsError

from repro.obs import LOG_LEVELS, configure_logging


class TestConfigureLogging:
    def test_sets_level(self):
        configure_logging("debug")
        try:
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            configure_logging("warning")

    def test_idempotent_handler_install(self):
        configure_logging("warning")
        configure_logging("warning")
        assert len(logging.getLogger("repro").handlers) == 1

    def test_does_not_touch_root_logger(self):
        before = list(logging.getLogger().handlers)
        configure_logging("info")
        try:
            assert logging.getLogger().handlers == before
        finally:
            configure_logging("warning")

    def test_unknown_level_raises(self):
        with pytest.raises(ObsError, match="unknown log level"):
            configure_logging("loud")

    def test_all_documented_levels_accepted(self):
        for level in LOG_LEVELS:
            configure_logging(level)
        configure_logging("warning")

    def test_child_loggers_route_to_repro_handler(self):
        configure_logging("info")
        try:
            root = logging.getLogger("repro")
            # The tree is self-contained: one handler, no propagation
            # to the application root logger.
            assert not root.propagate
            child = logging.getLogger("repro.memsim.engine")
            assert child.getEffectiveLevel() == logging.INFO
            assert child.isEnabledFor(logging.INFO)
            assert not child.isEnabledFor(logging.DEBUG)
        finally:
            configure_logging("warning")
