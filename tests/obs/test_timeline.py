"""Tests for windowed replay sampling and the Timeline container."""

import csv
import json

import pytest

from repro.errors import ObsError

from repro.config import SimConfig
from repro.core.system import run_system
from repro.graph.generators import rmat_graph
from repro.memsim.stats import MemStats
from repro.obs.timeline import (
    AUTO_WINDOWS,
    COLUMNS,
    ReplaySampler,
    Timeline,
)


def _sampler(window=0, total=100):
    s = ReplaySampler(window)
    s.begin(total_events=total, ncores=4, compute_cycles_per_access=1.0,
            mlp=4.0, imbalance_factor=1.0, freq_ghz=2.0)
    return s


class TestReplaySampler:
    def test_rejects_negative_window(self):
        with pytest.raises(ObsError):
            ReplaySampler(-1)

    def test_auto_window_targets_64(self):
        s = _sampler(window=0, total=6400)
        assert s.window_events == 6400 // AUTO_WINDOWS

    def test_auto_window_minimum_one(self):
        s = _sampler(window=0, total=3)
        assert s.window_events == 1

    def test_record_differences_cumulative_stats(self):
        s = _sampler(window=50)
        stats = MemStats(num_cores=4)
        stats.l1_hits, stats.l1_misses = 30, 20
        stats.dram_read_bytes = 1000
        s.record(0, 50, stats, 0.01)
        stats.l1_hits, stats.l1_misses = 90, 30  # +60 hits, +10 misses
        stats.dram_read_bytes = 1500
        s.record(50, 100, stats, 0.01)
        tl = s.timeline()
        assert tl.columns["l1_hit_rate"] == [
            pytest.approx(0.6), pytest.approx(6 / 7)
        ]
        assert tl.columns["dram_read_bytes"] == [1000, 500]
        assert tl.columns["window"] == [0, 1]

    def test_zero_access_window_is_safe(self):
        s = _sampler(window=10)
        s.record(0, 10, MemStats(num_cores=4), 0.0)
        tl = s.timeline()
        assert tl.columns["l1_hit_rate"] == [0.0]
        assert tl.columns["dram_gbps"][0] >= 0.0


class TestTimeline:
    def _make(self):
        s = _sampler(window=10)
        stats = MemStats(num_cores=4)
        for i in range(1, 4):
            stats.l1_hits = 8 * i
            stats.l1_misses = 2 * i
            stats.dram_read_bytes = 100 * i
            s.record((i - 1) * 10, i * 10, stats, 0.001)
        return s.timeline()

    def test_summary_covers_rate_columns(self):
        tl = self._make()
        summary = tl.summary()
        assert summary["l1_hit_rate"]["count"] == 3
        assert "p50" in summary["dram_gbps"]

    def test_json_roundtrip(self, tmp_path):
        tl = self._make()
        tl.metrics = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        path = tmp_path / "tl.json"
        tl.save(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "omega-repro/timeline/v1"
        loaded = Timeline.load(path)
        assert loaded.columns == tl.columns
        assert loaded.metrics["counters"] == {"x": 1}

    def test_csv_export(self, tmp_path):
        tl = self._make()
        path = tmp_path / "tl.csv"
        tl.save(path)
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == [c for c in COLUMNS if c in tl.columns]
        assert len(rows) == 1 + tl.num_windows


class TestWindowedReplayEquivalence:
    """Sampling must not change what the simulator measures."""

    @pytest.mark.parametrize("backend", ["baseline", "omega"])
    def test_stats_identical_with_and_without_sampler(self, backend):
        g = rmat_graph(7, edge_factor=6, seed=3)
        config = (SimConfig.scaled_omega(num_cores=4) if backend == "omega"
                  else SimConfig.scaled_baseline(num_cores=4))
        plain = run_system(g, "pagerank", config, dataset="t",
                           backend=backend)
        sampled = run_system(g, "pagerank", config, dataset="t",
                             backend=backend, obs_window=500)
        assert sampled.stats.as_dict() == plain.stats.as_dict()
        # Per-core latency sums accumulate in window-sized chunks, so
        # cycles agree to FP rounding, not bit-exactly.
        assert sampled.timing.total_cycles == pytest.approx(
            plain.timing.total_cycles, rel=1e-12
        )
        assert sampled.timeline is not None
        assert sampled.timeline.num_windows >= 2

    def test_window_totals_match_run_totals(self):
        g = rmat_graph(7, edge_factor=6, seed=3)
        report = run_system(
            g, "pagerank", SimConfig.scaled_omega(num_cores=4),
            dataset="t", obs_window=0,
        )
        tl = report.timeline
        assert tl.num_windows >= 10
        assert sum(tl.columns["events"]) == report.trace_events
        assert sum(tl.columns["dram_bytes"]) == report.stats.dram_bytes
        assert sum(tl.columns["onchip_traffic_bytes"]) == (
            report.stats.onchip_traffic_bytes
        )
        assert sum(tl.columns["atomics"]) == report.stats.atomics_total
