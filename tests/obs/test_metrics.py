"""Tests for the metrics registry primitives."""

import pytest

from repro.errors import ObsError

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    percentile,
    set_registry,
    summarize,
    use_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("replay.events")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ObsError):
            c.inc(-1)

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("frontier")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] == pytest.approx(50.5)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ObsError):
            reg.gauge("a")


class TestRegistryGlobals:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_null_instruments_are_noops(self):
        c = NULL_REGISTRY.counter("anything")
        c.inc(10)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_use_registry_scopes_installation(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
            get_registry().counter("x").inc()
        assert get_registry() is NULL_REGISTRY
        assert reg.snapshot()["counters"]["x"] == 1

    def test_set_registry_returns_previous(self):
        reg = MetricsRegistry()
        prev = set_registry(reg)
        try:
            assert prev is NULL_REGISTRY
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestPercentiles:
    def test_matches_numpy(self):
        np = pytest.importorskip("numpy")
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for p in (0, 5, 25, 50, 75, 95, 100):
            assert percentile(data, p) == pytest.approx(
                float(np.percentile(data, p))
            )

    def test_empty_raises(self):
        with pytest.raises(ObsError):
            percentile([], 50)

    def test_summarize_empty_safe(self):
        assert summarize([]) == {"count": 0}

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert {"p5", "p25", "p50", "p75", "p95"} <= set(s)
