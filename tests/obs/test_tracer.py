"""Tests for the span tracer and Chrome trace export."""

import json

from repro.obs import (
    NULL_TRACER,
    SpanTracer,
    get_tracer,
    use_tracer,
)


class TestSpans:
    def test_nesting_records_depth_and_parent(self):
        t = SpanTracer()
        with t.span("outer"):
            with t.span("mid"):
                with t.span("inner"):
                    pass
        names = [r.name for r in t.records]
        assert names == ["outer", "mid", "inner"]
        assert [r.depth for r in t.records] == [1, 2, 3]
        assert [r.parent for r in t.records] == [-1, 0, 1]
        assert t.max_depth == 3

    def test_siblings_share_parent(self):
        t = SpanTracer()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        assert [r.parent for r in t.records] == [-1, 0, 0]
        assert t.max_depth == 2

    def test_durations_nonnegative_and_contained(self):
        t = SpanTracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        outer, inner = t.records
        assert inner.dur_us >= 0
        assert inner.start_us >= outer.start_us
        assert inner.end_us <= outer.end_us + 1e-3

    def test_annotate_adds_args(self):
        t = SpanTracer()
        with t.span("phase", iteration=1) as s:
            s.annotate(changed=7)
        assert t.records[0].args == {"iteration": 1, "changed": 7}

    def test_exception_unwinds_stack(self):
        t = SpanTracer()
        try:
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        with t.span("after"):
            pass
        assert t.records[-1].depth == 1


class TestChromeExport:
    def test_complete_events(self):
        t = SpanTracer()
        with t.span("run", cat="run", backend="omega"):
            with t.span("replay", cat="replay"):
                pass
        doc = t.to_chrome()
        events = doc["traceEvents"]
        assert len(events) == 2
        for e in events:
            assert e["ph"] == "X"
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert "depth" in e["args"] and "parent" in e["args"]
        assert events[0]["args"]["backend"] == "omega"

    def test_export_creates_parents(self, tmp_path):
        t = SpanTracer()
        with t.span("x"):
            pass
        path = tmp_path / "sub" / "dir" / "trace.json"
        t.export_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "x"
        assert doc["displayTimeUnit"] == "ms"


class TestNullTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_noop(self):
        with NULL_TRACER.span("anything") as s:
            s.annotate(ignored=True)
        assert NULL_TRACER.to_chrome()["traceEvents"] == []

    def test_use_tracer_scopes_installation(self):
        t = SpanTracer()
        with use_tracer(t):
            assert get_tracer() is t
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert t.records[0].name == "inside"
