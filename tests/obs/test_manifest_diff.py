"""Tests for manifest diffing and the ``repro report`` gate."""

import json

import pytest

from repro.cli import main
from repro.config import SimConfig
from repro.core.system import run_system
from repro.errors import ReproError
from repro.graph.generators import rmat_graph
from repro.obs import diff_manifests, format_report, load_manifest


@pytest.fixture(scope="module")
def manifest_path(tmp_path_factory):
    g = rmat_graph(7, edge_factor=6, seed=3)
    path = tmp_path_factory.mktemp("manifests") / "run.json"
    run_system(g, "pagerank", SimConfig.scaled_omega(num_cores=4),
               dataset="t", manifest_path=path)
    return path


def _variant(manifest_path, tmp_path, mutate):
    doc = json.loads(manifest_path.read_text())
    mutate(doc)
    path = tmp_path / "variant.json"
    path.write_text(json.dumps(doc))
    return path


class TestLoadManifest:
    def test_loads_valid_manifest(self, manifest_path):
        doc = load_manifest(manifest_path)
        assert doc["schema"].startswith("omega-repro/run-manifest/")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_manifest(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ReproError, match="not a run manifest"):
            load_manifest(path)


class TestDiffManifests:
    def test_identical_manifests_pass(self, manifest_path):
        doc = load_manifest(manifest_path)
        result = diff_manifests(doc, doc)
        assert result.ok
        assert not result.mismatches
        assert all(d.status == "ok" for d in result.deltas)

    def test_hit_rate_regression_detected(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        new["event_counts"]["l2_hit_rate"] = (
            old["event_counts"]["l2_hit_rate"] * 0.5
        )
        result = diff_manifests(old, new, tolerance=0.05)
        assert not result.ok
        assert [d.name for d in result.regressions] == [
            "event_counts.l2_hit_rate"
        ]

    def test_cycle_increase_is_regression(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        new["timing"]["total_cycles"] = old["timing"]["total_cycles"] * 1.5
        result = diff_manifests(old, new)
        assert "timing.total_cycles" in [d.name for d in result.regressions]

    def test_cycle_decrease_is_improvement(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        new["timing"]["total_cycles"] = old["timing"]["total_cycles"] * 0.5
        result = diff_manifests(old, new)
        assert result.ok
        delta = next(d for d in result.deltas
                     if d.name == "timing.total_cycles")
        assert delta.status == "improved"

    def test_within_tolerance_passes(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        new["timing"]["total_cycles"] = old["timing"]["total_cycles"] * 1.04
        assert diff_manifests(old, new, tolerance=0.05).ok

    def test_missing_metric_not_a_regression(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        del new["energy_nj"]["total"]
        result = diff_manifests(old, new)
        assert result.ok
        delta = next(d for d in result.deltas if d.name == "energy_nj.total")
        assert delta.status == "missing"

    def test_context_mismatch_warns(self, manifest_path):
        old = load_manifest(manifest_path)
        new = json.loads(json.dumps(old))
        new["algorithm"] = "bfs"
        result = diff_manifests(old, new)
        assert ("algorithm", "pagerank", "bfs") in result.mismatches

    def test_negative_tolerance_rejected(self, manifest_path):
        doc = load_manifest(manifest_path)
        with pytest.raises(ReproError, match="tolerance"):
            diff_manifests(doc, doc, tolerance=-0.1)

    def test_format_report_mentions_status(self, manifest_path):
        doc = load_manifest(manifest_path)
        text = format_report(diff_manifests(doc, doc), 0.05)
        assert "OK: no metric regressed" in text


class TestGoldenManifest:
    """The CI smoke job gates against this checked-in manifest."""

    GOLDEN = "tests/golden/lj-pagerank-omega.json"

    def test_golden_loads_and_self_diffs(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            self.GOLDEN)
        doc = load_manifest(path)
        assert doc["dataset"] == "lj"
        assert doc["algorithm"] == "pagerank"
        assert doc["backend"] == "omega"
        assert diff_manifests(doc, doc).ok


class TestReportCommand:
    def test_identical_exits_zero(self, manifest_path, capsys):
        code = main(["report", str(manifest_path), str(manifest_path)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, manifest_path, tmp_path, capsys):
        def worsen(doc):
            doc["event_counts"]["l2_hit_rate"] *= 0.5
        bad = _variant(manifest_path, tmp_path, worsen)
        code = main(["report", str(manifest_path), str(bad),
                     "--tolerance", "0.05"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_loose_tolerance_admits_regression(self, manifest_path,
                                               tmp_path):
        def worsen(doc):
            doc["event_counts"]["l2_hit_rate"] *= 0.97
        slightly = _variant(manifest_path, tmp_path, worsen)
        assert main(["report", str(manifest_path), str(slightly),
                     "--tolerance", "0.05"]) == 0

    def test_missing_manifest_exits_two(self, manifest_path, tmp_path,
                                        capsys):
        code = main(["report", str(manifest_path),
                     str(tmp_path / "gone.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
