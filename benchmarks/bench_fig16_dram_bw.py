"""Figure 16 — DRAM bandwidth utilization of PageRank.

Graph workloads underuse off-chip bandwidth; OMEGA improves achieved
DRAM bandwidth by 2.28x on average in the paper, because offloaded
atomics and on-chip vtxProp hits let the cores stream the edgeList
faster.
"""

import statistics

from repro.bench import PAGERANK_DATASETS, format_table

from conftest import emit


def _rows(sims):
    rows = []
    for ds in PAGERANK_DATASETS:
        cmp = sims.compare("pagerank", ds)
        rows.append(
            {
                "dataset": ds,
                "baseline GB/s": round(cmp.baseline.dram_bandwidth_gbps, 2),
                "OMEGA GB/s": round(cmp.omega.dram_bandwidth_gbps, 2),
                "improvement": round(cmp.dram_bw_improvement, 2),
            }
        )
    return rows


def test_fig16_dram_bandwidth(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    geo = statistics.geometric_mean(max(r["improvement"], 1e-9) for r in rows)
    text = format_table(rows, "Fig 16 — DRAM bandwidth utilization (PageRank)")
    text += f"\ngeomean improvement: {geo:.2f}x (paper: 2.28x)\n"
    emit("fig16_dram_bw", text)
    # Shape: OMEGA improves utilization overall, strongly on power-law.
    assert geo > 1.2
    powerlaw = [r for r in rows if r["dataset"] not in ("rPA", "rCA")]
    assert statistics.geometric_mean(
        r["improvement"] for r in powerlaw
    ) > 1.3
