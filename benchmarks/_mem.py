"""Peak-RSS measurement for the benchmark harness.

``ru_maxrss`` is a per-process high-water mark: once a process has
held a whole trace, its peak can never come back down, so in-core and
streamed footprints cannot be compared inside one process.
:func:`run_measured` therefore runs each measurement in a fresh
``spawn`` child (never ``fork`` — a forked child inherits the parent's
peak) and ships back both the worker's return value and its peak RSS.

No new dependencies: the measurement is ``resource.getrusage`` and the
worker transport is a ``multiprocessing`` pipe. Workers must be
module-level (picklable by reference) for ``spawn`` to import them.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Any, Callable, Tuple

__all__ = ["peak_rss_bytes", "run_measured"]


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes."""
    import resource

    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def _entry(conn, fn: Callable, args: tuple, kwargs: dict) -> None:
    """Child-side shim: run the worker, report result + peak RSS."""
    try:
        result = fn(*args, **kwargs)
    except BaseException as exc:  # ship the failure to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}",
                   peak_rss_bytes()))
    else:
        conn.send(("ok", result, peak_rss_bytes()))
    finally:
        conn.close()


def run_measured(fn: Callable, *args, **kwargs) -> Tuple[Any, int]:
    """Run ``fn(*args, **kwargs)`` in a fresh process.

    Returns ``(result, peak_rss_bytes)`` for that process alone.
    Raises ``RuntimeError`` if the worker raised or died.
    """
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_entry, args=(child, fn, args, kwargs))
    proc.start()
    child.close()
    try:
        if not parent.poll(timeout=1800):
            raise RuntimeError("measured worker timed out")
        status, payload, rss = parent.recv()
    except EOFError:
        raise RuntimeError(
            f"measured worker died (exit code {proc.exitcode})"
        )
    finally:
        proc.join()
        parent.close()
    if status != "ok":
        raise RuntimeError(f"measured worker failed: {payload}")
    return payload, rss
