"""Section IX — OMEGA on dynamic graphs.

The paper argues OMEGA adapts to dynamic graphs "by using a reordering
algorithm to re-identify the popular vertices", deferring evaluation.
This bench runs the study: grow the lj stand-in by 25% under the
natural preferential-attachment model and under adversarial uniform
churn, then compare OMEGA (a) with the stale hot mapping from before
the growth and (b) after re-identifying the hot set.
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.core.system import run_system
from repro.graph.dynamic import (
    DynamicGraph,
    hot_set_overlap,
    preferential_edges,
    uniform_edges,
)
from repro.graph.reorder import reorder_nth_element

from conftest import emit


def _grown(graph, kind: str):
    dyn = DynamicGraph(graph)
    gen = preferential_edges if kind == "preferential" else uniform_edges
    src, dst = gen(graph, graph.num_edges // 4, seed=7)
    dyn.add_edges(src, dst)
    return dyn.snapshot()


def _rows():
    graph, _ = bench_graph("lj")
    # OMEGA's deployed state: the graph as reordered at install time.
    deployed, _ = reorder_nth_element(graph, key="in")
    baseline_cfg = SimConfig.scaled_baseline()
    omega_cfg = SimConfig.scaled_omega()

    rows = []
    for kind in ("preferential", "uniform"):
        new_graph = _grown(deployed, kind)
        overlap = hot_set_overlap(deployed, new_graph)
        base = run_system(new_graph, "pagerank", baseline_cfg, dataset="lj")
        # Stale mapping: keep the old ordering (ids 0..k are the OLD
        # hot set) — no re-reordering pass.
        stale = run_system(new_graph, "pagerank", omega_cfg, dataset="lj",
                           reorder=False)
        # Re-identified mapping: run the nth-element pass again.
        fresh = run_system(new_graph, "pagerank", omega_cfg, dataset="lj",
                           reorder=True)
        rows.append(
            {
                "growth model": kind,
                "hot-set overlap": round(overlap, 3),
                "speedup (stale mapping)": round(base.cycles / stale.cycles, 2),
                "speedup (re-identified)": round(base.cycles / fresh.cycles, 2),
            }
        )
    return rows


def test_section9_dynamic_graphs(benchmark, sims):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table(
        rows, "Section IX — dynamic graphs (+25% edges, PageRank on lj)"
    )
    text += ("\npaper: re-identifying popular vertices restores the static"
             " benefit; preferential attachment keeps hot sets stable\n")
    emit("section9_dynamic", text)
    by_kind = {r["growth model"]: r for r in rows}
    pref = by_kind["preferential"]
    unif = by_kind["uniform"]
    # Natural growth keeps the hot set nearly intact...
    assert pref["hot-set overlap"] > 0.8
    # ...so the stale mapping retains most of the benefit.
    assert pref["speedup (stale mapping)"] > 0.85 * pref["speedup (re-identified)"]
    # Adversarial churn drifts faster than preferential growth.
    assert unif["hot-set overlap"] <= pref["hot-set overlap"]
    # Re-identification never hurts.
    for r in rows:
        assert r["speedup (re-identified)"] >= r["speedup (stale mapping)"] - 0.1
        assert r["speedup (re-identified)"] > 1.0
