"""Figure 5 — heatmap of vtxProp accesses to the top-20% vertices.

One cell per (algorithm, dataset): the percentage of vtxProp accesses
that target the 20% most-connected vertices. The paper reports up to
99% for power-law datasets and ~20-30% for road networks (twitter is
omitted there too, for profiling cost).
"""

from repro.bench import bench_graph, print_heatmap, format_table
from repro.algorithms.registry import ALGORITHMS, run_algorithm
from repro.core.characterization import access_fraction_to_top

from conftest import emit

ALGS = ("pagerank", "bfs", "sssp", "radii")
DATASETS = ("sd", "rmat", "wiki", "lj", "rPA", "rCA")


def _heatmap():
    table = {}
    for alg in ALGS:
        info = ALGORITHMS[alg]
        row = {}
        for ds in DATASETS:
            graph, _ = bench_graph(
                ds, weighted=info.requires_weights,
                undirected=info.requires_undirected,
            )
            res = run_algorithm(alg, graph, num_cores=16, chunk_size=32)
            row[ds] = round(access_fraction_to_top(res.trace, graph), 1)
        table[alg] = row
    return table


def test_fig5_access_heatmap(benchmark, sims):
    table = benchmark.pedantic(_heatmap, rounds=1, iterations=1)
    rows = [
        {"algorithm": alg, **{ds: table[alg][ds] for ds in DATASETS}}
        for alg in ALGS
    ]
    emit("fig5_heatmap",
         format_table(rows, "Fig 5 — % vtxProp accesses to top-20% vertices"))
    for alg in ALGS:
        for ds in DATASETS:
            value = table[alg][ds]
            if ds in ("rPA", "rCA"):
                assert value < 50.0, f"{alg}/{ds} road cell too hot: {value}"
            else:
                assert value > 45.0, f"{alg}/{ds} power-law cell too cold: {value}"
