"""Interconnect sensitivity — crossbar (Table III) vs 2D mesh.

The paper's setup uses a 16-port crossbar with a measured 17-cycle
average remote latency, citing asymmetric high-radix work for scaling
beyond that. This bench swaps in a 2D-mesh latency model: at 16 cores
the mesh's ~2.7-hop average (~10 cycles) is *cheaper* than the
crossbar constant, which narrows OMEGA's margin (remote traffic is
what OMEGA avoids), illustrating how the proposal's benefit scales
with on-chip communication cost.
"""

import dataclasses

from repro.bench import format_table
from repro.config import InterconnectConfig, SimConfig

from conftest import emit


def _rows(sims):
    rows = []
    for topo in ("crossbar", "mesh"):
        ic = InterconnectConfig(topology=topo)
        base_cfg = dataclasses.replace(
            SimConfig.scaled_baseline(), name=f"baseline-{topo}",
            interconnect=ic,
        )
        omega_cfg = dataclasses.replace(
            SimConfig.scaled_omega(), name=f"omega-{topo}", interconnect=ic,
        )
        base = sims.run("pagerank", "lj", base_cfg)
        omega = sims.run("pagerank", "lj", omega_cfg)
        rows.append(
            {
                "topology": topo,
                "baseline cycles": round(base.cycles),
                "omega cycles": round(omega.cycles),
                "speedup": round(base.cycles / omega.cycles, 2),
            }
        )
    return rows


def test_noc_topology_sensitivity(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "NoC topology sensitivity (PageRank, lj, 16 cores)"
    )
    text += ("\ncheaper remote hops shrink the communication overhead OMEGA"
             " eliminates, narrowing (but not erasing) its margin\n")
    emit("noc_topology", text)
    by_topo = {r["topology"]: r for r in rows}
    # The mesh's shorter average distance speeds the baseline up...
    assert by_topo["mesh"]["baseline cycles"] <= by_topo["crossbar"][
        "baseline cycles"
    ]
    # ...narrowing OMEGA's relative win, which still holds.
    assert by_topo["mesh"]["speedup"] <= by_topo["crossbar"]["speedup"]
    assert by_topo["mesh"]["speedup"] > 1.0
