"""Section VII — scaling scratchpad usage to large graphs via slicing.

The paper names three strategies: (1) store only what fits (its
evaluated configuration), (2) plain slicing (every slice's vtxProp
fits), and (3) power-law-aware slicing (only each slice's top 20%
must fit, cutting slice count ~5x). This bench measures all three on
the uk stand-in, whose hot set overflows the scaled scratchpads.
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.core.sliced import run_sliced
from repro.core.system import run_system

from conftest import emit

DATASET = "uk"
SCALE = 0.5  # 16k vertices: top-20% = 3.3k > 1.8k scratchpad capacity


def _rows(sims):
    graph, _ = bench_graph(DATASET, scale=SCALE)
    base = run_system(graph, "pagerank", SimConfig.scaled_baseline(),
                      dataset=DATASET)
    unsliced = run_system(graph, "pagerank", SimConfig.scaled_omega(),
                          dataset=DATASET)
    plain = run_sliced(graph, "pagerank", dataset=DATASET,
                       power_law_aware=False)
    aware = run_sliced(graph, "pagerank", dataset=DATASET,
                       power_law_aware=True)
    return [
        {"strategy": "baseline CMP", "slices": 1,
         "cycles": round(base.cycles), "speedup": 1.0},
        {"strategy": "approach 1: store what fits", "slices": 1,
         "cycles": round(unsliced.cycles),
         "speedup": round(base.cycles / unsliced.cycles, 2)},
        {"strategy": "approach 2: plain slicing",
         "slices": plain.num_slices, "cycles": round(plain.total_cycles),
         "speedup": round(base.cycles / plain.total_cycles, 2)},
        {"strategy": "approach 3: power-law-aware slicing",
         "slices": aware.num_slices, "cycles": round(aware.total_cycles),
         "speedup": round(base.cycles / aware.total_cycles, 2)},
    ]


def test_section7_slicing(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "Section VII — scaling strategies (PageRank, uk stand-in)"
    )
    text += ("\npaper: power-law-aware slicing cuts slice count ~5x;"
             " evaluation used approach 1\n")
    emit("section7_slicing", text)
    by_strategy = {r["strategy"]: r for r in rows}
    plain = by_strategy["approach 2: plain slicing"]
    aware = by_strategy["approach 3: power-law-aware slicing"]
    fits = by_strategy["approach 1: store what fits"]
    # The 1/hot_fraction slice-count reduction (paper's 5x claim,
    # bounded by the graph actually running out).
    assert plain["slices"] >= 3 * aware["slices"]
    # Fewer slices -> fewer per-pass fixed costs -> faster.
    assert aware["cycles"] < plain["cycles"]
    # Power-law-aware slicing competes with (here: beats) the
    # overflowed store-what-fits configuration.
    assert aware["speedup"] > 0.9 * fits["speedup"]
    # Everything still beats the baseline except possibly plain slicing.
    assert aware["speedup"] > 1.0
    assert fits["speedup"] > 1.0
