"""Figure 19 — scratchpad-size sensitivity study.

The paper sweeps the scratchpad allocation (16/8/4 MB, keeping the L2
fixed) for PageRank and BFS on lj: even the smallest configuration,
holding only 10-20% of the vtxProp, retains a 1.4-1.5x speedup. We
sweep the scaled equivalents (1/1, 1/2 and 1/4 of the default pads).
"""

from repro.bench import format_table
from repro.config import SimConfig

from conftest import emit

#: Scaled analogues of the paper's 16 MB / 8 MB / 4 MB sweep.
SP_BYTES_PER_CORE = (1024, 512, 256)


def _rows(sims):
    rows = []
    for alg in ("pagerank", "bfs"):
        for sp in SP_BYTES_PER_CORE:
            omega = SimConfig.scaled_omega().with_scratchpad_bytes(sp)
            cmp = sims.compare(alg, "lj", omega_config=omega)
            rows.append(
                {
                    "algorithm": alg,
                    "sp per core (B)": sp,
                    "hot fraction": round(cmp.omega.hot_fraction, 3),
                    "speedup": round(cmp.speedup, 2),
                }
            )
    return rows


def test_fig19_scratchpad_sensitivity(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(rows, "Fig 19 — scratchpad size sensitivity (lj)")
    text += "\npaper: 1.4x (PageRank) and 1.5x (BFS) at the smallest size\n"
    emit("fig19_sp_sensitivity", text)
    for alg in ("pagerank", "bfs"):
        series = [r for r in rows if r["algorithm"] == alg]
        speeds = [r["speedup"] for r in series]
        fracs = [r["hot fraction"] for r in series]
        # Monotone: less scratchpad -> less (or equal) coverage/speedup.
        assert fracs == sorted(fracs, reverse=True)
        assert speeds[0] >= speeds[-1]
        # Even the smallest configuration still wins.
        assert speeds[-1] > 1.0
