"""Section V-F — framework independence of the offload tool.

The paper verified its source-to-source translation on both Ligra and
GraphMat. The two frameworks stress OMEGA differently: Ligra's
forward scatter is atomic-heavy (PISC offloading dominates), while
GraphMat's owner-writes gather has *no* atomics — there OMEGA's win
comes purely from the scratchpad storage and word-granularity
transfers. Both must still come out ahead.
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.core.system import run_system

from conftest import emit


def _rows():
    graph, _ = bench_graph("lj")
    rows = []
    for framework in ("ligra", "graphmat"):
        base = run_system(graph, "pagerank", SimConfig.scaled_baseline(),
                          dataset="lj", framework=framework)
        omega = run_system(graph, "pagerank", SimConfig.scaled_omega(),
                           dataset="lj", framework=framework)
        rows.append(
            {
                "framework": framework,
                "atomics": base.stats.atomics_total,
                "speedup": round(base.cycles / omega.cycles, 2),
                "pisc update offloads": omega.stats.pisc_ops,
                "sp accesses": omega.stats.sp_accesses,
            }
        )
    return rows


def test_framework_independence(benchmark, sims):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table(
        rows, "Section V-F — Ligra vs GraphMat PageRank under OMEGA (lj)"
    )
    text += ("\npaper: the translation tool supports both frameworks;"
             " GraphMat needs no atomics, so its gains are storage-only\n")
    emit("framework_independence", text)
    by_fw = {r["framework"]: r for r in rows}
    # GraphMat's partitioned execution has no atomic operations at all,
    # yet its update functions still offload to the PISCs (the paper's
    # "the optimization targets the specific operations performed on
    # vtxProp" for atomic-free frameworks).
    assert by_fw["graphmat"]["atomics"] == 0
    assert by_fw["ligra"]["atomics"] > 0
    assert by_fw["graphmat"]["sp accesses"] > 0
    # Ligra (atomic-heavy) gains the full benefit; GraphMat, which
    # already avoids atomics in software, gains little at scaled L2
    # sizes — OMEGA must at least stay competitive.
    assert by_fw["ligra"]["speedup"] > 1.0
    assert by_fw["graphmat"]["speedup"] > 0.8
    assert by_fw["ligra"]["speedup"] > by_fw["graphmat"]["speedup"]
