"""Section III motivation — limits of pre-processing-only solutions.

The paper applied in-degree, out-degree and SlashBurn reorderings to
the *baseline* CMP (no OMEGA hardware) and found limited benefit: +8%
for in-degree, +6.3% for out-degree, none for SlashBurn. We regenerate
the experiment by running the baseline on reordered graphs.
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.core.system import run_system
from repro.graph.reorder import (
    reorder_by_degree,
    reorder_slashburn,
)

from conftest import emit

DATASET = "lj"


def _rows():
    graph, _ = bench_graph(DATASET)
    cfg = SimConfig.scaled_baseline()
    base = run_system(graph, "pagerank", cfg, dataset=DATASET, reorder=False)

    variants = {
        "original order": graph,
        "in-degree sort": reorder_by_degree(graph, key="in")[0],
        "out-degree sort": reorder_by_degree(graph, key="out")[0],
        "slashburn": reorder_slashburn(graph, k=8)[0],
    }
    rows = []
    for name, g in variants.items():
        rep = run_system(g, "pagerank", cfg, dataset=DATASET, reorder=False)
        rows.append(
            {
                "ordering": name,
                "cycles": round(rep.cycles),
                "speedup vs original": round(base.cycles / rep.cycles, 3),
                "llc hit rate": round(rep.stats.l2_hit_rate, 3),
            }
        )
    return rows


def test_motivation_reordering_limited(benchmark, sims):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table(
        rows,
        "Section III — reordering alone on the baseline CMP (PageRank, lj)",
    )
    text += "\npaper: best +8% (in-degree), +6.3% (out-degree), ~0 (SlashBurn)\n"
    emit("motivation_reordering", text)
    by_name = {r["ordering"]: r["speedup vs original"] for r in rows}
    # Shape: reordering alone is nowhere near OMEGA's 2x.
    assert max(by_name.values()) < 1.5
    # SlashBurn provides no advantage over degree sorting.
    assert by_name["slashburn"] <= max(
        by_name["in-degree sort"], by_name["out-degree sort"]
    ) + 0.05
