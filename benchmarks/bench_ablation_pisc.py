"""Section X-A ablation — scratchpads as storage only (no PISC).

The paper isolates the scratchpads' contribution by disabling the
PISC engines for PageRank on lj: only 1.3x, versus >3x with PISCs,
because core-side atomics to remote scratchpads forgo the on-chip
communication and atomic-offload savings. A second ablation drops the
source vertex buffer for SSSP (the algorithm it was designed for).
"""

from repro.bench import format_table
from repro.config import SimConfig

from conftest import emit


def _rows(sims):
    rows = []
    full = sims.compare("pagerank", "lj")
    no_pisc = sims.compare(
        "pagerank", "lj", omega_config=SimConfig.scaled_omega(use_pisc=False)
    )
    rows.append({"configuration": "scratchpads + PISC",
                 "algorithm": "pagerank", "speedup": round(full.speedup, 2)})
    rows.append({"configuration": "scratchpads only",
                 "algorithm": "pagerank", "speedup": round(no_pisc.speedup, 2)})

    sssp_full = sims.compare("sssp", "lj")
    sssp_nobuf = sims.compare(
        "sssp", "lj",
        omega_config=SimConfig.scaled_omega(use_source_buffer=False),
    )
    rows.append({"configuration": "with source buffer",
                 "algorithm": "sssp", "speedup": round(sssp_full.speedup, 2)})
    rows.append({"configuration": "without source buffer",
                 "algorithm": "sssp", "speedup": round(sssp_nobuf.speedup, 2)})
    return rows


def test_ablation_pisc_and_srcbuf(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(rows, "Section X-A — component ablations (lj)")
    text += "\npaper: scratchpads-only 1.3x vs >3x with PISC\n"
    emit("ablation_pisc", text)
    by_cfg = {(r["configuration"], r["algorithm"]): r["speedup"] for r in rows}
    # PISC offloading is the dominant contributor.
    assert (
        by_cfg[("scratchpads + PISC", "pagerank")]
        > by_cfg[("scratchpads only", "pagerank")] + 0.3
    )
    # The source buffer helps the src-read-heavy algorithm.
    assert (
        by_cfg[("with source buffer", "sssp")]
        >= by_cfg[("without source buffer", "sssp")]
    )
