"""Table IV — peak power and area for a CMP node vs an OMEGA node.

The component budgets come from the paper's own McPAT/Cacti/synthesis
numbers; the arithmetic reproduces its two deltas: OMEGA occupies
slightly less area (-2.31%, scratchpads carry no tag arrays) at
slightly higher peak power (+0.65%).
"""

from repro.bench import format_table
from repro.memsim.area import (
    BASELINE_COMPONENTS,
    OMEGA_COMPONENTS,
    area_power_table,
    node_budget,
)

from conftest import emit


def _rows():
    rows = []
    for system, comps in (
        ("baseline CMP", BASELINE_COMPONENTS),
        ("OMEGA", OMEGA_COMPONENTS),
    ):
        for c in comps:
            rows.append(
                {
                    "system": system,
                    "component": c.name,
                    "power (W)": c.power_w,
                    "area (mm2)": c.area_mm2,
                }
            )
        total = node_budget(comps)
        rows.append(
            {
                "system": system,
                "component": "Node total",
                "power (W)": round(total.power_w, 3),
                "area (mm2)": round(total.area_mm2, 2),
            }
        )
    return rows


def test_table4_area_power(benchmark, sims):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = area_power_table()
    text = format_table(rows, "Table IV — peak power and area per node")
    text += (
        f"\ndeltas: area {table['delta']['area_pct']:+.2f}%"
        f" (paper: -2.31%), power {table['delta']['power_pct']:+.2f}%"
        f" (paper: +0.65%)\n"
    )
    emit("table4_area_power", text)
    assert table["delta"]["area_pct"] < 0
    assert 0 < table["delta"]["power_pct"] < 2.0
