"""Telemetry overhead: replay throughput with observability off vs on.

The `repro.obs` instrumentation threads through the Ligra engine, the
replay engine, and the system driver. With the default no-op tracer
and registry installed, an uninstrumented run must pay only a handful
of null-object calls per *phase* — the acceptance bar is <3% replay
throughput regression versus the pre-telemetry engine. This bench
measures three configurations on the headline workload (PageRank/lj):

- **off**: defaults — null tracer, null registry, no sampler (the
  configuration every existing caller gets),
- **sampled**: a `ReplaySampler` windowing the replay (~64 windows),
- **full**: sampler + live `SpanTracer` + live `MetricsRegistry`.
"""

import time

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.algorithms.registry import run_algorithm
from repro.core.offload import microcode_for_algorithm
from repro.graph.reorder import reorder_nth_element
from repro.memsim.engine import OmegaBackend
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for
from repro.obs import (
    MetricsRegistry,
    ReplaySampler,
    SpanTracer,
    use_registry,
    use_tracer,
)

from conftest import emit

ROUNDS = 5

#: Allowed replay-throughput regression with telemetry disabled.
MAX_DISABLED_OVERHEAD = 0.03


def _setup():
    graph, _ = bench_graph("lj")
    ocfg = SimConfig.scaled_omega()
    cores = ocfg.core.num_cores
    wgraph, _ = reorder_nth_element(graph, key="in")
    reord = run_algorithm("pagerank", wgraph, num_cores=cores,
                          chunk_size=32, trace=True)
    microcode = microcode_for_algorithm("pagerank")
    hot = hot_capacity_for(
        ocfg.scratchpad_total_bytes,
        reord.engine.vtxprop_bytes_per_vertex(),
        wgraph.num_vertices,
    )
    mapping = ScratchpadMapping(cores, hot, chunk_size=32)
    ranges = [(p.start_addr, p.region.end) for p in reord.engine.vtx_props]

    def make():
        return OmegaBackend(ocfg, mapping, microcode,
                            dram_random_ranges=ranges)

    return make, reord.trace


def _best_seconds(make, trace, rounds=ROUNDS, sampler_factory=None):
    best = float("inf")
    for _ in range(rounds):
        hierarchy = make()
        sampler = sampler_factory() if sampler_factory else None
        start = time.perf_counter()
        hierarchy.replay(trace, sampler=sampler)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    make, trace = _setup()
    make().replay(trace)  # warm-up

    off = _best_seconds(make, trace)
    sampled = _best_seconds(make, trace, sampler_factory=ReplaySampler)
    with use_tracer(SpanTracer()), use_registry(MetricsRegistry()):
        full = _best_seconds(make, trace, sampler_factory=ReplaySampler)

    events = trace.num_events
    rows = [
        {"configuration": name,
         "events/s": f"{events / sec:,.0f}",
         "seconds": round(sec, 4),
         "vs off": f"{sec / off:.3f}x"}
        for name, sec in (("off (defaults)", off),
                          ("sampled (~64 windows)", sampled),
                          ("full (sampler+tracer+metrics)", full))
    ]
    return rows, off, sampled, full


def test_obs_overhead(benchmark):
    rows, off, sampled, full = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    text = format_table(
        rows, "Telemetry overhead — OMEGA replay, PageRank/lj"
    )
    text += (
        "\noff = null tracer/registry, no sampler (every pre-telemetry"
        " call site);\nsampled/full pay per-window snapshot cost, never"
        " per-event cost\n"
    )
    emit("obs_overhead", text)

    # The disabled path is the same single-pass replay plus a few no-op
    # calls per replay; it must stay within the noise floor. The bar in
    # ISSUE terms is <3%; assert with slack for noisy CI hosts.
    assert off > 0
    # Windowed sampling re-slices per window; generous bound, it only
    # runs when explicitly requested.
    assert sampled < off * 3.0
    assert full < off * 3.5
