"""Table II — graph-algorithm characterization.

Regenerates the paper's Table II twice over: the static rows (atomic
op type, vtxProp entry size/count, active-list usage, source-read
behaviour) from the registry, and the measured qualitative columns
(%atomic, %random) from actual traces of each algorithm on a small
power-law graph, verifying the static claims.
"""

from repro.bench import bench_graph, format_table
from repro.algorithms.registry import ALGORITHMS, algorithm_names, run_algorithm
from repro.core.characterization import measured_algorithm_profile

from conftest import emit


def _static_rows():
    return [ALGORITHMS[name].as_row() for name in algorithm_names()]


def _measured_rows():
    rows = []
    for name in algorithm_names():
        info = ALGORITHMS[name]
        graph, _ = bench_graph(
            "sd" if not info.requires_undirected else "ap",
            scale=1.0,
            weighted=info.requires_weights,
            undirected=info.requires_undirected,
        )
        result = run_algorithm(name, graph, num_cores=16, chunk_size=32)
        prof = measured_algorithm_profile(result.trace)
        rows.append(
            {
                "algorithm": info.display_name,
                "measured %atomic": round(100 * prof.atomic_fraction, 1),
                "measured %random(vtxProp)": round(
                    100 * prof.random_fraction, 1
                ),
                "measured bytes/vertex": result.engine.vtxprop_bytes_per_vertex(),
                "declared bytes/vertex": info.vtxprop_entry_bytes,
                "events": prof.total_events,
            }
        )
    return rows


def test_table2_algorithm_characterization(benchmark, sims):
    static_rows, measured = benchmark.pedantic(
        lambda: (_static_rows(), _measured_rows()), rounds=1, iterations=1
    )
    text = format_table(static_rows, "Table II — static characterization")
    text += "\n" + format_table(measured, "Table II — measured from traces")
    emit("table2_algorithms", text)

    by_name = {r["algorithm"]: r for r in measured}
    # The declared vtxProp footprints match what the engines allocate.
    for row in measured:
        assert row["measured bytes/vertex"] == row["declared bytes/vertex"]
    # Qualitative orderings from the paper: PageRank atomics high, TC
    # low; PageRank random accesses high, TC low. (KC's atomic share
    # depends on the chosen k — the default peels aggressively.)
    assert by_name["PageRank"]["measured %atomic"] > by_name["TC"]["measured %atomic"]
    assert (
        by_name["PageRank"]["measured %random(vtxProp)"]
        > by_name["TC"]["measured %random(vtxProp)"]
    )
