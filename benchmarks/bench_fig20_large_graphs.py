"""Figure 20 — high-level model estimates for very large graphs.

gem5 could not simulate uk-2002 or twitter-2010, so the paper built a
high-level analytic model (LLC-hit-rate DRAM estimate, 100-cycle DRAM,
17-cycle remote scratchpad, baseline atomics priced as PISC ops) and
validated it against gem5 on the small datasets (within 7%). We
regenerate both halves: paper-scale estimates for uk/twitter, and the
validation of the analytic model against this repo's detailed
simulator on the lj stand-in.
"""

import math

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.core.analytic import (
    LARGE_GRAPHS,
    LargeGraph,
    WorkloadProfile,
    estimate_cycles,
    estimate_speedup,
)
from repro.algorithms.registry import run_algorithm
from repro.graph.degree import top_fraction_connectivity

from conftest import emit


def _profile(alg: str):
    graph, _ = bench_graph("lj", weighted=False)
    res = run_algorithm(alg, graph, num_cores=16, chunk_size=32)
    return graph, res, WorkloadProfile.from_trace(
        alg, res.trace, graph, iterations=max(res.iterations, 1)
    )


def _estimate_rows():
    rows = []
    for alg in ("pagerank", "bfs"):
        _, _, profile = _profile(alg)
        bytes_per_vertex = 8 if alg == "pagerank" else 4
        for name in ("uk", "twitter"):
            graph_spec = LARGE_GRAPHS[name]
            omega = estimate_cycles(
                graph_spec, profile, SimConfig.paper_omega(), bytes_per_vertex
            )
            rows.append(
                {
                    "algorithm": alg,
                    "dataset": name,
                    "hot fraction": round(omega.hot_fraction, 3),
                    "sp coverage": round(omega.sp_coverage, 3),
                    "estimated speedup": round(
                        estimate_speedup(
                            graph_spec, profile,
                            bytes_per_vertex=bytes_per_vertex,
                        ),
                        2,
                    ),
                }
            )
    return rows


def _validation_rows(sims):
    """Model-vs-simulator agreement on the stand-in scale (paper: <7%)."""
    rows = []
    for alg in ("pagerank", "bfs"):
        graph, res, profile = _profile(alg)
        cmp = sims.compare(alg, "lj")
        # Describe the stand-in to the analytic model.
        spec = LargeGraph(
            name="lj-standin",
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            zipf_s=1.0
            - math.log(top_fraction_connectivity(graph.in_degrees()) / 100.0)
            / math.log(0.2),
            baseline_llc_hit_rate=cmp.baseline.stats.l2_hit_rate,
        )
        modeled = estimate_speedup(
            spec,
            profile,
            baseline_config=SimConfig.scaled_baseline(),
            omega_config=SimConfig.scaled_omega(),
            bytes_per_vertex=8 if alg == "pagerank" else 4,
        )
        measured = cmp.speedup
        rows.append(
            {
                "algorithm": alg,
                "simulated speedup": round(measured, 2),
                "modeled speedup": round(modeled, 2),
                "error %": round(100 * abs(modeled - measured) / measured, 1),
            }
        )
    return rows


def test_fig20_large_graph_estimates(benchmark, sims):
    est, val = benchmark.pedantic(
        lambda: (_estimate_rows(), _validation_rows(sims)),
        rounds=1, iterations=1,
    )
    text = format_table(est, "Fig 20 — high-level estimates (paper scale)")
    text += "\npaper: 1.68x PageRank / 1.35x BFS on twitter at 5-10% coverage\n\n"
    text += format_table(val, "Fig 20 — model validation vs detailed sim (lj)")
    text += "\npaper: high-level estimates within 7% of gem5\n"
    emit("fig20_large_graphs", text)

    by_key = {(r["algorithm"], r["dataset"]): r for r in est}
    # Both large graphs still benefit despite tiny hot fractions
    # (paper: 1.35-1.7x even at 5-10% of vtxProp in scratchpads).
    for key, row in by_key.items():
        assert row["estimated speedup"] > 1.1
        assert row["hot fraction"] < 0.25
    # twitter's hot set is the most overflowed (5% in the paper).
    assert (
        by_key[("pagerank", "twitter")]["hot fraction"]
        < by_key[("pagerank", "uk")]["hot fraction"]
    )
    # Validation error within a loose band of the paper's 7%.
    assert all(r["error %"] < 40 for r in val)
