"""Section IX / Table V — OMEGA vs the neighboring design points.

Quantifies two comparisons the paper makes in prose:

- **Locked cache vs scratchpad** (Section IX): pinning hot vertices'
  cache lines avoids scratchpad hardware but "would still suffer from
  high on-chip communication overhead because data is inefficiently
  accessed on a cache-line granularity".
- **GraphPIM** (Table V): offloading atomics to off-chip memory frees
  the cores but cannot exploit the on-chip locality of natural graphs,
  which is exactly what OMEGA's scratchpads capture.
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.algorithms.pagerank import run_pagerank
from repro.core.offload import microcode_for_algorithm
from repro.core.system import run_graphpim, run_locked_cache, run_system
from repro.memsim.alternatives import DynamicScratchpadHierarchy
from repro.memsim.core_model import compute_timing
from repro.memsim.scratchpad import hot_capacity_for

from conftest import emit

DATASETS = ("lj", "wiki")


def _dynamic_cycles(graph) -> float:
    """Section VI's dynamic hot-set identification, on the ORIGINAL
    vertex order (its whole point is skipping the reordering pass)."""
    cfg = SimConfig.scaled_omega()
    result = run_pagerank(graph, num_cores=cfg.core.num_cores, chunk_size=32)
    capacity = hot_capacity_for(cfg.scratchpad_total_bytes, 9,
                                graph.num_vertices)
    hierarchy = DynamicScratchpadHierarchy(
        cfg, capacity, microcode_for_algorithm("pagerank")
    )
    out = hierarchy.replay(result.trace)
    return compute_timing(out, cfg).total_cycles


def _rows(sims):
    rows = []
    for ds in DATASETS:
        graph, _ = bench_graph(ds)
        base = sims.run("pagerank", ds, SimConfig.scaled_baseline())
        omega = sims.run("pagerank", ds, SimConfig.scaled_omega())
        locked = run_locked_cache(graph, "pagerank", dataset=ds)
        pim = run_graphpim(graph, "pagerank", dataset=ds)
        for rep in (base, omega, locked, pim):
            rows.append(
                {
                    "dataset": ds,
                    "system": rep.system,
                    "speedup": round(base.cycles / rep.cycles, 2),
                    "onchip MB": round(
                        rep.stats.onchip_traffic_bytes / 1e6, 2
                    ),
                    "dram MB": round(rep.stats.dram_bytes / 1e6, 2),
                }
            )
        rows.append(
            {
                "dataset": ds,
                "system": "dynamic-sp (no reorder)",
                "speedup": round(base.cycles / _dynamic_cycles(graph), 2),
                "onchip MB": "",
                "dram MB": "",
            }
        )
    return rows


def test_alternative_designs(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "Section IX / Table V — design-point comparison (PageRank)"
    )
    text += (
        "\npaper: locked caches keep the line-granularity traffic;"
        " PIM designs forgo on-chip locality; OMEGA beats both\n"
    )
    emit("alternatives", text)

    for ds in DATASETS:
        by_system = {
            r["system"]: r for r in rows if r["dataset"] == ds
        }
        omega = by_system["omega-scaled"]
        locked = by_system["locked-cache"]
        pim = by_system["graphpim"]
        # All three beat the baseline...
        assert omega["speedup"] > 1.0
        assert locked["speedup"] > 1.0
        assert pim["speedup"] > 1.0
        # ...but OMEGA beats both alternatives.
        assert omega["speedup"] > locked["speedup"]
        assert omega["speedup"] > pim["speedup"]
        # The paper's specific mechanism: the locked cache moves far
        # more on-chip bytes than OMEGA's word packets.
        assert locked["onchip MB"] > omega["onchip MB"] * 1.3
        # Section VI: dynamic identification approaches the static
        # mapping without preprocessing (but pays tag overhead, which
        # is why the paper chose static reordering).
        dyn = by_system["dynamic-sp (no reorder)"]
        assert dyn["speedup"] > 1.0
        assert dyn["speedup"] <= omega["speedup"] + 0.15
