"""Figure 17 — on-chip traffic analysis of PageRank.

The paper reports OMEGA reducing crossbar traffic by over 3x on
average (word-granularity scratchpad packets plus PISC offloading
replace cache-line transfers and coherence ping-pong).
"""

import statistics

from repro.bench import PAGERANK_DATASETS, format_table

from conftest import emit


def _rows(sims):
    rows = []
    for ds in PAGERANK_DATASETS:
        cmp = sims.compare("pagerank", ds)
        rows.append(
            {
                "dataset": ds,
                "baseline bytes": cmp.baseline.stats.onchip_traffic_bytes,
                "OMEGA bytes": cmp.omega.stats.onchip_traffic_bytes,
                "reduction": round(cmp.traffic_reduction, 2),
                "OMEGA word bytes": cmp.omega.stats.onchip_word_bytes,
            }
        )
    return rows


def test_fig17_onchip_traffic(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    geo = statistics.geometric_mean(max(r["reduction"], 1e-9) for r in rows)
    text = format_table(rows, "Fig 17 — on-chip traffic (PageRank)")
    text += f"\ngeomean reduction: {geo:.2f}x (paper: >3x)\n"
    emit("fig17_onchip_traffic", text)
    powerlaw = [r for r in rows if r["dataset"] not in ("rPA", "rCA")]
    geo_pl = statistics.geometric_mean(r["reduction"] for r in powerlaw)
    # Shape: at least 2x reduction on the power-law datasets.
    assert geo_pl > 2.0
    # OMEGA actually uses the word-granularity packets.
    assert all(r["OMEGA word bytes"] > 0 for r in rows)
