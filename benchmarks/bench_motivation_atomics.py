"""Section III motivation — the cost of core-executed atomic operations.

The paper estimates the overhead of atomic instructions by replacing
every atomic with a regular read/write in PageRank and comparing: "The
result reveals an overhead of up to 50%." We regenerate the experiment
by re-running the baseline with atomic serialization disabled.
"""

import dataclasses

from repro.bench import format_table
from repro.config import SimConfig

from conftest import emit

DATASETS = ("sd", "rmat", "lj", "wiki")


def _no_atomic_config() -> SimConfig:
    base = SimConfig.scaled_baseline()
    return dataclasses.replace(
        base,
        name="baseline-no-atomics",
        core=dataclasses.replace(
            base.core, atomic_stall_cycles=0, atomic_serialization=0.0
        ),
    )


def _rows(sims):
    rows = []
    for ds in DATASETS:
        with_atomics = sims.run("pagerank", ds, SimConfig.scaled_baseline())
        without = sims.run("pagerank", ds, _no_atomic_config())
        overhead = with_atomics.cycles / without.cycles - 1.0
        rows.append(
            {
                "dataset": ds,
                "cycles (atomics)": round(with_atomics.cycles),
                "cycles (plain r/w)": round(without.cycles),
                "atomic overhead %": round(100 * overhead, 1),
            }
        )
    return rows


def test_motivation_atomic_overhead(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "Section III — atomic-instruction overhead (PageRank)"
    )
    text += "\npaper: overhead of up to 50%\n"
    emit("motivation_atomics", text)
    overheads = [r["atomic overhead %"] for r in rows]
    # Shape: atomics cost a substantial fraction of runtime.
    assert max(overheads) > 20.0
    assert all(o >= 0 for o in overheads)
