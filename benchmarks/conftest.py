"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's tables or
figures. Comparisons are expensive, so caching happens at two levels:

- a session-scoped in-memory cache shares finished
  (algorithm, dataset, config) *reports* across benchmarks within one
  pytest run, and
- the persistent content-addressed trace store (:mod:`repro.store`)
  shares *traces* across processes and invocations, so a repeated
  ``pytest benchmarks/`` starts warm: only the replay stage re-runs.

The store lives in ``benchmarks/.trace_cache`` by default; point
``REPRO_CACHE_DIR`` somewhere else (e.g. a CI cache path) to relocate
it, or set ``REPRO_BENCH_NO_CACHE=1`` to disable persistence.

Every bench emits its rows both to stdout and to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be assembled
from the artifacts. Headline benches additionally append one
ledger-format entry per invocation to a machine-readable
``BENCH_<name>.json`` trajectory at the repo root (via
:func:`record`, backed by :mod:`repro.bench.record`).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional, Tuple

import pytest

from repro.config import SimConfig
from repro.core.report import Comparison, SimReport
from repro.core.system import run_system
from repro.bench.record import record_bench
from repro.bench.runner import bench_graph

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo root — where the BENCH_<name>.json trajectories live.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Persistent trace-store root shared by every benchmark process.
TRACE_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", str(pathlib.Path(__file__).parent / ".trace_cache")
)


def _bench_cache():
    """run_system ``cache`` argument for benchmark runs."""
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return False
    return TRACE_CACHE_DIR


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text, end="" if text.endswith("\n") else "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def record(name: str, metrics: Dict, context: Optional[Dict] = None) -> None:
    """Append this invocation's numbers to ``BENCH_<name>.json``."""
    path = record_bench(name, metrics, REPO_ROOT, context)
    print(f"recorded trajectory entry: {path}")


class ComparisonCache:
    """Session-wide cache of simulation runs keyed by workload+config.

    Finished reports are memoized in-process; the underlying traces
    are additionally persisted in the shared trace store, so a fresh
    pytest process skips trace generation for every workload a
    previous invocation already ran.
    """

    def __init__(self) -> None:
        self._runs: Dict[Tuple, SimReport] = {}

    def _config_key(self, cfg: SimConfig) -> Tuple:
        return (
            cfg.name,
            cfg.core.num_cores,
            cfg.l1.size_bytes,
            cfg.l2_per_core.size_bytes,
            cfg.scratchpad.size_bytes,
            cfg.use_scratchpad,
            cfg.use_pisc,
            cfg.use_source_buffer,
        )

    def run(
        self,
        algorithm: str,
        dataset: str,
        config: SimConfig,
        scale: float = 1.0,
        **kwargs,
    ) -> SimReport:
        """Run (or fetch) one system simulation."""
        from repro.algorithms.registry import ALGORITHMS

        key = (
            algorithm,
            dataset,
            scale,
            self._config_key(config),
            tuple(sorted(kwargs.items())),
        )
        if key not in self._runs:
            info = ALGORITHMS[algorithm]
            graph, _ = bench_graph(
                dataset,
                scale=scale,
                weighted=info.requires_weights,
                undirected=info.requires_undirected,
            )
            kwargs.setdefault("cache", _bench_cache())
            self._runs[key] = run_system(
                graph, algorithm, config, dataset=dataset, **kwargs
            )
        return self._runs[key]

    def compare(
        self,
        algorithm: str,
        dataset: str,
        baseline_config: Optional[SimConfig] = None,
        omega_config: Optional[SimConfig] = None,
        scale: float = 1.0,
        **kwargs,
    ) -> Comparison:
        """Run (or fetch) a baseline-vs-OMEGA comparison."""
        base = self.run(
            algorithm, dataset, baseline_config or SimConfig.scaled_baseline(),
            scale=scale, **kwargs,
        )
        omega = self.run(
            algorithm, dataset, omega_config or SimConfig.scaled_omega(),
            scale=scale, **kwargs,
        )
        return Comparison(baseline=base, omega=omega)


_CACHE = ComparisonCache()


@pytest.fixture(scope="session")
def sims() -> ComparisonCache:
    """The shared simulation cache."""
    return _CACHE
