"""Out-of-core streaming on a large-graph workload: RSS and throughput.

The streaming pipeline exists for traces that dwarf memory, and this
bench gates its two claims on a multi-million-event workload (PageRank
on an RMAT-14 graph, ~3.5M events / ~73 MiB of trace columns):

1. **Bounded residency.** A streamed ``run_system`` must hold its
   incremental peak RSS (above the graph-only baseline) at or below
   50% of the whole-trace resident size — where in-core replay pays
   the full trace (plus its interleaved copy), streaming pays one
   segment at a time.
2. **Throughput.** Bounded memory may not cost the pipeline: streamed
   end-to-end events/sec must stay within 0.8x of in-core.

Counters are asserted bit-identical between the two runs (the parity
contract of ``tests/property/test_streaming_parity.py``, here on a
workload two orders of magnitude larger). Each measurement runs in a
fresh ``spawn`` process (see ``_mem.py``) because peak RSS is a
per-process high-water mark. The CI ``streaming-smoke`` job runs this
file and uploads the measured numbers as a JSON artifact.
"""

import json
import pathlib
import time

from repro.bench import format_table

from conftest import emit
from _mem import peak_rss_bytes, run_measured

#: Workload: RMAT scale/edge-factor, PageRank iterations, cores.
SCALE = 14
EDGE_FACTOR = 16
MAX_ITERS = 4
NUM_CORES = 8
SEED = 1

#: Streaming segment size under test (the library default).
SEGMENT_EVENTS = 262144

#: Acceptance bars (docs/performance.md).
MAX_RSS_FRACTION = 0.5
MIN_THROUGHPUT_X = 0.8

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _run_workload(segment_events):
    """Worker: generate + replay the workload; report RSS-delta & rate.

    Runs in a fresh spawn child. The RSS baseline snapshot lands after
    imports and graph construction, so the reported delta isolates the
    trace pipeline (generation, storage, replay) from the fixed
    interpreter + graph footprint shared by both variants.
    """
    from repro.config import SimConfig
    from repro.core.system import run_system
    from repro.graph import rmat_graph

    graph = rmat_graph(SCALE, edge_factor=EDGE_FACTOR, seed=SEED)
    config = SimConfig.scaled_baseline(num_cores=NUM_CORES)
    baseline_rss = peak_rss_bytes()
    start = time.perf_counter()
    report = run_system(
        graph, "pagerank", config, dataset=f"rmat{SCALE}",
        backend="baseline", cache=False, segment_events=segment_events,
        max_iters=MAX_ITERS,
    )
    wall = time.perf_counter() - start
    return {
        "events": report.trace_events,
        "trace_bytes": report.trace_bytes,
        "num_segments": report.num_segments,
        "wall_seconds": wall,
        "events_per_sec": report.trace_events / wall,
        "baseline_rss": baseline_rss,
        "stats": report.stats.as_dict(),
        "cycles": report.timing.total_cycles,
    }


def test_streaming_bounds_rss_at_speed(benchmark):
    (incore, incore_rss), (streamed, streamed_rss) = benchmark.pedantic(
        lambda: (
            run_measured(_run_workload, None),
            run_measured(_run_workload, SEGMENT_EVENTS),
        ),
        rounds=1, iterations=1,
    )
    # Same workload, same counters — streaming must be invisible in
    # the simulation before its footprint is worth discussing.
    assert streamed["stats"] == incore["stats"]
    assert streamed["cycles"] == incore["cycles"]
    assert streamed["num_segments"] > 1
    assert incore["num_segments"] == 1

    incore_delta = incore_rss - incore["baseline_rss"]
    streamed_delta = streamed_rss - streamed["baseline_rss"]
    trace_bytes = incore["trace_bytes"]
    # "Whole-trace resident size": what the in-core pipeline actually
    # held beyond the fixed baseline, floored by the column footprint
    # itself in case the allocator hid some of it.
    whole_trace_resident = max(incore_delta, trace_bytes)
    rss_fraction = streamed_delta / whole_trace_resident
    throughput_x = streamed["events_per_sec"] / incore["events_per_sec"]

    rows = [
        {
            "pipeline": "in-core",
            "events": incore["events"],
            "segments": incore["num_segments"],
            "wall s": round(incore["wall_seconds"], 2),
            "Mev/s": round(incore["events_per_sec"] / 1e6, 2),
            "peak RSS delta MiB": round(incore_delta / 2**20, 1),
        },
        {
            "pipeline": f"streamed ({SEGMENT_EVENTS} ev/seg)",
            "events": streamed["events"],
            "segments": streamed["num_segments"],
            "wall s": round(streamed["wall_seconds"], 2),
            "Mev/s": round(streamed["events_per_sec"] / 1e6, 2),
            "peak RSS delta MiB": round(streamed_delta / 2**20, 1),
        },
    ]
    text = format_table(
        rows,
        f"Out-of-core streaming — PageRank/RMAT-{SCALE}"
        f" ({incore['events']} events, trace"
        f" {round(trace_bytes / 2**20, 1)} MiB)",
    )
    text += (
        f"\nstreamed peak RSS delta = {rss_fraction:.0%} of whole-trace"
        f" resident size (bar: <={MAX_RSS_FRACTION:.0%})\n"
        f"streamed throughput = {throughput_x:.2f}x in-core"
        f" (bar: >={MIN_THROUGHPUT_X:.1f}x)\n"
        "counters bit-identical between the two pipelines.\n"
    )
    emit("large_graphs", text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "large_graphs.json").write_text(json.dumps({
        "schema": "omega-repro/streaming-bench/v1",
        "workload": {
            "scale": SCALE, "edge_factor": EDGE_FACTOR,
            "max_iters": MAX_ITERS, "num_cores": NUM_CORES,
            "segment_events": SEGMENT_EVENTS,
        },
        "events": incore["events"],
        "trace_bytes": trace_bytes,
        "incore": {
            "wall_seconds": incore["wall_seconds"],
            "events_per_sec": incore["events_per_sec"],
            "peak_rss_delta_bytes": incore_delta,
        },
        "streamed": {
            "wall_seconds": streamed["wall_seconds"],
            "events_per_sec": streamed["events_per_sec"],
            "peak_rss_delta_bytes": streamed_delta,
            "num_segments": streamed["num_segments"],
        },
        "rss_fraction": rss_fraction,
        "throughput_x": throughput_x,
    }, indent=2))

    assert rss_fraction <= MAX_RSS_FRACTION, (
        f"streamed run held {rss_fraction:.0%} of the whole-trace"
        f" resident size (delta {streamed_delta / 2**20:.1f} MiB vs"
        f" {whole_trace_resident / 2**20:.1f} MiB)"
    )
    assert throughput_x >= MIN_THROUGHPUT_X, (
        f"streamed throughput only {throughput_x:.2f}x of in-core"
    )
