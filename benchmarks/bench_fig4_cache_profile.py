"""Figure 4 — cache profiling on the baseline CMP.

(a) Last-level-cache hit rates for graph workloads (paper: below 50%
    for power-law datasets on a 20 MB Xeon LLC).
(b) Fraction of vtxProp accesses that target the 20% most-connected
    vertices (paper: consistently over 75% for power-law graphs).
"""

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.algorithms.registry import run_algorithm
from repro.core.characterization import access_fraction_to_top

from conftest import emit

WORKLOADS = [
    ("pagerank", "lj"), ("pagerank", "wiki"), ("pagerank", "orkut"),
    ("pagerank", "ic"), ("bfs", "lj"), ("sssp", "lj"),
    ("pagerank", "rCA"),
]


def _hit_rate_rows(sims):
    rows = []
    for alg, ds in WORKLOADS:
        rep = sims.run(alg, ds, SimConfig.scaled_baseline())
        rows.append(
            {
                "workload": f"{alg}/{ds}",
                "LLC hit rate": round(rep.stats.l2_hit_rate, 3),
                "L1 hit rate": round(
                    rep.stats.l1_hits / max(rep.stats.l1_accesses, 1), 3
                ),
            }
        )
    return rows


def _top20_rows():
    from repro.algorithms.registry import ALGORITHMS

    rows = []
    for alg, ds in WORKLOADS:
        info = ALGORITHMS[alg]
        graph, _ = bench_graph(
            ds, weighted=info.requires_weights,
            undirected=info.requires_undirected,
        )
        res = run_algorithm(alg, graph, num_cores=16, chunk_size=32)
        rows.append(
            {
                "workload": f"{alg}/{ds}",
                "% vtxProp accesses to top 20%": round(
                    access_fraction_to_top(res.trace, graph), 1
                ),
            }
        )
    return rows


def test_fig4a_llc_hit_rates(benchmark, sims):
    rows = benchmark.pedantic(lambda: _hit_rate_rows(sims), rounds=1,
                              iterations=1)
    emit("fig4a_llc_hit_rates",
         format_table(rows, "Fig 4a — baseline cache hit rates"))
    # Shape: power-law workloads suffer low LLC hit rates.
    powerlaw = [r for r in rows if "rCA" not in r["workload"]]
    assert sum(r["LLC hit rate"] for r in powerlaw) / len(powerlaw) < 0.8


def test_fig4b_top20_access_fraction(benchmark, sims):
    rows = benchmark.pedantic(_top20_rows, rounds=1, iterations=1)
    emit("fig4b_top20_fraction",
         format_table(rows, "Fig 4b — vtxProp accesses to top-20% vertices"))
    by_workload = {r["workload"]: r["% vtxProp accesses to top 20%"] for r in rows}
    # Power-law graphs concentrate accesses; road control does not.
    for wl, frac in by_workload.items():
        if "rCA" in wl:
            assert frac < 45.0
        else:
            assert frac > 50.0
