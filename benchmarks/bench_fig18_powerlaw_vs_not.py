"""Figure 18 — power-law (lj) vs non-power-law (USA) comparison.

The paper runs PageRank and BFS on both a large power-law graph (lj)
and a large road network (USA): OMEGA's benefit on USA is limited to
~1.15x because only ~20% of its vtxProp accesses hit the top-20%
most-connected vertices, versus 77% for lj.
"""

from repro.bench import bench_graph, format_table
from repro.algorithms.registry import run_algorithm
from repro.core.characterization import access_fraction_to_top

from conftest import emit


def _rows(sims):
    rows = []
    for alg in ("pagerank", "bfs"):
        for ds in ("lj", "USA"):
            cmp = sims.compare(alg, ds)
            graph, _ = bench_graph(ds)
            res = run_algorithm(alg, graph, num_cores=16, chunk_size=32)
            rows.append(
                {
                    "algorithm": alg,
                    "dataset": ds,
                    "speedup": round(cmp.speedup, 2),
                    "% accesses to top 20%": round(
                        access_fraction_to_top(res.trace, graph), 1
                    ),
                }
            )
    return rows


def test_fig18_powerlaw_vs_road(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(rows, "Fig 18 — power-law (lj) vs road (USA)")
    text += "\npaper: USA limited to ~1.15x; lj accesses 77% hot vs ~20% for USA\n"
    emit("fig18_powerlaw_vs_not", text)
    by_key = {(r["algorithm"], r["dataset"]): r for r in rows}
    for alg in ("pagerank", "bfs"):
        lj = by_key[(alg, "lj")]
        usa = by_key[(alg, "USA")]
        # The power-law graph gains more and concentrates accesses more.
        assert lj["speedup"] > usa["speedup"]
        assert lj["% accesses to top 20%"] > usa["% accesses to top 20%"] + 20
    # USA's benefit is limited (the paper's point), bounded near 1x.
    assert by_key[("pagerank", "USA")]["speedup"] < 1.4
