"""Trace-store perf: cold-vs-warm run_system and serial-vs-parallel sweep.

Measures the two wall-clock claims of docs/performance.md on the
headline workload (PageRank on the lj stand-in, OMEGA backend):

1. **Trace acquisition.** A warm store hit replaces the whole cold
   acquisition stage — reorder + algorithm execution + persisting the
   new entry — with one archive load. This is the stage the store
   exists to remove and the asserted bar is >=5x.
2. **End to end.** Both runs still pay the replay + timing/energy
   stages, which the store deliberately does not cache (they depend on
   the backend configuration). Since batch-vectorized replay is the
   dominant remaining cost on this 1-iteration PageRank workload, the
   end-to-end warm win is the acquisition win diluted by the replay
   floor; the table records both so the decomposition stays visible.
3. **Parallel sweep.** A multi-cell grid through
   ``run_sweep(workers=4)`` vs the serial executor, sharing semantics
   verified row-by-row. Process parallelism needs processors: the >=2x
   bar is asserted only when the host has >=4 CPUs (a 1-core CI
   container can only measure the executor's overhead).

Private throwaway store directories are used throughout — never the
shared benchmark store — so this file stays meaningful on a warm
harness.
"""

import os
import shutil
import tempfile
import time

from repro.bench import bench_graph, build_grid, format_table, run_sweep
from repro.config import SimConfig
from repro.core.system import run_system
from repro.obs import SpanTracer, use_tracer
from repro.store import TraceStore

from conftest import emit, record

ROUNDS = 3
SWEEP_WORKERS = 4

#: Spans making up the cold acquisition stage, and the warm one.
COLD_STAGE = ("reorder", "trace_generation", "trace_store.store")
WARM_STAGE = ("trace_store.load",)


def _timed_run(graph, cfg, store, stage_names):
    tracer = SpanTracer()
    start = time.perf_counter()
    with use_tracer(tracer):
        report = run_system(graph, "pagerank", cfg, dataset="lj",
                            cache=store)
    total = time.perf_counter() - start
    stage = sum(
        r.dur_us for r in tracer.records if r.name in stage_names
    ) / 1e6
    return total, stage, report


def _measure_run_system():
    graph, _ = bench_graph("lj")
    cfg = SimConfig.scaled_omega()
    root = tempfile.mkdtemp(prefix="trace-cache-bench-")
    try:
        store = TraceStore(root)
        best_cold = best_cold_stage = float("inf")
        for _ in range(ROUNDS):
            store.clear()
            total, stage, cold = _timed_run(graph, cfg, store, COLD_STAGE)
            best_cold = min(best_cold, total)
            best_cold_stage = min(best_cold_stage, stage)
        best_warm = best_warm_stage = float("inf")
        for _ in range(ROUNDS):
            total, stage, warm = _timed_run(graph, cfg, store, WARM_STAGE)
            best_warm = min(best_warm, total)
            best_warm_stage = min(best_warm_stage, stage)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    assert cold.trace_cache["hit"] is False
    assert warm.trace_cache["hit"] is True
    assert warm.stats.as_dict() == cold.stats.as_dict()
    assert warm.cycles == cold.cycles
    return (best_cold, best_warm), (best_cold_stage, best_warm_stage)


def _measure_sweep():
    grid = build_grid(["sd", "lj"], ["pagerank", "bfs"],
                      ["baseline", "omega"], scale=0.5)
    root = tempfile.mkdtemp(prefix="trace-cache-bench-sweep-")
    try:
        start = time.perf_counter()
        serial_rows = run_sweep(grid, workers=1, cache=root + "/serial")
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        par_rows = run_sweep(grid, workers=SWEEP_WORKERS,
                             cache=root + "/parallel")
        par_s = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)

    host = ("replay_seconds", "run_seconds", "trace_cache")
    for s, p in zip(serial_rows, par_rows):
        s = {k: v for k, v in s.items() if k not in host}
        p = {k: v for k, v in p.items() if k not in host}
        assert s == p, (s, p)
    return serial_s, par_s, len(grid)


def test_trace_cache_speedup(benchmark):
    (ends, stages), (serial_s, par_s, cells) = benchmark.pedantic(
        lambda: (_measure_run_system(), _measure_sweep()),
        rounds=1, iterations=1,
    )
    cold_s, warm_s = ends
    cold_stage, warm_stage = stages
    stage_x = cold_stage / warm_stage
    end_x = cold_s / warm_s
    par_x = serial_s / par_s
    cpus = os.cpu_count() or 1
    rows = [
        {
            "experiment": "trace acquisition (PageRank/lj, omega)",
            "baseline s": round(cold_stage, 3),
            "optimized s": round(warm_stage, 3),
            "speedup": f"{stage_x:.1f}x",
            "note": "reorder+generate+persist vs store load",
        },
        {
            "experiment": "run_system end-to-end",
            "baseline s": round(cold_s, 3),
            "optimized s": round(warm_s, 3),
            "speedup": f"{end_x:.2f}x",
            "note": "replay floor paid by both runs",
        },
        {
            "experiment": f"sweep, {cells} cells at scale 0.5",
            "baseline s": round(serial_s, 3),
            "optimized s": round(par_s, 3),
            "speedup": f"{par_x:.2f}x",
            "note": f"serial vs {SWEEP_WORKERS} workers on {cpus} cpu(s)",
        },
    ]
    text = format_table(
        rows, "Trace store + parallel sweep — wall-clock wins"
    )
    text += (
        "\nwarm counters verified bit-identical to cold; sweep rows"
        " identical modulo host timings.\nA warm hit removes the whole"
        " acquisition stage; end-to-end gain is that win diluted by\n"
        "the (uncached, backend-dependent) replay stage.\n"
    )
    emit("trace_cache", text)
    record(
        "trace_cache",
        {
            "acquisition_speedup": round(stage_x, 3),
            "end_to_end_speedup": round(end_x, 3),
            "sweep_speedup": round(par_x, 3),
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
        },
        context={
            "workload": "pagerank/lj (omega)",
            "sweep_cells": cells,
            "sweep_workers": SWEEP_WORKERS,
            "cpus": cpus,
            "rounds": ROUNDS,
        },
    )

    # Acceptance bars: the cached stage must win >=5x and the warm run
    # must show an honest end-to-end improvement. The parallel-sweep
    # >=2x bar only binds where there are processors to parallelize
    # over; below that the row equality above is the meaningful check.
    assert stage_x >= 5.0, f"acquisition stage only {stage_x:.2f}x faster"
    assert end_x >= 1.3, f"warm end-to-end only {end_x:.2f}x faster"
    if cpus >= SWEEP_WORKERS:
        assert par_x >= 2.0, f"{SWEEP_WORKERS}-worker sweep only {par_x:.2f}x"
