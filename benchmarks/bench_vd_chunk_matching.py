"""Section V-D — reconfigurable scratchpad mapping (chunk matching).

The paper's Fig 12 scenario: when the scratchpad-mapping chunk size
differs from the OpenMP schedule's chunk size, sequential vtxProp
scans hit *remote* scratchpads; matching the chunks makes them local.
We sweep matched and mismatched configurations and report the remote
access share and the speedup cost of the mismatch.
"""

from repro.bench import format_table
from repro.config import SimConfig

from conftest import emit

CASES = [
    ("matched (32/32)", 32, 32),
    ("mismatched (32/1)", 32, 1),
    ("mismatched (32/8)", 32, 8),
]


def _rows(sims):
    rows = []
    for label, omp_chunk, sp_chunk in CASES:
        cmp = sims.compare(
            "pagerank", "lj", chunk_size=omp_chunk, sp_chunk_size=sp_chunk
        )
        stats = cmp.omega.stats
        rows.append(
            {
                "configuration": label,
                "plain remote SP share": round(stats.sp_plain_remote_share, 3),
                "speedup": round(cmp.speedup, 2),
            }
        )
    return rows


def test_vd_chunk_matching(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "Section V-D — scratchpad-mapping chunk matching (PageRank, lj)"
    )
    text += "\npaper Fig 12: mismatched chunks turn local scans remote\n"
    emit("vd_chunk_matching", text)
    by_cfg = {r["configuration"]: r for r in rows}
    matched = by_cfg["matched (32/32)"]
    # Matched chunks keep sequential vtxProp scans local (Fig 12).
    assert matched["plain remote SP share"] < 0.2
    for label in ("mismatched (32/1)", "mismatched (32/8)"):
        assert (
            by_cfg[label]["plain remote SP share"]
            > matched["plain remote SP share"] + 0.3
        )
    assert matched["speedup"] >= max(
        by_cfg["mismatched (32/1)"]["speedup"],
        by_cfg["mismatched (32/8)"]["speedup"],
    ) - 0.05
