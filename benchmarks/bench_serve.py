"""`repro serve` perf: cold vs warm latency, coalescing amplification.

Drives a real ephemeral-port server (production runner, private
throwaway trace store) with the smallest Table I workload and measures
the three serving claims of docs/serving.md:

1. **Warm serving.** A repeat of a completed spec answers from the
   bounded manifest cache — no dataset load, no trace, no replay. The
   warm path is pure request parsing + one dict lookup, so its latency
   is bounded by HTTP round-trip cost, orders of magnitude under cold.
2. **Coalescing.** N concurrent identical requests in flight at once
   cost exactly one computation; amplification = clients served per
   computation.
3. **Backpressure sanity.** The queue bound holds under the concurrent
   burst (no request was dropped silently — every response is a
   terminal 200).

Metrics land in ``BENCH_serve.json`` through the standard
:mod:`repro.bench.record` trajectory machinery.
"""

import json
import shutil
import tempfile
import threading
import time
import urllib.request

from repro.core.context import RunContext
from repro.serve import JobManager, make_server, make_system_runner
from repro.store import TraceStore

from conftest import emit, record

SPEC = {"dataset": "sd", "algorithm": "pagerank", "scale": 0.5,
        "num_cores": 4}
BURST = 6


def _post(base, body, timeout=300):
    req = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as r:
        return r.status, json.loads(r.read())


def _measure():
    root = tempfile.mkdtemp(prefix="serve-bench-")
    manager = JobManager(
        make_system_runner(RunContext(store=TraceStore(root))),
        workers=2, queue_depth=8,
    )
    server = make_server(port=0, manager=manager)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        # Cold: full dataset-load + trace + replay behind one request.
        start = time.perf_counter()
        status, cold = _post(base, {**SPEC, "wait": True})
        cold_s = time.perf_counter() - start
        assert status == 200 and cold["status"] == "done"

        # Warm: answered from the manifest cache.
        warm_s = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            status, warm = _post(base, SPEC)
            warm_s = min(warm_s, time.perf_counter() - start)
            assert status == 200 and warm["state"] == "warm"
        assert warm["manifest"] == cold["manifest"]

        # Coalescing: a concurrent burst of one *new* spec (different
        # chunk size -> different key, so the warm cache cannot answer).
        burst_spec = {**SPEC, "chunk_size": 16, "wait": True}
        results = []

        def fire():
            results.append(_post(base, burst_spec))

        threads = [threading.Thread(target=fire) for _ in range(BURST)]
        before = manager.stats()["computed"]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        computed = manager.stats()["computed"] - before
        assert len(results) == BURST
        assert all(s == 200 and d["status"] == "done" for s, d in results)
        manifests = [d["manifest"] for _, d in results]
        assert all(m == manifests[0] for m in manifests)
        amplification = BURST / max(computed, 1)
        return cold_s, warm_s, computed, amplification
    finally:
        server.shutdown()
        server.server_close()
        shutil.rmtree(root, ignore_errors=True)


def test_serve_latency(benchmark):
    cold_s, warm_s, computed, amplification = benchmark.pedantic(
        _measure, rounds=1, iterations=1,
    )
    warm_x = cold_s / warm_s
    text = (
        "repro serve — cold vs warm vs coalesced "
        f"(pagerank/{SPEC['dataset']} scale {SPEC['scale']})\n"
        f"  cold request (compute):      {cold_s:8.3f} s\n"
        f"  warm request (cache):        {warm_s:8.5f} s  "
        f"({warm_x:.0f}x faster)\n"
        f"  burst of {BURST} concurrent identical requests ->"
        f" {computed} computation(s): {amplification:.1f} clients/compute\n"
        "all burst responses 200 with identical manifests;"
        " warm manifest identical to cold.\n"
    )
    emit("serve", text)
    record(
        "serve",
        {
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 6),
            "warm_speedup": round(warm_x, 1),
            "burst_computations": computed,
            "coalesced_amplification": round(amplification, 2),
        },
        context={
            "workload": f"pagerank/{SPEC['dataset']}"
                        f" (scale {SPEC['scale']}, omega)",
            "burst": BURST,
            "workers": 2,
        },
    )
    # The warm path must beat cold by a wide margin even on a loaded
    # CI host; 5x is far under the typical 100x+.
    assert warm_x >= 5
    # The burst must coalesce: strictly fewer computations than clients.
    assert computed < BURST
