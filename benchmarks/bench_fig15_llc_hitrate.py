"""Figure 15 — last-level storage hit rate for PageRank.

The paper compares the baseline's L2 hit rate against OMEGA's combined
partitioned storage (half L2 + scratchpads): 44% vs over 75% on
average. Scratchpad hits count as last-level hits on the OMEGA side.
"""

from repro.bench import PAGERANK_DATASETS, format_table

from conftest import emit


def _rows(sims):
    rows = []
    for ds in PAGERANK_DATASETS:
        cmp = sims.compare("pagerank", ds)
        rows.append(
            {
                "dataset": ds,
                "baseline LLC hit": round(cmp.baseline.stats.l2_hit_rate, 3),
                "OMEGA last-level hit": round(
                    cmp.omega.stats.last_level_hit_rate, 3
                ),
            }
        )
    return rows


def test_fig15_last_level_hit_rate(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    base_mean = sum(r["baseline LLC hit"] for r in rows) / len(rows)
    omega_mean = sum(r["OMEGA last-level hit"] for r in rows) / len(rows)
    text = format_table(rows, "Fig 15 — last-level storage hit rate (PageRank)")
    text += (
        f"\nmean: baseline {base_mean:.3f} vs OMEGA {omega_mean:.3f}"
        f" (paper: 0.44 vs >0.75)\n"
    )
    emit("fig15_llc_hitrate", text)
    assert omega_mean > base_mean
    assert omega_mean > 0.7
    for r in rows:
        assert r["OMEGA last-level hit"] >= r["baseline LLC hit"] - 0.02
