"""Replay-engine throughput: events/second through the layered engine.

The screened batch kernel (``CacheSystem._replay_kernel``: vectorized
guaranteed-hit screening + a residual loop with local counters)
replaced the per-event cache stage. This bench measures replay
throughput on the paper's headline workload (PageRank on the lj
stand-in) for the baseline and OMEGA backends and compares against two
references:

- the **pre-refactor** numbers recorded from the seed tree's scalar
  loop on this workload (events decoded, classified, and routed one at
  a time), and
- the engine's own scalar cache oracle (``force_scalar_cache``, the
  ``REPRO_SCALAR_CACHE=1`` path), which still pays per-event cache
  simulation but benefits from the vectorized pre-pass/routing — an
  in-process lower bound on the kernel's win.

The refactor's acceptance bar is >=2.5x over the pre-refactor loop on
both backends.
"""

import time

from repro.bench import bench_graph, format_table
from repro.config import SimConfig
from repro.algorithms.registry import run_algorithm
from repro.core.offload import microcode_for_algorithm
from repro.graph.reorder import reorder_nth_element
from repro.memsim.engine import BaselineBackend, OmegaBackend
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for

from conftest import emit, record

#: Seed-tree replay throughput on PageRank/lj (events/second), measured
#: on the same host with the pre-refactor per-event loop at commit
#: 296ad4d (best of 3).
SEED_EVENTS_PER_SEC = {"baseline": 234_000, "omega": 319_748}

ROUNDS = 3


def _best_seconds(make_hierarchy, trace, rounds=ROUNDS, scalar=False):
    best = float("inf")
    for _ in range(rounds):
        hierarchy = make_hierarchy()
        if scalar:
            hierarchy.force_scalar_cache = True
        start = time.perf_counter()
        hierarchy.replay(trace)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    graph, _ = bench_graph("lj")
    bcfg = SimConfig.scaled_baseline()
    ocfg = SimConfig.scaled_omega()
    cores = bcfg.core.num_cores

    plain = run_algorithm("pagerank", graph, num_cores=cores,
                          chunk_size=32, trace=True)
    wgraph, _ = reorder_nth_element(graph, key="in")
    reord = run_algorithm("pagerank", wgraph, num_cores=cores,
                          chunk_size=32, trace=True)
    microcode = microcode_for_algorithm("pagerank")
    hot = hot_capacity_for(
        ocfg.scratchpad_total_bytes,
        reord.engine.vtxprop_bytes_per_vertex(),
        wgraph.num_vertices,
    )
    mapping = ScratchpadMapping(cores, hot, chunk_size=32)
    ranges_plain = [(p.start_addr, p.region.end)
                    for p in plain.engine.vtx_props]
    ranges_reord = [(p.start_addr, p.region.end)
                    for p in reord.engine.vtx_props]

    cases = {
        "baseline": (
            lambda: BaselineBackend(bcfg, dram_random_ranges=ranges_plain),
            plain.trace,
        ),
        "omega": (
            lambda: OmegaBackend(ocfg, mapping, microcode,
                                 dram_random_ranges=ranges_reord),
            reord.trace,
        ),
    }
    rows = []
    speedups = {}
    for name, (make, trace) in cases.items():
        make(), make().replay(trace)  # warm-up
        batch = _best_seconds(make, trace)
        scalar = _best_seconds(make, trace, scalar=True)
        events = trace.num_events
        after = events / batch
        before = SEED_EVENTS_PER_SEC[name]
        speedups[name] = after / before
        rows.append(
            {
                "backend": name,
                "events": events,
                "before ev/s": f"{before:,.0f}",
                "after ev/s": f"{after:,.0f}",
                "speedup": round(after / before, 2),
                "scalar-oracle ev/s": f"{events / scalar:,.0f}",
                "kernel/oracle": round(scalar / batch, 2),
            }
        )
    return rows, speedups


def test_replay_throughput(benchmark):
    rows, speedups = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_table(
        rows, "Replay throughput — PageRank/lj, batch engine vs seed loop"
    )
    text += (
        "\nbefore = pre-refactor per-event loop (recorded at seed commit"
        " 296ad4d); after = screened batch kernel;\nscalar-oracle = the"
        " REPRO_SCALAR_CACHE=1 reference path, which already benefits"
        " from vectorized routing\n"
    )
    emit("replay_throughput", text)
    record(
        "replay_throughput",
        {
            "events_per_sec": {
                name: round(x * SEED_EVENTS_PER_SEC[name], 1)
                for name, x in speedups.items()
            },
            "speedup_vs_seed": {k: round(v, 3) for k, v in speedups.items()},
        },
        context={
            "workload": "pagerank/lj",
            "seed_events_per_sec": SEED_EVENTS_PER_SEC,
            "rounds": ROUNDS,
        },
    )

    # The refactor's acceptance bar: >=2.5x on both headline backends
    # over the pre-refactor loop. The recorded results file holds the
    # representative numbers.
    assert speedups["baseline"] > 2.5, speedups
    assert speedups["omega"] > 2.5, speedups
