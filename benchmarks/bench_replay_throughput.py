"""Replay-engine throughput: events/second through the layered engine.

The screened batch kernel (``CacheSystem._replay_kernel``: generational
fixpoint screening + grouped residual batching + a residual loop with
local counters) replaced the per-event cache stage. This bench measures
replay throughput on the paper's headline workload (PageRank on the lj
stand-in) for the baseline and OMEGA backends and compares against two
references:

- the **pre-refactor** throughput of the seed tree's scalar loop on
  this workload (events decoded, classified, and routed one at a
  time), read from the first entry of the ``BENCH_replay_throughput``
  trajectory (the built-in constants only seed a fresh ledger), and
- the engine's own scalar cache oracle (``force_scalar_cache``, the
  ``REPRO_SCALAR_CACHE=1`` path), which still pays per-event cache
  simulation but benefits from the vectorized pre-pass/routing — an
  in-process lower bound on the kernel's win.

Host normalization: raw events/second swings double-digit percentages
between runs of this suite on shared hardware, which made a fixed
"after / seed-constant" gate flaky. The oracle is measured *in the
same run* as the kernel, so the kernel/oracle ratio is host-stable;
multiplying it by the anchor ratio (oracle throughput recorded on the
same host and commit as the seed constants) recovers a seed-relative
speedup that does not move with machine load:

    normalized = (after / oracle_now) * (anchor_oracle / seed)

The acceptance bar is >=5x normalized on OMEGA and >=2.5x normalized
on the baseline. The bars differ because they measure different
things: the baseline's residual is essentially its true L1-miss set
(~42% of cache events on this workload must walk the stateful
L2/DRAM/coherence path one at a time), so a 5x end-to-end win is
structurally out of reach there — see docs/performance.md for the
arithmetic — while OMEGA's scratchpad routing shrinks the cache-routed
set enough for the screened kernel to clear 5x.
"""

import time

from repro.bench import bench_graph, format_table
from repro.bench.record import bench_baseline_context
from repro.config import SimConfig
from repro.algorithms.registry import run_algorithm
from repro.core.offload import microcode_for_algorithm
from repro.graph.reorder import reorder_nth_element
from repro.memsim.engine import BaselineBackend, OmegaBackend
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.scratchpad import hot_capacity_for

from conftest import REPO_ROOT, emit, record

#: Fallback seed-tree replay throughput on PageRank/lj (events/second):
#: the pre-refactor per-event loop at commit 296ad4d, best of 3. Used
#: only when the ``BENCH_replay_throughput`` trajectory is empty; an
#: existing ledger's first entry is authoritative.
SEED_EVENTS_PER_SEC = {"baseline": 234_000, "omega": 319_748}

#: Scalar-oracle throughput measured on the same host (and at the same
#: time) as the seed constants above. The anchor ties the in-run
#: kernel/oracle ratio back to the seed loop: on the seed host, the
#: oracle ran at these rates while the seed loop ran at
#: SEED_EVENTS_PER_SEC.
ANCHOR_ORACLE_EVENTS_PER_SEC = {"baseline": 457_030, "omega": 904_463}

#: Normalized-speedup acceptance bars (see module docstring for why
#: they differ).
SPEEDUP_BARS = {"baseline": 2.5, "omega": 5.0}

ROUNDS = 3


def _seed_floor():
    """The pre-refactor reference, from the ledger when it has one."""
    recorded = bench_baseline_context(
        "replay_throughput", REPO_ROOT, "seed_events_per_sec"
    )
    if isinstance(recorded, dict) and all(
        k in recorded for k in SEED_EVENTS_PER_SEC
    ):
        return {k: float(recorded[k]) for k in SEED_EVENTS_PER_SEC}
    return dict(SEED_EVENTS_PER_SEC)


def _best_seconds(make_hierarchy, trace, rounds=ROUNDS, scalar=False):
    best = float("inf")
    for _ in range(rounds):
        hierarchy = make_hierarchy()
        if scalar:
            hierarchy.force_scalar_cache = True
        start = time.perf_counter()
        hierarchy.replay(trace)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    graph, _ = bench_graph("lj")
    bcfg = SimConfig.scaled_baseline()
    ocfg = SimConfig.scaled_omega()
    cores = bcfg.core.num_cores
    seed = _seed_floor()

    plain = run_algorithm("pagerank", graph, num_cores=cores,
                          chunk_size=32, trace=True)
    wgraph, _ = reorder_nth_element(graph, key="in")
    reord = run_algorithm("pagerank", wgraph, num_cores=cores,
                          chunk_size=32, trace=True)
    microcode = microcode_for_algorithm("pagerank")
    hot = hot_capacity_for(
        ocfg.scratchpad_total_bytes,
        reord.engine.vtxprop_bytes_per_vertex(),
        wgraph.num_vertices,
    )
    mapping = ScratchpadMapping(cores, hot, chunk_size=32)
    ranges_plain = [(p.start_addr, p.region.end)
                    for p in plain.engine.vtx_props]
    ranges_reord = [(p.start_addr, p.region.end)
                    for p in reord.engine.vtx_props]

    cases = {
        "baseline": (
            lambda: BaselineBackend(bcfg, dram_random_ranges=ranges_plain),
            plain.trace,
        ),
        "omega": (
            lambda: OmegaBackend(ocfg, mapping, microcode,
                                 dram_random_ranges=ranges_reord),
            reord.trace,
        ),
    }
    rows = []
    results = {}
    for name, (make, trace) in cases.items():
        make(), make().replay(trace)  # warm-up
        batch = _best_seconds(make, trace)
        scalar = _best_seconds(make, trace, scalar=True)
        events = trace.num_events
        after = events / batch
        oracle = events / scalar
        raw = after / seed[name]
        normalized = (
            (after / oracle) * (ANCHOR_ORACLE_EVENTS_PER_SEC[name] / seed[name])
        )
        results[name] = {
            "events_per_sec": after,
            "oracle_events_per_sec": oracle,
            "speedup_raw": raw,
            "speedup_normalized": normalized,
        }
        rows.append(
            {
                "backend": name,
                "events": events,
                "seed ev/s": f"{seed[name]:,.0f}",
                "after ev/s": f"{after:,.0f}",
                "oracle ev/s": f"{oracle:,.0f}",
                "kernel/oracle": round(after / oracle, 2),
                "speedup raw": round(raw, 2),
                "speedup norm": round(normalized, 2),
                "bar": SPEEDUP_BARS[name],
            }
        )
    return rows, results, seed


def test_replay_throughput(benchmark):
    rows, results, seed = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_table(
        rows, "Replay throughput — PageRank/lj, batch engine vs seed loop"
    )
    text += (
        "\nseed = pre-refactor per-event loop (ledger floor; constants"
        " recorded at seed commit 296ad4d); after = screened batch"
        " kernel;\noracle = the REPRO_SCALAR_CACHE=1 reference path"
        " measured in the same run;\nspeedup norm = (after/oracle) *"
        " (anchor oracle/seed) — host-load-invariant (the gated"
        " metric)\n"
    )
    emit("replay_throughput", text)
    record(
        "replay_throughput",
        {
            "events_per_sec": {
                name: round(r["events_per_sec"], 1)
                for name, r in results.items()
            },
            "scalar_oracle_events_per_sec": {
                name: round(r["oracle_events_per_sec"], 1)
                for name, r in results.items()
            },
            "speedup_vs_seed": {
                name: round(r["speedup_raw"], 3)
                for name, r in results.items()
            },
            "speedup_normalized": {
                name: round(r["speedup_normalized"], 3)
                for name, r in results.items()
            },
        },
        context={
            "workload": "pagerank/lj",
            "seed_events_per_sec": seed,
            "anchor_oracle_events_per_sec": ANCHOR_ORACLE_EVENTS_PER_SEC,
            "speedup_bars": SPEEDUP_BARS,
            "rounds": ROUNDS,
        },
    )

    # The acceptance bars, on the host-normalized metric: >=5x on
    # OMEGA, >=2.5x on the baseline (whose residual is its true L1
    # miss set — the 5x bar is structurally unreachable there; see
    # docs/performance.md).
    for name, bar in SPEEDUP_BARS.items():
        assert results[name]["speedup_normalized"] > bar, (name, results)
