"""Section IX — hybrid open/closed DRAM page policy.

The paper's third off-chip direction: "employing a hybrid close- and
open-page policy: close-page for the least connected vertices as they
lack spatial locality and open-page for the rest of the data
structures including the edgeList." This bench sweeps the three
policies on the baseline CMP (the latency-sensitive system; OMEGA is
bandwidth-bound at this scale) and reports row-buffer behaviour.
"""

import dataclasses

from repro.bench import format_table
from repro.config import DramConfig, SimConfig

from conftest import emit

POLICIES = ("closed", "open", "hybrid")


def _rows(sims):
    rows = []
    for policy in POLICIES:
        cfg = dataclasses.replace(
            SimConfig.scaled_baseline(),
            name=f"baseline-{policy}",
            dram=DramConfig(page_policy=policy),
        )
        rep = sims.run("pagerank", "lj", cfg)
        rows.append(
            {
                "page policy": policy,
                "cycles": round(rep.cycles),
                "row-buffer hit rate": round(
                    rep.replay.dram.row_hit_rate, 3
                ),
            }
        )
    return rows


def test_section9_page_policy(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    text = format_table(
        rows, "Section IX — DRAM page policies (baseline CMP, PageRank, lj)"
    )
    text += (
        "\npaper proposes hybrid (close-page for vtxProp, open for the"
        " streams); 16 interleaved cores leave pure open-page with a"
        " poor row-buffer hit rate\n"
    )
    emit("section9_page_policy", text)
    by_policy = {r["page policy"]: r for r in rows}
    # Pure open-page loses: random vtxProp misses conflict in the row
    # buffers that the interleaved cores keep thrashing.
    assert by_policy["open"]["cycles"] > by_policy["closed"]["cycles"]
    # The hybrid policy never loses to closed-page...
    assert by_policy["hybrid"]["cycles"] <= by_policy["closed"]["cycles"] * 1.001
    # ...and achieves better row-buffer behaviour than pure open.
    assert (
        by_policy["hybrid"]["row-buffer hit rate"]
        >= by_policy["open"]["row-buffer hit rate"]
    )
