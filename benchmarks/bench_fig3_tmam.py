"""Figure 3 — TMAM-style execution breakdown on the baseline CMP.

The paper profiled Ligra workloads with VTune and found them strongly
backend/memory bound (71% memory-bound on average). We regenerate the
same decomposition from the simulator's analytic core model for a
sweep of algorithm x dataset pairs.
"""

from repro.bench import format_table
from repro.config import SimConfig
from repro.core.characterization import tmam_breakdown

from conftest import emit

WORKLOADS = [
    ("pagerank", "lj"), ("pagerank", "wiki"), ("pagerank", "rmat"),
    ("bfs", "lj"), ("sssp", "lj"), ("radii", "lj"),
    ("cc", "ap"), ("bc", "lj"),
]


def _rows(sims):
    rows = []
    for alg, ds in WORKLOADS:
        rep = sims.run(alg, ds, SimConfig.scaled_baseline())
        bd = tmam_breakdown(rep)
        rows.append(
            {
                "workload": f"{alg}/{ds}",
                "retiring": round(bd["retiring"], 3),
                "memory_bound": round(bd["memory_bound"], 3),
                "core_bound": round(bd["core_bound"], 3),
            }
        )
    return rows


def test_fig3_tmam_breakdown(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    mean_mem = sum(r["memory_bound"] for r in rows) / len(rows)
    text = format_table(rows, "Fig 3 — execution-time breakdown (baseline)")
    text += f"\nmean memory-bound fraction: {mean_mem:.3f} (paper: ~0.71)\n"
    emit("fig3_tmam", text)
    # Shape: graph analytics are predominantly memory bound.
    assert mean_mem > 0.55
    assert all(r["memory_bound"] > 0.4 for r in rows)
