"""Figure 14 — OMEGA speedup over the baseline CMP.

The paper's headline result: ~2x mean speedup across algorithms and
datasets, with PageRank the strongest class (~2.8x mean) and TC the
weakest. Regenerates one bar per (algorithm, dataset) workload.
"""

import statistics

from repro.bench import FIG14_WORKLOADS, format_table

from conftest import emit


def _rows(sims):
    rows = []
    for alg, ds in FIG14_WORKLOADS:
        cmp = sims.compare(alg, ds)
        rows.append(
            {
                "algorithm": alg,
                "dataset": ds,
                "speedup": round(cmp.speedup, 2),
                "omega hot fraction": round(cmp.omega.hot_fraction, 2),
                "baseline cycles": round(cmp.baseline.cycles),
                "omega cycles": round(cmp.omega.cycles),
            }
        )
    return rows


def test_fig14_speedup(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    speedups = [r["speedup"] for r in rows]
    geo = statistics.geometric_mean(speedups)
    by_alg = {}
    for r in rows:
        by_alg.setdefault(r["algorithm"], []).append(r["speedup"])
    means = {a: round(statistics.geometric_mean(v), 2) for a, v in by_alg.items()}

    text = format_table(rows, "Fig 14 — OMEGA speedup over baseline CMP")
    text += f"\ngeomean speedup: {geo:.2f}x (paper: ~2x)\n"
    text += f"per-algorithm geomeans: {means}\n"
    emit("fig14_speedup", text)

    # Shape checks from the paper's narrative:
    assert geo > 1.5, f"mean speedup too low: {geo:.2f}"
    # On the power-law datasets, PageRank is the strongest of the
    # full-sweep algorithms (the paper's 2.8x-vs-2x ordering)...
    road = {"rPA", "rCA", "USA"}
    def _pl_geomean(alg):
        vals = [r["speedup"] for r in rows
                if r["algorithm"] == alg and r["dataset"] not in road]
        return statistics.geometric_mean(vals)
    assert _pl_geomean("pagerank") > 1.8
    assert _pl_geomean("pagerank") > _pl_geomean("bfs")
    # ...and TC is the weakest workload overall ("speedup remains
    # limited because the algorithm is compute-intensive").
    assert means["tc"] == min(means.values())
    # Every power-law workload except TC must come out ahead.
    for r in rows:
        if r["dataset"] not in road and r["algorithm"] != "tc":
            assert r["speedup"] > 1.0, f"{r['algorithm']}/{r['dataset']} lost"
    # TC may round-trip near 1x but must not regress badly.
    assert means["tc"] > 0.8
