"""Figure 21 — memory-system energy comparison for PageRank.

The paper reports ~2.5x energy savings overall, with a breakdown
showing OMEGA's scratchpads cheaper than the caches they replace and
much less DRAM energy. We regenerate the per-dataset breakdown from
the event-count energy model.
"""

import statistics

from repro.bench import PAGERANK_DATASETS, format_table

from conftest import emit


def _rows(sims):
    rows = []
    for ds in PAGERANK_DATASETS:
        cmp = sims.compare("pagerank", ds)
        b = cmp.baseline.energy.as_dict()
        o = cmp.omega.energy.as_dict()
        rows.append(
            {
                "dataset": ds,
                "base cache nJ": round(b["cache"]),
                "base dram nJ": round(b["dram"]),
                "omega cache nJ": round(o["cache"]),
                "omega sp nJ": round(o["scratchpad"]),
                "omega dram nJ": round(o["dram"]),
                "saving": round(cmp.energy_saving, 2),
            }
        )
    return rows


def test_fig21_energy(benchmark, sims):
    rows = benchmark.pedantic(lambda: _rows(sims), rounds=1, iterations=1)
    geo = statistics.geometric_mean(max(r["saving"], 1e-9) for r in rows)
    text = format_table(rows, "Fig 21 — memory-system energy (PageRank)")
    text += f"\ngeomean saving: {geo:.2f}x (paper: ~2.5x)\n"
    emit("fig21_energy", text)
    powerlaw = [r for r in rows if r["dataset"] not in ("rPA", "rCA")]
    # Shape: OMEGA saves energy on power-law workloads...
    assert statistics.geometric_mean(r["saving"] for r in powerlaw) > 1.15
    # ...and on average uses less DRAM energy too.
    dram_ratio = statistics.geometric_mean(
        r["omega dram nJ"] / r["base dram nJ"] for r in powerlaw
    )
    assert dram_ratio < 1.0
    for r in powerlaw:
        # Cheaper storage accesses per event on every dataset.
        assert r["omega cache nJ"] + r["omega sp nJ"] < r["base cache nJ"] * 1.3
        assert r["omega dram nJ"] <= r["base dram nJ"] * 1.10
