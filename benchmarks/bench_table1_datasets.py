"""Table I — graph dataset characterization.

Regenerates the paper's Table I for the synthetic stand-ins: vertex
and edge counts, directedness, in-/out-degree connectivity of the top
20% most-connected vertices, and the power-law flag. The paper's
original values are shown alongside for comparison.
"""

from repro.bench import bench_graph, format_table
from repro.graph.datasets import DATASETS, dataset_names
from repro.graph.degree import characterize

from conftest import emit


def _build_rows():
    rows = []
    for name in dataset_names():
        graph, spec = bench_graph(name)
        ch = characterize(graph, name)
        row = ch.as_row()
        row["paper in-con."] = spec.paper_in_connectivity
        row["paper #V (M)"] = spec.paper_vertices_m
        rows.append(row)
    return rows


def test_table1_dataset_characterization(benchmark, sims):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    emit(
        "table1_datasets",
        format_table(rows, "Table I — dataset characterization (stand-ins)"),
    )
    # Shape checks: power-law flags must match the paper's.
    flags = {r["name"]: r["power law"] for r in rows}
    for name in dataset_names(power_law=True):
        assert flags[name] == "yes", f"{name} must be power-law"
    for name in dataset_names(power_law=False):
        assert flags[name] == "no", f"{name} must not be power-law"
    # Connectivity ordering tracks the paper (most- vs least-skewed).
    by_name = {r["name"]: r["in-degree con."] for r in rows}
    assert by_name["ic"] > by_name["orkut"]
    assert by_name["rmat"] > by_name["rCA"]
