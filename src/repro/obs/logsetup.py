"""Structured logging for the repro package.

Library modules log through ``logging.getLogger("repro.<area>")`` and
never configure handlers themselves; entry points (the CLI, notebook
users) call :func:`configure_logging` once to pick a level and a
consistent line format. The default CLI level is ``warning``, which
keeps prior behaviour (silence) for clean runs while letting
``--log-level info`` narrate phase progress and ``debug`` expose
per-stage routing/accounting detail.
"""

from __future__ import annotations

import logging

from repro.errors import ObsError

__all__ = ["configure_logging", "LOG_LEVELS"]

#: Accepted ``--log-level`` names, in increasing verbosity.
LOG_LEVELS = ("critical", "error", "warning", "info", "debug")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def configure_logging(level: str = "warning") -> None:
    """Configure the ``repro`` logger tree to emit at ``level``.

    Installs one stream handler on the ``repro`` root logger
    (idempotent: reconfiguring replaces the level, not the handler),
    leaving the application's own root logger untouched.
    """
    name = str(level).lower()
    if name not in LOG_LEVELS:
        raise ObsError(
            f"unknown log level {level!r}; choose from {', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, name.upper()))
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
