"""Metrics primitives: counters, gauges, histograms, and the registry.

The instrumentation contract mirrors what production metric libraries
(prometheus_client, OpenTelemetry) expose, shrunk to the three
instrument kinds the simulator needs and kept dependency-free:

- :class:`Counter` — monotonically increasing event tally,
- :class:`Gauge` — last-written value (phase sizes, rates),
- :class:`Histogram` — raw observations with percentile summaries.

Instruments are owned by a :class:`MetricsRegistry`. The process-wide
default registry is a :class:`NullRegistry` whose instruments are
shared no-op singletons, so instrumented code pays one dict lookup and
one no-op call when metrics are disabled — hot loops should hoist the
instrument lookup out of the loop, at which point the disabled cost is
a single C-level method call per update.

Enable collection either globally (:func:`set_registry`) or for a
scope (:func:`use_registry`)::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry()
    with use_registry(reg):
        run_system(...)
    print(reg.snapshot())
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "percentile",
    "summarize",
]

#: Percentiles reported by histogram/series summaries (manifest block).
SUMMARY_PERCENTILES = (5, 25, 50, 75, 95)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` (p in [0, 100]).

    Matches ``numpy.percentile``'s default method without requiring the
    input to already be a numpy array.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ObsError("percentile of an empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[int(rank)]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def summarize(values: Sequence[float],
              percentiles: Iterable[int] = SUMMARY_PERCENTILES) -> Dict[str, float]:
    """Percentile + mean/min/max summary of a series (empty-safe)."""
    data = [float(v) for v in values]
    if not data:
        return {"count": 0}
    out: Dict[str, float] = {
        "count": len(data),
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
    }
    for p in percentiles:
        out[f"p{p}"] = percentile(data, p)
    return out


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObsError(f"counter {self.name} increment < 0: {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta`` (may be negative)."""
        self.value += float(delta)


class Histogram:
    """Raw-sample histogram with percentile summaries.

    Keeps every observation (the simulator's series are short —
    per-window or per-phase, not per-event), which keeps the summary
    exact instead of bucketed.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self.values)

    def summary(self) -> Dict[str, float]:
        """Percentile/mean summary of the observations."""
        return summarize(self.values)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    values: List[float] = []
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Namespace of instruments, created on first use.

    Instrument names are free-form dotted paths
    (``"replay.events_routed"``); asking for the same name twice
    returns the same instrument, and asking for a name already held by
    a different instrument kind raises ``ValueError``.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ObsError(
                f"metric {name!r} already registered as"
                f" {type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict]:
        """All instruments, grouped by kind, as plain JSON-able data."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = inst.summary()  # type: ignore[union-attr]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class NullRegistry(MetricsRegistry):
    """The disabled default: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-wide disabled registry (the default).
NULL_REGISTRY = NullRegistry()

# Per-thread like the tracer: concurrent runs (serve workers, the
# two-store regression test) each install their own registry without
# clobbering each other. Threads that never install one see NULL_REGISTRY.
_current = threading.local()


def get_registry() -> MetricsRegistry:
    """The registry installed in this thread (no-op by default)."""
    return getattr(_current, "registry", NULL_REGISTRY)


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` for this thread; ``None`` restores the null
    one.

    Returns the previously installed registry so callers can restore
    it (or use :func:`use_registry` for scoped installation).
    """
    previous = get_registry()
    _current.registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Context manager: install ``registry`` for the enclosed scope
    (thread-locally)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
