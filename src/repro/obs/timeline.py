"""Windowed replay metrics: phase-resolved time series of a run.

End-of-run aggregates hide *when* things happen: the LLC hit rate of a
PageRank iteration collapses during the scatter phase and recovers in
the vertexMap, DRAM bandwidth spikes when the frontier densifies, and
the paper's Figures 4-5 and 15-17 are exactly such phase-resolved
views. The :class:`ReplaySampler` recovers that lens from the replay
engine: every N trace events it snapshots the cumulative counters and
emits one *window* — per-level hit rates, on-chip traffic bytes, DRAM
traffic/bandwidth, scratchpad and PISC offload counts — into a
columnar :class:`Timeline`.

The timeline exports as columnar JSON (or CSV when the output path
ends in ``.csv``) and summarizes each rate column into percentiles for
the run manifest's ``telemetry`` block, which is what
``repro report`` diffs between runs.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List, Optional

from repro.errors import ObsError
from repro.obs.metrics import summarize

__all__ = ["ReplaySampler", "Timeline", "TIMELINE_SCHEMA"]

#: Schema tag written into every timeline JSON document.
TIMELINE_SCHEMA = "omega-repro/timeline/v1"

#: Default number of windows when ``window_events`` is 0 (auto).
AUTO_WINDOWS = 64

#: Columns summarized into percentiles for the manifest telemetry block.
SUMMARY_COLUMNS = (
    "l1_hit_rate",
    "l2_hit_rate",
    "last_level_hit_rate",
    "dram_gbps",
    "onchip_traffic_bytes",
    "dram_bytes",
    "sp_offloads",
)

#: Column order of the timeline (also the CSV header order).
COLUMNS = (
    "window",
    "start_event",
    "end_event",
    "events",
    "wall_seconds",
    "l1_hit_rate",
    "l2_hit_rate",
    "last_level_hit_rate",
    "onchip_traffic_bytes",
    "dram_read_bytes",
    "dram_write_bytes",
    "dram_bytes",
    "dram_gbps",
    "sp_accesses",
    "sp_offloads",
    "srcbuf_hits",
    "atomics",
    "approx_cycles",
)


class Timeline:
    """A finished windowed time series (column name → list of values)."""

    def __init__(self, columns: Dict[str, List], window_events: int) -> None:
        self.columns = columns
        self.window_events = window_events
        #: Optional metrics-registry snapshot bundled into the JSON form.
        self.metrics: Optional[Dict] = None

    @property
    def num_windows(self) -> int:
        """Number of sampled windows."""
        return len(self.columns.get("window", ()))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Percentile summaries of the rate columns (manifest block)."""
        return {
            name: summarize(self.columns[name])
            for name in SUMMARY_COLUMNS
            if name in self.columns
        }

    def to_dict(self) -> Dict:
        """Full JSON-able document (schema, columns, summary)."""
        doc = {
            "schema": TIMELINE_SCHEMA,
            "window_events": self.window_events,
            "num_windows": self.num_windows,
            "columns": self.columns,
            "summary": self.summary(),
        }
        if self.metrics is not None:
            doc["metrics"] = self.metrics
        return doc

    def save(self, path) -> None:
        """Write the timeline to ``path``.

        ``*.csv`` writes one row per window with a header; anything
        else writes the columnar JSON document. Parent directories are
        created on demand.
        """
        path = os.fspath(path)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if path.endswith(".csv"):
            names = [c for c in COLUMNS if c in self.columns]
            with open(path, "w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(names)
                for i in range(self.num_windows):
                    writer.writerow([self.columns[c][i] for c in names])
        else:
            with open(path, "w") as f:
                json.dump(self.to_dict(), f, indent=1)

    @classmethod
    def load(cls, path) -> "Timeline":
        """Load a timeline previously written as JSON."""
        with open(path) as f:
            doc = json.load(f)
        timeline = cls(doc["columns"], doc.get("window_events", 0))
        timeline.metrics = doc.get("metrics")
        return timeline


#: Cumulative MemStats fields snapshotted at every window boundary.
_STAT_FIELDS = (
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
    "sp_local_accesses",
    "sp_remote_accesses",
    "srcbuf_hits",
    "pisc_ops",
    "prefetch_hits",
    "atomics_total",
    "atomics_on_cores",
    "atomics_offloaded",
    "onchip_line_bytes",
    "onchip_word_bytes",
    "dram_read_bytes",
    "dram_write_bytes",
)


class ReplaySampler:
    """Samples replay counters every ``window_events`` trace events.

    The replay engine drives it: :meth:`begin` once with the total
    event count and the core-model parameters, then :meth:`record`
    after each window with the cumulative stats object. The sampler
    differences consecutive snapshots, so it works with any backend
    that accounts into a ``MemStats``-shaped object — it never touches
    engine internals.

    ``window_events=0`` (the default) auto-sizes the window so a run
    produces about :data:`AUTO_WINDOWS` windows.
    """

    def __init__(self, window_events: int = 0) -> None:
        if window_events < 0:
            raise ObsError(
                f"window_events must be >= 0, got {window_events}"
            )
        self.window_events = window_events
        self._prev: Dict[str, float] = {}
        self._core_params: Dict[str, float] = {}
        self._columns: Dict[str, List] = {name: [] for name in COLUMNS}

    def begin(self, total_events: int, ncores: int,
              compute_cycles_per_access: float, mlp: float,
              imbalance_factor: float, freq_ghz: float) -> int:
        """Resolve the window size for ``total_events`` and reset state.

        Returns the resolved window size (in events).
        """
        if self.window_events == 0:
            self.window_events = max(1, -(-total_events // AUTO_WINDOWS))
        self._core_params = {
            "ncores": max(1, ncores),
            "cpa": compute_cycles_per_access,
            "mlp": max(mlp, 1e-12),
            "imbalance": imbalance_factor,
            "freq_ghz": freq_ghz,
        }
        self._prev = {name: 0 for name in _STAT_FIELDS}
        self._prev["mem_latency"] = 0.0
        self._prev["serial_cycles"] = 0.0
        return self.window_events

    def record(self, start_event: int, end_event: int, stats,
               wall_seconds: float) -> None:
        """Close one window: difference the cumulative ``stats``."""
        snap = {name: getattr(stats, name) for name in _STAT_FIELDS}
        snap["mem_latency"] = float(sum(stats.core_mem_latency))
        snap["serial_cycles"] = float(sum(stats.core_serial_cycles))
        delta = {k: snap[k] - self._prev[k] for k in snap}
        self._prev = snap

        events = end_event - start_event
        l1_acc = delta["l1_hits"] + delta["l1_misses"]
        l2_acc = delta["l2_hits"] + delta["l2_misses"]
        sp_acc = delta["sp_local_accesses"] + delta["sp_remote_accesses"]
        beyond_l1 = l2_acc + sp_acc + delta["srcbuf_hits"]
        ll_hits = delta["l2_hits"] + sp_acc + delta["srcbuf_hits"]
        onchip = delta["onchip_line_bytes"] + delta["onchip_word_bytes"]
        dram_bytes = delta["dram_read_bytes"] + delta["dram_write_bytes"]

        p = self._core_params
        # The timing model's balanced-cores bound, applied to this
        # window's deltas: a phase-local cycle estimate that turns the
        # window's DRAM bytes into a Fig-16-style bandwidth figure.
        cycles = (
            (events * p["cpa"] + delta["serial_cycles"]
             + delta["mem_latency"] / p["mlp"])
            / p["ncores"] * p["imbalance"]
        )
        seconds = cycles / (p["freq_ghz"] * 1e9) if cycles > 0 else 0.0
        dram_gbps = dram_bytes / seconds / 1e9 if seconds > 0 else 0.0

        row = {
            "window": len(self._columns["window"]),
            "start_event": start_event,
            "end_event": end_event,
            "events": events,
            "wall_seconds": wall_seconds,
            "l1_hit_rate": delta["l1_hits"] / l1_acc if l1_acc else 0.0,
            "l2_hit_rate": delta["l2_hits"] / l2_acc if l2_acc else 0.0,
            "last_level_hit_rate": (
                ll_hits / beyond_l1 if beyond_l1 else 0.0
            ),
            "onchip_traffic_bytes": onchip,
            "dram_read_bytes": delta["dram_read_bytes"],
            "dram_write_bytes": delta["dram_write_bytes"],
            "dram_bytes": dram_bytes,
            "dram_gbps": dram_gbps,
            "sp_accesses": sp_acc,
            "sp_offloads": delta["pisc_ops"],
            "srcbuf_hits": delta["srcbuf_hits"],
            "atomics": delta["atomics_total"],
            "approx_cycles": cycles,
        }
        for name, value in row.items():
            self._columns[name].append(value)

    def timeline(self) -> Timeline:
        """The finished :class:`Timeline` (valid once replay completes)."""
        return Timeline(self._columns, self.window_events)
