"""Nested-span tracing with Chrome trace-event export.

A *span* is a named, timed phase of a run: graph build, trace
generation, the replay pre-pass, one edgeMap sweep, one replay window.
Spans nest — opening a span inside another records the parent/depth —
and the finished tree exports as Chrome trace-event JSON, directly
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Like the metrics registry, the process-wide default tracer is a no-op
singleton, so instrumented code costs one function call and one
``None`` check per phase when tracing is disabled. Phases are
coarse-grained (calls per edgeMap, not per memory event), so even an
enabled tracer adds only microseconds per span.

Usage::

    from repro.obs import SpanTracer, use_tracer

    tracer = SpanTracer()
    with use_tracer(tracer):
        run_system(...)
    tracer.export_chrome("trace.json")
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "CounterRecord",
    "SpanRecord",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class CounterRecord:
    """One sample of a Perfetto counter track (``ph: "C"``)."""

    name: str
    #: Timestamp in microseconds since the tracer's epoch.
    ts_us: float
    #: Series name -> numeric value; each key renders as one line on
    #: the counter track.
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    #: Trace-event category (coarse phase family: "run", "ligra",
    #: "replay", ...).
    cat: str
    #: Start time in microseconds since the tracer's epoch.
    start_us: float
    #: Duration in microseconds.
    dur_us: float
    #: Nesting depth at open time (root spans are depth 1).
    depth: int
    #: Index of the parent span in the tracer's record list, -1 for roots.
    parent: int
    #: Free-form annotations, shown in the trace viewer's args pane.
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        """End time in microseconds since the tracer's epoch."""
        return self.start_us + self.dur_us


class _OpenSpan:
    """Context-manager handle for an in-flight span."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_index")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._index = -1

    def annotate(self, **kwargs) -> None:
        """Attach extra args to the span (e.g. results known at exit)."""
        self.args.update(kwargs)

    def __enter__(self) -> "_OpenSpan":
        self._start = self._tracer._clock()
        self._index = self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self, self._tracer._clock())


class SpanTracer:
    """Records nested spans and exports them as Chrome trace events.

    Single-threaded by design (the simulator models parallelism, it
    does not use it): nesting is tracked with one open-span stack.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._clock = time.perf_counter
        self._stack: List[int] = []
        self.records: List[SpanRecord] = []
        self.counters: List[CounterRecord] = []
        self.max_depth = 0

    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything (null tracer: False)."""
        return True

    def span(self, name: str, cat: str = "run", **args) -> _OpenSpan:
        """Open a span; use as a context manager."""
        return _OpenSpan(self, name, cat, dict(args))

    def counter(self, name: str, values: Dict[str, float],
                ts_us: Optional[float] = None) -> None:
        """Record one sample of the ``name`` counter track.

        ``values`` maps series name to numeric value; Perfetto renders
        each series as one line under a counter track named ``name``.
        ``ts_us`` (microseconds since the tracer's epoch) defaults to
        "now", so samples taken after a run still land at the end of
        the span timeline rather than at time zero.
        """
        if ts_us is None:
            ts_us = (self._clock() - self._epoch) * 1e6
        self.counters.append(
            CounterRecord(
                name=name, ts_us=float(ts_us),
                values={k: float(v) for k, v in values.items()},
            )
        )

    # -- span lifecycle (driven by _OpenSpan) --------------------------
    def _open(self, span: _OpenSpan) -> int:
        index = len(self.records)
        depth = len(self._stack) + 1
        parent = self._stack[-1] if self._stack else -1
        self.records.append(
            SpanRecord(
                name=span.name,
                cat=span.cat,
                start_us=(span._start - self._epoch) * 1e6,
                dur_us=0.0,
                depth=depth,
                parent=parent,
                args=span.args,
            )
        )
        self._stack.append(index)
        if depth > self.max_depth:
            self.max_depth = depth
        return index

    def _close(self, span: _OpenSpan, end: float) -> None:
        record = self.records[span._index]
        record.dur_us = (end - self._epoch) * 1e6 - record.start_us
        # Tolerate out-of-order exits (exceptions unwinding several
        # spans): pop until this span's frame is closed.
        while self._stack:
            if self._stack.pop() == span._index:
                break

    # -- export --------------------------------------------------------
    def to_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event ``traceEvents`` document.

        Every span becomes one complete ("X") event on a single
        process/thread; viewers reconstruct nesting from timestamp
        containment, and ``args`` carries the explicit depth/parent
        for offline consumers. Counter samples export as "C" events,
        which Perfetto renders as dedicated counter tracks next to
        the span rows.
        """
        events = []
        for i, r in enumerate(self.records):
            args = dict(r.args)
            args["depth"] = r.depth
            args["parent"] = r.parent
            events.append(
                {
                    "name": r.name,
                    "cat": r.cat,
                    "ph": "X",
                    "ts": r.start_us,
                    "dur": r.dur_us,
                    "pid": 0,
                    "tid": 0,
                    "id": i,
                    "args": args,
                }
            )
        for c in self.counters:
            events.append(
                {
                    "name": c.name,
                    "ph": "C",
                    "ts": c.ts_us,
                    "pid": 0,
                    "tid": 0,
                    "args": dict(c.values),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.SpanTracer"},
        }

    def export_chrome(self, path) -> None:
        """Write :meth:`to_chrome` as JSON (parents created on demand)."""
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f, indent=1)


class _NullSpan:
    """Shared no-op span handle."""

    __slots__ = ()

    def annotate(self, **kwargs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled default tracer: every span is a shared no-op."""

    enabled = False
    records: List[SpanRecord] = []
    counters: List[CounterRecord] = []
    max_depth = 0

    def span(self, name: str, cat: str = "run", **args) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, values: Dict[str, float],
                ts_us: Optional[float] = None) -> None:
        pass

    def to_chrome(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: The process-wide disabled tracer (the default).
NULL_TRACER = NullTracer()

# The installed tracer is *per thread*: a `repro serve` worker (or any
# concurrent run_system caller) that installs its own tracer via
# use_tracer must not clobber the tracer another thread is emitting
# into. Threads that never install anything see the shared NULL_TRACER.
_current = threading.local()


def get_tracer():
    """The tracer installed in this thread (no-op by default)."""
    return getattr(_current, "tracer", NULL_TRACER)


def set_tracer(tracer: Optional[SpanTracer]):
    """Install ``tracer`` for this thread; ``None`` restores the null
    tracer.

    Returns the previously installed tracer.
    """
    previous = get_tracer()
    _current.tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer):
    """Context manager: install ``tracer`` for the enclosed scope
    (thread-locally)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
