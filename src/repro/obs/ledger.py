"""Append-only run ledger: the perf trajectory across runs and PRs.

Every instrumented run produces a manifest — but manifests are
files-next-to-results, so the *trajectory* (did throughput regress
since last week? which config produced that number?) is lost unless
something keeps them. The ledger is that something: an append-only
JSONL file where ``run_system`` and the bench harness append one entry
per run, keyed by the trace-store content key, the configuration
fingerprint, and (best-effort) the git revision. ``repro history``
lists, filters, and regression-diffs entries through the same
:func:`~repro.obs.manifest_diff.diff_manifests` gate CI uses.

JSONL was chosen over a database on purpose: appends are atomic enough
for one writer per line, the file diffs and greps, and a reader that
hits a torn or foreign line skips it instead of failing — the ledger
must never take a run down with it.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "LEDGER_SCHEMA",
    "ENV_LEDGER",
    "git_rev",
    "make_entry",
    "append_entry",
    "read_entries",
    "filter_entries",
    "format_history",
    "resolve_ledger_path",
]

#: Schema tag stamped on every ledger line.
LEDGER_SCHEMA = "omega-repro/run-ledger/v1"

#: Environment variable naming the ledger file; when set, ``run_system``
#: appends an entry to it even without an explicit ``ledger_path``.
ENV_LEDGER = "REPRO_LEDGER"


def resolve_ledger_path(explicit=None) -> Optional[str]:
    """The ledger file to append to: explicit arg, else ``REPRO_LEDGER``.

    Returns ``None`` (ledger disabled) when neither is set; an empty
    environment value also disables it, so ``REPRO_LEDGER= repro run``
    overrides an ambient setting. The environment read delegates to
    :func:`repro.core.context.ledger_path_from_env` (the one module
    allowed to touch ``REPRO_*``); prefer carrying the path on a
    :class:`repro.core.context.RunContext`.
    """
    if explicit is not None:
        return os.fspath(explicit)
    from repro.core.context import ledger_path_from_env

    return ledger_path_from_env()


def git_rev() -> Optional[str]:
    """Best-effort git revision of the working tree, or ``None``.

    Never raises: a missing git binary, a non-repo working directory,
    or a timeout all degrade to ``None`` — provenance is optional.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def make_entry(manifest: Dict, kind: str = "run",
               trace_key: Optional[str] = None,
               timestamp: Optional[float] = None,
               rev: Optional[str] = None) -> Dict:
    """Build one ledger entry around a run (or bench) manifest.

    ``kind`` distinguishes full-system runs (``"run"``) from bench
    harness entries (``"bench"``). The identity key combines the
    trace-store content key (when the run went through the store), the
    config fingerprint from the manifest, and the git revision — enough
    to answer "same workload, same config, different code?" across the
    whole trajectory.
    """
    if kind not in ("run", "bench"):
        raise ReproError(f"ledger kind must be 'run' or 'bench', got {kind!r}")
    cache = manifest.get("trace_cache") or {}
    config = manifest.get("config") or {}
    return {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "timestamp": float(time.time() if timestamp is None else timestamp),
        "key": {
            "trace": trace_key or cache.get("key"),
            "config": config.get("hash"),
            "git": git_rev() if rev is None else rev,
        },
        "manifest": manifest,
    }


def append_entry(path, entry: Dict) -> None:
    """Append one entry to the ledger file (parents created on demand)."""
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")


def read_entries(path) -> List[Dict]:
    """Read every well-formed ledger entry from ``path``.

    Torn, malformed, or foreign-schema lines are silently skipped — a
    half-written tail must not block reading the history before it.
    Raises :class:`~repro.errors.ReproError` only when the file itself
    cannot be read.
    """
    try:
        with open(path) as f:
            raw = f.read()
    except OSError as exc:
        raise ReproError(f"cannot read ledger {path}: {exc}") from exc
    entries = []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict) and doc.get("schema") == LEDGER_SCHEMA:
            entries.append(doc)
    return entries


def filter_entries(entries: List[Dict], kind: Optional[str] = None,
                   dataset: Optional[str] = None,
                   algorithm: Optional[str] = None,
                   backend: Optional[str] = None) -> List[Dict]:
    """Subset of ``entries`` matching every given identity filter."""
    out = []
    for e in entries:
        manifest = e.get("manifest") or {}
        if kind is not None and e.get("kind") != kind:
            continue
        if dataset is not None and manifest.get("dataset") != dataset:
            continue
        if algorithm is not None and manifest.get("algorithm") != algorithm:
            continue
        if backend is not None and manifest.get("backend") != backend:
            continue
        out.append(e)
    return out


def format_history(entries: List[Dict]) -> str:
    """Human-readable one-line-per-entry history table."""
    header = (
        f"{'when':19} {'kind':5} {'dataset':12} {'algorithm':10}"
        f" {'backend':9} {'cycles':>14} {'git':9} trace"
    )
    lines = [header, "-" * len(header)]
    for e in entries:
        manifest = e.get("manifest") or {}
        key = e.get("key") or {}
        timing = manifest.get("timing") or {}
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(e.get("timestamp", 0))
        )
        cycles = timing.get("total_cycles")
        rev = key.get("git") or "-"
        trace = key.get("trace") or "-"
        lines.append(
            f"{when:19} {e.get('kind', '?'):5}"
            f" {str(manifest.get('dataset', '?')):12}"
            f" {str(manifest.get('algorithm', '?')):10}"
            f" {str(manifest.get('backend', '?')):9}"
            f" {(f'{cycles:.6g}' if cycles is not None else '-'):>14}"
            f" {str(rev)[:8]:9} {str(trace)[:16]}"
        )
    return "\n".join(lines) + "\n"
