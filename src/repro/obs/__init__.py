"""``repro.obs`` — zero-dependency telemetry for the simulator.

Three complementary lenses on a run, all disabled (and near-free) by
default:

- **Metrics** (:mod:`repro.obs.metrics`): counters/gauges/histograms
  behind a global registry whose default is a shared no-op.
- **Span tracing** (:mod:`repro.obs.tracer`): nested, timed phases
  (graph build → trace generation → replay → per-edgeMap sweeps)
  exported as Chrome trace-event JSON for Perfetto/``chrome://tracing``.
- **Windowed timelines** (:mod:`repro.obs.timeline`): every N replay
  events, a snapshot of hit rates, traffic, DRAM bandwidth, and
  offload counts — a phase-resolved time series attached (as
  percentiles) to the run manifest.

Plus the regression gate built on top of the manifests
(:mod:`repro.obs.manifest_diff`, surfaced as ``repro report``) and the
package's logging setup (:mod:`repro.obs.logsetup`).
"""

from repro.obs.attribution import (
    ATTRIBUTED_FIELDS,
    ATTRIBUTION_SCHEMA,
    CLASS_NAMES,
    AttributionAccumulator,
    AttributionSpec,
    explain_lines,
)
from repro.obs.ledger import (
    ENV_LEDGER,
    LEDGER_SCHEMA,
    append_entry,
    filter_entries,
    format_history,
    make_entry,
    read_entries,
    resolve_ledger_path,
)
from repro.obs.logsetup import LOG_LEVELS, configure_logging
from repro.obs.manifest_diff import (
    TRACKED_METRICS,
    DiffResult,
    MetricDelta,
    diff_manifests,
    format_report,
    load_manifest,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    percentile,
    set_registry,
    summarize,
    use_registry,
)
from repro.obs.timeline import ReplaySampler, Timeline, TIMELINE_SCHEMA
from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    NullTracer,
    SpanRecord,
    SpanTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "ATTRIBUTED_FIELDS",
    "ATTRIBUTION_SCHEMA",
    "CLASS_NAMES",
    "AttributionAccumulator",
    "AttributionSpec",
    "explain_lines",
    "ENV_LEDGER",
    "LEDGER_SCHEMA",
    "append_entry",
    "filter_entries",
    "format_history",
    "make_entry",
    "read_entries",
    "resolve_ledger_path",
    "LOG_LEVELS",
    "configure_logging",
    "TRACKED_METRICS",
    "DiffResult",
    "MetricDelta",
    "diff_manifests",
    "format_report",
    "load_manifest",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "percentile",
    "set_registry",
    "summarize",
    "use_registry",
    "ReplaySampler",
    "Timeline",
    "TIMELINE_SCHEMA",
    "NULL_TRACER",
    "CounterRecord",
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
