"""Manifest diffing: the regression gate behind ``repro report``.

Every run can write a JSON manifest (:meth:`SimReport.manifest`)
recording what ran and what it measured. Since all tracked metrics are
*simulated* quantities — cycle counts, hit rates, traffic — they are
deterministic for a given (code, workload, config) triple, so two
manifests from the same workload diff meaningfully across commits,
machines, and CI runs. ``repro report old.json new.json`` compares the
tracked metrics and exits nonzero when any of them regresses beyond a
relative tolerance, which is what benchmark jobs gate on.

Host-time metrics (``replay.seconds``, ``events_per_second``) are
deliberately *not* tracked: they vary with the machine and would make
the gate flaky.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "TRACKED_METRICS",
    "MetricDelta",
    "DiffResult",
    "load_manifest",
    "diff_manifests",
    "format_report",
]

#: Direction markers: does a larger value mean a *better* run?
HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"

#: (dotted manifest path, direction) for every gated metric.
TRACKED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("timing.total_cycles", LOWER_IS_BETTER),
    ("event_counts.l2_hit_rate", HIGHER_IS_BETTER),
    ("event_counts.last_level_hit_rate", HIGHER_IS_BETTER),
    ("event_counts.onchip_traffic_bytes", LOWER_IS_BETTER),
    ("event_counts.dram_bytes", LOWER_IS_BETTER),
    ("energy_nj.total", LOWER_IS_BETTER),
)

#: Identity fields that must match for a diff to be apples-to-apples.
_CONTEXT_FIELDS = ("algorithm", "dataset", "backend", "system")

#: Top-level manifest blocks this differ understands. Anything else —
#: e.g. a block added by a newer schema version, like v5's
#: ``attribution`` when gating against a v4 golden — is skipped with a
#: warning instead of failing the gate, so old goldens keep gating new
#: runs.
KNOWN_BLOCKS = frozenset(
    {
        "schema",
        "system",
        "backend",
        "algorithm",
        "dataset",
        "config",
        "workload",
        "trace_cache",
        "replay",
        "segmentation",
        "timing",
        "energy_nj",
        "event_counts",
        "telemetry",
        "attribution",
    }
)


def load_manifest(path) -> Dict:
    """Read and minimally validate a run-manifest JSON file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        raise ReproError(f"cannot read manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ReproError(f"{path} is not a manifest (expected an object)")
    schema = doc.get("schema", "")
    if not str(schema).startswith("omega-repro/run-manifest/"):
        raise ReproError(
            f"{path} is not a run manifest (schema={schema!r});"
            " expected omega-repro/run-manifest/v*"
        )
    return doc


def _lookup(doc: Dict, dotted: str) -> Optional[float]:
    """Resolve ``"a.b.c"`` inside a nested dict; None when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


@dataclass
class MetricDelta:
    """Old-vs-new comparison of one tracked metric."""

    name: str
    direction: str
    old: Optional[float]
    new: Optional[float]
    #: Relative change (new - old) / old; None when undefined.
    rel_change: Optional[float]
    #: Beyond-tolerance change in the *bad* direction.
    regressed: bool
    #: Beyond-tolerance change in the *good* direction.
    improved: bool

    @property
    def status(self) -> str:
        """One-word verdict for table rendering."""
        if self.old is None or self.new is None:
            return "missing"
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"


@dataclass
class DiffResult:
    """Outcome of diffing two manifests."""

    deltas: List[MetricDelta]
    #: (field, old value, new value) identity mismatches (warnings).
    mismatches: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Top-level blocks present in either manifest that this differ
    #: does not understand — skipped with a warning, never an error.
    unknown_blocks: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        """The metrics that regressed beyond tolerance."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no regressions)."""
        return not self.regressions


def _compare(name: str, direction: str, old: Optional[float],
             new: Optional[float], tolerance: float) -> MetricDelta:
    if old is None or new is None:
        return MetricDelta(name, direction, old, new, None, False, False)
    if old == 0:
        rel = 0.0 if new == 0 else float("inf")
    else:
        rel = (new - old) / abs(old)
    if direction == LOWER_IS_BETTER:
        regressed = rel > tolerance
        improved = rel < -tolerance
    else:
        regressed = rel < -tolerance
        improved = rel > tolerance
    return MetricDelta(name, direction, old, new, rel, regressed, improved)


def diff_manifests(old: Dict, new: Dict, tolerance: float = 0.05,
                   metrics: Sequence[Tuple[str, str]] = TRACKED_METRICS,
                   ) -> DiffResult:
    """Compare two loaded manifests over the tracked metrics.

    ``tolerance`` is the relative change allowed in the bad direction
    before a metric counts as regressed (0.05 = 5%).
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    deltas = [
        _compare(name, direction, _lookup(old, name), _lookup(new, name),
                 tolerance)
        for name, direction in metrics
    ]
    mismatches = [
        (fld, str(old.get(fld, "")), str(new.get(fld, "")))
        for fld in _CONTEXT_FIELDS
        if old.get(fld, "") != new.get(fld, "")
    ]
    unknown = sorted(
        {key for doc in (old, new) for key in doc}
        - KNOWN_BLOCKS
        - {name.split(".", 1)[0] for name, _ in metrics}
    )
    return DiffResult(
        deltas=deltas, mismatches=mismatches, unknown_blocks=unknown
    )


def format_report(result: DiffResult, tolerance: float) -> str:
    """Human-readable diff table (one line per tracked metric)."""
    lines = []
    for fld, old_v, new_v in result.mismatches:
        lines.append(
            f"warning: comparing different runs: {fld}"
            f" {old_v!r} vs {new_v!r}"
        )
    for block in result.unknown_blocks:
        lines.append(
            f"warning: skipping unknown manifest block {block!r}"
            " (schema version difference?)"
        )
    header = f"{'metric':40} {'old':>14} {'new':>14} {'change':>9} status"
    lines.append(header)
    lines.append("-" * len(header))
    for d in result.deltas:
        old_s = "-" if d.old is None else f"{d.old:.6g}"
        new_s = "-" if d.new is None else f"{d.new:.6g}"
        rel_s = "-" if d.rel_change is None else f"{d.rel_change:+.2%}"
        lines.append(
            f"{d.name:40} {old_s:>14} {new_s:>14} {rel_s:>9} {d.status}"
        )
    n_reg = len(result.regressions)
    if n_reg:
        lines.append(
            f"FAIL: {n_reg} metric(s) regressed beyond"
            f" {tolerance:.1%} tolerance"
        )
    else:
        lines.append(f"OK: no metric regressed beyond {tolerance:.1%}")
    return "\n".join(lines) + "\n"
