"""Area and peak-power model (paper Table IV).

Per-component peak power (W) and area (mm²) at 45 nm, taken directly
from the paper's Table IV (McPAT cores, Cacti storage, synthesized
PISC). The node-level arithmetic reproduces the paper's headline:
OMEGA occupies slightly *less* area (−2.31%, scratchpads need no tag
arrays) at slightly higher peak power (+0.65%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ComponentBudget", "node_budget", "BASELINE_COMPONENTS",
           "OMEGA_COMPONENTS", "area_power_table"]


@dataclass(frozen=True)
class ComponentBudget:
    """One Table IV row: a component's peak power and area."""

    name: str
    power_w: float
    area_mm2: float


#: Baseline CMP node, per Table IV (per-core figures).
BASELINE_COMPONENTS: List[ComponentBudget] = [
    ComponentBudget("Core", 3.11, 24.08),
    ComponentBudget("L1 caches", 0.20, 0.42),
    ComponentBudget("L2 cache", 2.86, 8.41),
]

#: OMEGA node, per Table IV (half-sized L2 + scratchpad + PISC).
OMEGA_COMPONENTS: List[ComponentBudget] = [
    ComponentBudget("Core", 3.11, 24.08),
    ComponentBudget("L1 caches", 0.20, 0.42),
    ComponentBudget("Scratchpad", 1.40, 3.17),
    ComponentBudget("PISC", 0.004, 0.01),
    ComponentBudget("L2 cache", 1.50, 4.47),
]


def node_budget(components: List[ComponentBudget]) -> ComponentBudget:
    """Sum a component list into a node total."""
    return ComponentBudget(
        name="Node total",
        power_w=sum(c.power_w for c in components),
        area_mm2=sum(c.area_mm2 for c in components),
    )


def area_power_table() -> Dict[str, Dict[str, float]]:
    """Reproduce Table IV plus the relative deltas the paper quotes."""
    base = node_budget(BASELINE_COMPONENTS)
    omega = node_budget(OMEGA_COMPONENTS)
    return {
        "baseline": {
            **{c.name: c.power_w for c in BASELINE_COMPONENTS},
            "node_power_w": base.power_w,
            "node_area_mm2": base.area_mm2,
        },
        "omega": {
            **{c.name: c.power_w for c in OMEGA_COMPONENTS},
            "node_power_w": omega.power_w,
            "node_area_mm2": omega.area_mm2,
        },
        "delta": {
            "area_pct": 100.0 * (omega.area_mm2 - base.area_mm2) / base.area_mm2,
            "power_pct": 100.0 * (omega.power_w - base.power_w) / base.power_w,
        },
    }
