"""On-chip interconnect: latency and traffic-volume accounting.

The paper's network is a 16x crossbar with a 128-bit bus and a
measured average remote-hop latency of 17 cycles; a 2D-mesh topology
is also provided for core-count scaling studies (per-hop Manhattan
latency). Two packet classes matter for the Fig 17 traffic analysis:

- **line packets** (64 B + header) — every baseline L1<->L2 transfer;
- **word packets** (1-8 B + header) — OMEGA's scratchpad reads/writes
  and PISC offload commands, "closely resembling the control messages
  of conventional coherence protocols".
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import InterconnectConfig

__all__ = ["Crossbar"]


class Crossbar:
    """Traffic and latency accounting for one chip's interconnect.

    Named for the paper's Table III topology; also models a 2D mesh
    when the config selects it. Transfer methods accept optional
    ``src``/``dst`` tile ids — the crossbar's latency is uniform, the
    mesh's is Manhattan-distance based (falling back to the average
    hop count when endpoints are unknown).
    """

    def __init__(self, config: InterconnectConfig, num_cores: int) -> None:
        self.config = config
        self.num_cores = num_cores
        self.line_packets = 0
        self.word_packets = 0
        self.control_packets = 0
        self.line_bytes = 0
        self.word_bytes = 0
        self.control_bytes = 0
        self._mesh_side = max(1, int(round(math.sqrt(num_cores))))

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles on the mesh."""
        side = self._mesh_side
        sx, sy = src % side, src // side
        dx, dy = dst % side, dst // side
        return abs(sx - dx) + abs(sy - dy)

    def average_hops(self) -> float:
        """Mean Manhattan distance between distinct random tiles."""
        side = self._mesh_side
        # E|x1-x2| for uniform ints in [0, side) is (side^2 - 1) / (3 side).
        per_axis = (side * side - 1) / (3 * side)
        return 2 * per_axis

    def transfer_latency(
        self, src: Optional[int] = None, dst: Optional[int] = None
    ) -> int:
        """Latency of one remote transfer under the configured topology."""
        if self.config.topology == "crossbar":
            return self.config.remote_latency_cycles
        if src is None or dst is None:
            hop_count = self.average_hops()
        else:
            hop_count = self.hops(src, dst)
        return int(
            round(
                self.config.mesh_router_cycles
                + hop_count * self.config.mesh_hop_cycles
            )
        )

    # ------------------------------------------------------------------
    # Packet accounting
    # ------------------------------------------------------------------
    def line_transfer(
        self, line_bytes: int, src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> int:
        """A cache-line transfer between a core and an L2 bank."""
        self.line_packets += 1
        self.line_bytes += line_bytes + self.config.header_bytes
        return self.transfer_latency(src, dst)

    def word_transfer(
        self, nbytes: int, src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> int:
        """A word-granularity scratchpad transfer (OMEGA custom packet)."""
        self.word_packets += 1
        self.word_bytes += min(nbytes, 8) + self.config.header_bytes
        return self.transfer_latency(src, dst)

    def control_message(
        self, src: Optional[int] = None, dst: Optional[int] = None
    ) -> int:
        """A coherence control message (invalidate / ack)."""
        self.control_packets += 1
        self.control_bytes += self.config.header_bytes
        return self.transfer_latency(src, dst)

    @property
    def total_bytes(self) -> int:
        """All bytes crossing the interconnect (the Fig 17 metric)."""
        return self.line_bytes + self.word_bytes + self.control_bytes

    def min_cycles_for_bandwidth(self) -> float:
        """Duration lower bound from interconnect throughput.

        A crossbar switches ``num_cores`` simultaneous bus-width
        transfers per cycle in the best case; a mesh has one link per
        tile edge, giving roughly twice the bisection constraint —
        modeled here with the same aggregate bound for simplicity.
        """
        peak = self.config.bus_bytes * self.num_cores
        return self.total_bytes / peak if peak > 0 else 0.0
