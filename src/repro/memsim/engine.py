"""The unified, batch-vectorized trace-replay engine.

Every memory hierarchy the repo models — baseline CMP, OMEGA,
locked-cache, GraphPIM, dynamic scratchpad — is a *routing policy*
over the same machinery:

1. a **vectorized pre-pass** (:mod:`repro.memsim.prepass`) classifies
   the whole columnar trace in numpy before any stateful work: flag
   masks, cache-line geometry, region classes, hot-vertex membership,
   scratchpad homes;
2. the backend's :meth:`HierarchyBackend.route` turns those arrays
   into one route code per event (``ROUTE_*``);
3. the events routed to the cache path run through the stateful
   :class:`_CacheSystem` loop (the only part of a replay that must be
   sequential — L1/L2 LRU state, the MESI directory, the stream
   prefetcher); everything else is **accounted in batch** with
   ``np.bincount`` sums.

Backends register themselves under a short name (``"baseline"``,
``"omega"``, ``"locked"``, ``"graphpim"``, ``"dynamic"``) so drivers
and the CLI can select them with a string
(:func:`get_backend` / ``run_system(..., backend="omega")``).

The split preserves the scalar semantics exactly: integer counters
are bit-identical to the pre-refactor per-event loops, and per-core
latency sums differ only by float-summation order (≪1e-9 relative).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.obs import get_registry, get_tracer
from repro.obs.timeline import ReplaySampler
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.geometry import BankGeometry
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.prepass import StreamDetector, TracePrepass, precompute
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = [
    "ReplayOutput",
    "ReplayContext",
    "HierarchyBackend",
    "BaselineBackend",
    "OmegaBackend",
    "LockedCacheBackend",
    "GraphPimBackend",
    "DynamicScratchpadBackend",
    "PimConfig",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "backend_names",
    "transfer_latency_many",
    "ROUTE_CACHE",
    "ROUTE_SP_PLAIN",
    "ROUTE_SP_RMW",
    "ROUTE_SP_OFFLOAD",
    "ROUTE_SRCBUF_HIT",
    "ROUTE_LOCKED",
    "ROUTE_PIM",
]

_LOG = logging.getLogger("repro.memsim.engine")

#: Sentinel route value outside every backend's code space; the
#: windowed replay masks out-of-window events with it.
_ROUTE_MASKED = np.int8(-1)

# Route codes assigned by HierarchyBackend.route, one per trace event.
ROUTE_CACHE = 0        #: L1 → L2 → DRAM (the stateful loop)
ROUTE_SP_PLAIN = 1     #: plain scratchpad read/write (word packets)
ROUTE_SP_RMW = 2       #: core-executed RMW on a scratchpad word
ROUTE_SP_OFFLOAD = 3   #: fire-and-forget PISC offload
ROUTE_SRCBUF_HIT = 4   #: absorbed by the source vertex buffer
ROUTE_LOCKED = 5       #: pinned L2 line (locked-cache design)
ROUTE_PIM = 6          #: off-chip PIM atomic (GraphPIM design)


def transfer_latency_many(
    crossbar: Crossbar, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`Crossbar.transfer_latency` (no packet side
    effects — accounting is the caller's job)."""
    cfg = crossbar.config
    src = np.asarray(src, dtype=np.int64)
    if cfg.topology == "crossbar":
        return np.full(len(src), cfg.remote_latency_cycles, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    side = crossbar._mesh_side
    hops = np.abs(src % side - dst % side) + np.abs(src // side - dst // side)
    lat = np.rint(cfg.mesh_router_cycles + hops * cfg.mesh_hop_cycles)
    return lat.astype(np.int64)


@dataclass
class ReplayOutput:
    """Everything a replay produces, for the timing/energy models."""

    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    l1s: List[Cache]
    l2_banks: List[Cache]
    directory: Directory
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    piscs: Optional[List[PiscEngine]] = None


class _CacheSystem:
    """The shared cache path: L1s + banked L2 + directory + DRAM.

    Exposes both the scalar :meth:`access` (seed semantics, used as
    the generic fallback for mesh topologies and open/hybrid DRAM
    page policies) and :meth:`replay_cache_path`, which runs a whole
    pre-routed event subset through a fully inlined loop when the
    configuration allows (crossbar interconnect + closed-page DRAM,
    where every non-cache latency contribution is a constant).
    """

    def __init__(self, config: SimConfig, stats: MemStats,
                 dram: DramModel, crossbar: Crossbar) -> None:
        ncores = config.core.num_cores
        self.config = config
        self.stats = stats
        self.dram = dram
        self.crossbar = crossbar
        self.l1s = [Cache(config.l1, f"l1.{c}") for c in range(ncores)]
        self.l2_banks = [
            Cache(config.l2_per_core, f"l2.{b}") for b in range(ncores)
        ]
        self.directory = Directory(ncores)
        self.ncores = ncores
        self.geometry = BankGeometry(
            num_banks=ncores, line_bytes=config.l1.line_bytes
        )
        # Kept as attributes for backward compatibility; all derived
        # from the shared BankGeometry helper.
        self.bank_mask = self.geometry.bank_mask
        self.bank_bits = self.geometry.bank_bits
        self.line_bytes = self.geometry.line_bytes
        self.line_bits = self.geometry.line_bits
        self.l1_lat = config.l1.latency_cycles
        self.l2_lat = config.l2_per_core.latency_cycles
        self.remote_lat = config.interconnect.remote_latency_cycles
        # An OoO core's stride prefetcher hides the latency of
        # sequential line streams (edgeList scans); the fetch itself
        # (traffic, cache fills) still happens.
        self.prefetcher = StreamDetector(ncores)
        # The inlined batch loop assumes every crossbar hop and every
        # DRAM access has constant latency; other configs take the
        # scalar path.
        self.fast_path_ok = (
            config.interconnect.topology == "crossbar"
            and config.dram.page_policy == "closed"
        )

    def _prefetched(self, core: int, line: int) -> bool:
        """Stride detection: is ``line`` the next line of a live stream?"""
        return self.prefetcher.observe(core, line)

    # ------------------------------------------------------------------
    # Scalar path (generic fallback + external callers)
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, write: bool) -> float:
        """One cache-path access; returns the latency seen by the core."""
        line = addr >> self.line_bits
        stats = self.stats
        l1 = self.l1s[core]
        latency = float(self.l1_lat)
        hit, dirty_victim = l1.access_line(line, write)
        if hit:
            stats.l1_hits += 1
            if write:
                inval_mask, writeback = self.directory.on_write(line, core)
                if inval_mask:
                    latency += self._invalidate(inval_mask, line, core)
                if writeback:
                    latency += self._fetch_modified(line)
            return latency

        stats.l1_misses += 1
        # Coherence action for the fill.
        if write:
            inval_mask, writeback = self.directory.on_write(line, core)
            if inval_mask:
                latency += self._invalidate(inval_mask, line, core)
        else:
            _, writeback = self.directory.on_read(line, core)
        if writeback:
            latency += self._fetch_modified(line)
        if dirty_victim is not None:
            self._writeback_to_l2(dirty_victim, core)
            self.directory.on_eviction(dirty_victim, core)

        # L2 lookup at the line's home bank.
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            latency += self.crossbar.line_transfer(self.line_bytes, core, bank)
            stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        latency += self.l2_lat
        l2hit, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, write)
        if l2hit:
            stats.l2_hits += 1
        else:
            stats.l2_misses += 1
            stats.dram_read_bytes += self.line_bytes
            latency += self.dram.read(self.line_bytes, addr)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            stats.dram_write_bytes += self.line_bytes
        # A stream prefetcher hides the fill latency of sequential line
        # runs; the traffic and cache-state changes above still stand.
        if self.prefetcher.observe(core, line):
            stats.prefetch_hits += 1
            latency = float(self.l1_lat + 1)
        return latency

    def _invalidate(self, inval_mask: int, line: int, writer: int) -> float:
        """Invalidate other cores' L1 copies; returns added latency."""
        stats = self.stats
        latency = 0.0
        mask = inval_mask
        c = 0
        while mask:
            if mask & 1:
                self.l1s[c].invalidate_line(line)
                stats.onchip_word_bytes += self.crossbar.config.header_bytes
                self.crossbar.control_message()
                stats.coherence_invalidations += 1
            mask >>= 1
            c += 1
        # The writer waits one round trip for the acks, not one per copy.
        latency += self.remote_lat
        return latency

    def _fetch_modified(self, line: int) -> float:
        """Cache-to-cache transfer of a modified line."""
        self.stats.onchip_line_bytes += (
            self.line_bytes + self.crossbar.config.header_bytes
        )
        return float(self.crossbar.line_transfer(self.line_bytes))

    def _writeback_to_l2(self, line: int, core: int) -> None:
        """Write a dirty L1 victim back to its L2 bank."""
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            self.crossbar.line_transfer(self.line_bytes, core, bank)
            self.stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        _, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, True)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            self.stats.dram_write_bytes += self.line_bytes

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def replay_cache_path(
        self,
        cores: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        banks: np.ndarray,
        bank_keys: np.ndarray,
        writes: np.ndarray,
        atomics: np.ndarray,
        mem_lat: List[float],
        serial: List[float],
    ) -> None:
        """Replay every cache-routed event (arrays already subset-sliced).

        Per-core memory-latency and serialization sums accumulate into
        ``mem_lat``/``serial``; atomic events get the core-executed
        split (``atomic_serialization`` of the latency serializes, plus
        the fixed stall).
        """
        if len(cores) == 0:
            return
        cores64 = np.asarray(cores, dtype=np.int64)
        writes_l = np.asarray(writes).tolist()
        if self.fast_path_ok:
            lats = self._replay_fast(
                cores64,
                np.asarray(lines, dtype=np.int64),
                np.asarray(banks, dtype=np.int64),
                np.asarray(bank_keys, dtype=np.int64),
                writes_l,
            )
            # Latency accounting happens vectorized, after the loop:
            # the atomic split and per-core sums fold via bincount.
            core_cfg = self.config.core
            ser = core_cfg.atomic_serialization
            stall = core_cfg.atomic_stall_cycles
            atom = np.asarray(atomics, dtype=bool)
            lat = np.asarray(lats)
            n_atomic = int(np.count_nonzero(atom))
            mem = np.where(atom, lat * (1.0 - ser), lat)
            mem_sums = np.bincount(cores64, weights=mem,
                                   minlength=self.ncores)
            for c in range(self.ncores):
                mem_lat[c] += float(mem_sums[c])
            if n_atomic:
                self.stats.atomics_total += n_atomic
                self.stats.atomics_on_cores += n_atomic
                srl = np.where(atom, lat * ser + stall, 0.0)
                ser_sums = np.bincount(cores64, weights=srl,
                                       minlength=self.ncores)
                for c in range(self.ncores):
                    serial[c] += float(ser_sums[c])
        else:
            self._replay_generic(
                cores64.tolist(),
                np.asarray(addrs, dtype=np.int64).tolist(),
                writes_l, np.asarray(atomics).tolist(), mem_lat, serial,
            )

    def _replay_generic(self, cores, addrs, writes, atomics,
                        mem_lat, serial) -> None:
        """Scalar fallback: per-event :meth:`access` (seed semantics)."""
        stats = self.stats
        access = self.access
        core_cfg = self.config.core
        atomic_stall = core_cfg.atomic_stall_cycles
        atomic_ser = core_cfg.atomic_serialization
        for core, addr, write, atomic in zip(cores, addrs, writes, atomics):
            latency = access(core, addr, write)
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

    def _replay_fast(self, cores, lines, banks, bank_keys, writes):
        """Fully inlined cache loop for crossbar + closed-page configs.

        Mirrors :meth:`access` operation-for-operation but keeps every
        counter in a local and touches the cache/directory/prefetcher
        dicts directly, flushing totals back to the model objects once
        at the end. Valid only when all interconnect hops cost
        ``remote_latency_cycles`` and all DRAM accesses cost
        ``latency_cycles`` (checked by ``fast_path_ok``). Returns the
        per-event latency list; the caller folds it into the per-core
        sums vectorized.
        """
        config = self.config
        ncores = self.ncores
        l1_nsets = self.l1s[0]._num_sets
        l1_ways = self.l1s[0]._ways
        l2_nsets = self.l2_banks[0]._num_sets
        l2_ways = self.l2_banks[0]._ways
        l1_sets = [c._sets for c in self.l1s]
        l2_sets = [b._sets for b in self.l2_banks]
        dir_lines = self.directory._lines
        # Prefetcher state, inlined for the L1-miss path (same lists
        # the StreamDetector mutates, so state stays coherent).
        pref = self.prefetcher
        p_heads = pref._heads
        p_next = pref._next
        p_want = pref._want
        num_heads = pref.num_heads
        # Set indices are state-independent: compute them vectorized as
        # flat core-major offsets so each lookup is one list index.
        flat_l1 = [s for c in self.l1s for s in c._sets]
        flat_l2 = [s for b in self.l2_banks for s in b._sets]
        s1i_l = (cores * l1_nsets + lines % l1_nsets).tolist()
        l2i_l = (banks * l2_nsets + bank_keys % l2_nsets).tolist()
        cores_l = cores.tolist()
        lines_l = lines.tolist()
        banks_l = banks.tolist()
        keys_l = bank_keys.tolist()

        l1_lat = float(self.l1_lat)
        pref_lat = float(self.l1_lat + 1)
        l2_lat = self.l2_lat
        remote_lat = self.remote_lat
        dram_lat = config.dram.latency_cycles
        line_bytes = self.line_bytes
        header = self.crossbar.config.header_bytes
        lb_h = line_bytes + header
        bank_mask = self.bank_mask
        bank_bits = self.bank_bits

        l1h = [0] * ncores
        l1m = [0] * ncores
        l1e = [0] * ncores
        l1de = [0] * ncores
        l2h = [0] * ncores
        l2m = [0] * ncores
        l2e = [0] * ncores
        l2de = [0] * ncores
        s_l2_hits = 0
        s_l2_misses = 0
        s_pref = 0
        s_onchip_line = 0
        s_onchip_word = 0
        s_coh_inv = 0
        s_dram_rd = 0
        s_dram_wr = 0
        x_line_pkts = 0
        x_ctrl_pkts = 0
        d_inval = 0
        d_wb = 0
        dram_racc = 0
        dram_wacc = 0

        lats = [l1_lat] * len(cores_l)
        i = -1
        for core, line, write, si in zip(cores_l, lines_l, writes, s1i_l):
            i += 1
            s = flat_l1[si]
            if line in s:
                s.move_to_end(line)
                if write:
                    s[line] = True
                    me = 1 << core
                    entry = dir_lines.get(line)
                    if entry is None:
                        dir_lines[line] = [me, core]
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        extra = 0
                        if others:
                            lsi = line % l1_nsets
                            m = others
                            c = 0
                            while m:
                                if m & 1:
                                    sc = l1_sets[c][lsi]
                                    if line in sc:
                                        del sc[line]
                                    s_onchip_word += header
                                    x_ctrl_pkts += 1
                                    s_coh_inv += 1
                                    d_inval += 1
                                m >>= 1
                                c += 1
                            extra = remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            extra += remote_lat
                        if extra:
                            lats[i] = l1_lat + extra
            else:
                latency = l1_lat
                l1m[core] += 1
                dirty_victim = -1
                if len(s) >= l1_ways:
                    victim_line, was_dirty = s.popitem(last=False)
                    l1e[core] += 1
                    if was_dirty:
                        l1de[core] += 1
                        dirty_victim = victim_line
                s[line] = write
                me = 1 << core
                entry = dir_lines.get(line)
                if write:
                    if entry is None:
                        dir_lines[line] = [me, core]
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        if others:
                            lsi = line % l1_nsets
                            m = others
                            c = 0
                            while m:
                                if m & 1:
                                    sc = l1_sets[c][lsi]
                                    if line in sc:
                                        del sc[line]
                                    s_onchip_word += header
                                    x_ctrl_pkts += 1
                                    s_coh_inv += 1
                                    d_inval += 1
                                m >>= 1
                                c += 1
                            latency += remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += remote_lat
                else:
                    if entry is None:
                        dir_lines[line] = [me, -1]
                    else:
                        mask0, owner = entry
                        if owner >= 0 and owner != core:
                            d_wb += 1
                            entry[1] = -1
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += remote_lat
                        entry[0] = mask0 | me

                if dirty_victim >= 0:
                    vbank = dirty_victim & bank_mask
                    vkey = dirty_victim >> bank_bits
                    if vbank != core:
                        x_line_pkts += 1
                        s_onchip_line += lb_h
                    s2 = l2_sets[vbank][vkey % l2_nsets]
                    if vkey in s2:
                        l2h[vbank] += 1
                        s2.move_to_end(vkey)
                        s2[vkey] = True
                    else:
                        l2m[vbank] += 1
                        if len(s2) >= l2_ways:
                            _v2, d2 = s2.popitem(last=False)
                            l2e[vbank] += 1
                            if d2:
                                l2de[vbank] += 1
                                dram_wacc += 1
                                s_dram_wr += line_bytes
                        s2[vkey] = True
                    entry = dir_lines.get(dirty_victim)
                    if entry is not None:
                        entry[0] &= ~me
                        if entry[1] == core:
                            entry[1] = -1
                        if entry[0] == 0:
                            del dir_lines[dirty_victim]

                bank = banks_l[i]
                if bank != core:
                    latency += remote_lat
                    x_line_pkts += 1
                    s_onchip_line += lb_h
                latency += l2_lat
                bank_key = keys_l[i]
                s2 = flat_l2[l2i_l[i]]
                if bank_key in s2:
                    l2h[bank] += 1
                    s2.move_to_end(bank_key)
                    if write:
                        s2[bank_key] = True
                    s_l2_hits += 1
                else:
                    l2m[bank] += 1
                    dirty2 = -1
                    if len(s2) >= l2_ways:
                        v2, d2 = s2.popitem(last=False)
                        l2e[bank] += 1
                        if d2:
                            l2de[bank] += 1
                            dirty2 = v2
                    s2[bank_key] = write
                    s_l2_misses += 1
                    s_dram_rd += line_bytes
                    dram_racc += 1
                    latency += dram_lat
                    if dirty2 >= 0:
                        dram_wacc += 1
                        s_dram_wr += line_bytes
                # Stream-prefetch detection (StreamDetector.observe,
                # inlined): a line matching some head + 1 counts as
                # prefetched and advances that head; otherwise it
                # replaces a round-robin victim head.
                want = p_want[core]
                slots = want.get(line)
                heads = p_heads[core]
                nxt = line + 1
                if slots:
                    slot = min(slots)
                    slots.remove(slot)
                    if not slots:
                        del want[line]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    s_pref += 1
                    latency = pref_lat
                else:
                    slot = p_next[core]
                    old = heads[slot] + 1
                    stale = want.get(old)
                    if stale:
                        stale.remove(slot)
                        if not stale:
                            del want[old]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    p_next[core] = (slot + 1) % num_heads
                lats[i] = latency

        # Per-core L1 hits fall out of the per-core event counts: the
        # loop only tallies misses, hits are the complement.
        ev_counts = np.bincount(cores, minlength=ncores)
        for c in range(ncores):
            l1h[c] = int(ev_counts[c]) - l1m[c]
        stats = self.stats
        stats.l1_hits += sum(l1h)
        stats.l1_misses += sum(l1m)
        stats.l2_hits += s_l2_hits
        stats.l2_misses += s_l2_misses
        stats.prefetch_hits += s_pref
        stats.onchip_line_bytes += s_onchip_line
        stats.onchip_word_bytes += s_onchip_word
        stats.coherence_invalidations += s_coh_inv
        stats.dram_read_bytes += s_dram_rd
        stats.dram_write_bytes += s_dram_wr
        for c in range(ncores):
            l1 = self.l1s[c]
            l1.hits += l1h[c]
            l1.misses += l1m[c]
            l1.evictions += l1e[c]
            l1.dirty_evictions += l1de[c]
            l2 = self.l2_banks[c]
            l2.hits += l2h[c]
            l2.misses += l2m[c]
            l2.evictions += l2e[c]
            l2.dirty_evictions += l2de[c]
        self.directory.invalidations += d_inval
        self.directory.writebacks += d_wb
        xbar = self.crossbar
        xbar.line_packets += x_line_pkts
        xbar.line_bytes += x_line_pkts * lb_h
        xbar.control_packets += x_ctrl_pkts
        xbar.control_bytes += x_ctrl_pkts * header
        dram = self.dram
        dram.read_accesses += dram_racc
        dram.read_bytes += s_dram_rd
        dram.write_accesses += dram_wacc
        dram.write_bytes += s_dram_wr
        return lats


# ----------------------------------------------------------------------
# Replay context and batch accounting helpers
# ----------------------------------------------------------------------
@dataclass
class ReplayContext:
    """Mutable per-replay state shared between the engine and a backend."""

    config: SimConfig
    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    system: _CacheSystem
    ncores: int
    piscs: Optional[List[PiscEngine]] = None
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    #: Backend-supplied scratchpad home/locality overrides (the dynamic
    #: backend homes by ``vertex % ncores`` instead of the mapping).
    sp_home: Optional[np.ndarray] = None
    sp_local: Optional[np.ndarray] = None
    extra: dict = field(default_factory=dict)


def _add_core_sums(target: List[float], cores: np.ndarray,
                   weights: np.ndarray, ncores: int) -> None:
    """``target[c] += sum(weights where cores == c)`` via bincount."""
    sums = np.bincount(cores, weights=weights, minlength=ncores)
    for c in range(ncores):
        target[c] += float(sums[c])


def _account_latencies(ctx: ReplayContext, cores: np.ndarray,
                       lat: np.ndarray, atomic: np.ndarray) -> None:
    """Fold per-event latencies into the per-core sums.

    Atomic events get the core-executed split: a fraction of the
    latency (plus the fixed stall) serializes the pipeline, the rest
    overlaps as ordinary memory latency.
    """
    stats = ctx.stats
    core_cfg = ctx.config.core
    ser = core_cfg.atomic_serialization
    stall = core_cfg.atomic_stall_cycles
    n_atomic = int(np.count_nonzero(atomic))
    mem = np.where(atomic, lat * (1.0 - ser), lat)
    _add_core_sums(stats.core_mem_latency, cores, mem, ctx.ncores)
    if n_atomic:
        stats.atomics_total += n_atomic
        stats.atomics_on_cores += n_atomic
        srl = np.where(atomic, lat * ser + stall, 0.0)
        _add_core_sums(stats.core_serial_cycles, cores, srl, ctx.ncores)


def _account_sp_plain(ctx: ReplayContext, trace: Trace,
                      prepass: TracePrepass, idx: np.ndarray,
                      home: np.ndarray, local_mask: np.ndarray) -> None:
    """Plain scratchpad reads/writes: word packets, SP latency."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    n_local = n - n_remote
    stats.sp_local_accesses += n_local
    stats.sp_plain_local += n_local
    stats.sp_remote_accesses += n_remote
    stats.sp_plain_remote += n_remote
    lat = np.full(n, float(config.scratchpad.latency_cycles))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header
    _account_latencies(ctx, cores, lat, prepass.atomic[idx])


def _account_sp_rmw(ctx: ReplayContext, trace: Trace,
                    prepass: TracePrepass, idx: np.ndarray,
                    home: np.ndarray, local_mask: np.ndarray) -> None:
    """Core-executed RMW on scratchpad words (OMEGA without PISCs)."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    # Read + write of the word.
    lat = np.full(n, float(config.scratchpad.latency_cycles * 2))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += 2.0 * transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += 2 * n_remote
        ctx.crossbar.word_bytes += 2 * (rbytes + n_remote * header)
        stats.onchip_word_bytes += 2 * (rbytes + n_remote * header)
    _account_latencies(ctx, cores, lat, np.ones(n, dtype=bool))


def _account_offload(ctx: ReplayContext, trace: Trace,
                     prepass: TracePrepass, idx: np.ndarray,
                     microcode: Microcode, home: np.ndarray,
                     local_mask: np.ndarray) -> None:
    """Fire-and-forget PISC offloads: issue cost + pad occupancy."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    n = len(idx)
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    n_atomic = int(np.count_nonzero(prepass.atomic[idx]))
    stats.atomics_total += n_atomic
    stats.atomics_offloaded += n_atomic
    stats.pisc_ops += n
    issue = config.core.offload_issue_cycles
    counts = np.bincount(cores, minlength=ctx.ncores)
    serial = stats.core_serial_cycles
    for c in range(ctx.ncores):
        serial[c] += float(counts[c]) * issue

    homes = np.asarray(home[idx], dtype=np.int64)
    verts = np.asarray(trace.vertex[idx], dtype=np.int64)
    cycles = microcode.cycles
    occupancy = stats.pisc_occupancy
    for p in range(ctx.ncores):
        vs = verts[homes == p]
        cnt = len(vs)
        if not cnt:
            continue
        pisc = ctx.piscs[p]
        pisc.ops_executed += cnt
        pisc.busy_cycles += cnt * cycles
        # Same-vertex back-to-back ops serialize on the pad controller.
        conflicts = int(np.count_nonzero(vs[1:] == vs[:-1]))
        if vs[0] == pisc._last_vertex:
            conflicts += 1
        pisc.conflict_cycles += conflicts * cycles
        pisc._last_vertex = int(vs[-1])
        occupancy[p] += cnt * cycles

    local = local_mask[idx]
    n_remote = int(np.count_nonzero(~local))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    if n_remote:
        header = config.interconnect.header_bytes
        rbytes = int(prepass.nbytes[idx][~local].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header


# ----------------------------------------------------------------------
# Backend protocol + registry
# ----------------------------------------------------------------------
class HierarchyBackend:
    """A memory hierarchy as a routing policy over the shared engine.

    Subclasses validate their configuration in ``__init__``, spin up
    any private structures in :meth:`prepare` (PISCs, source buffers),
    assign one ``ROUTE_*`` code per event in :meth:`route`, and charge
    everything that is not the stateful cache path in :meth:`account`
    (vectorized). The template :meth:`replay` is the engine: it owns
    the pre-pass, the cache stage, and the per-core access counts.
    """

    #: Registry name; set by :func:`register_backend`.
    name = "?"

    #: Debug/benchmark escape hatch: force the per-event scalar cache
    #: loop even when the config qualifies for the inlined batch loop.
    force_scalar_cache = False

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.dram_random_ranges = ()
        self.microcode: Optional[Microcode] = None

    # -- hooks ---------------------------------------------------------
    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        """Mapping used by the pre-pass for hot/home/local columns."""
        return None

    def prepare(self, ctx: ReplayContext) -> None:
        """Create backend-private structures before routing."""

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        """Assign one ROUTE_* code per event (default: all cache)."""
        return np.zeros(prepass.num_events, dtype=np.int8)

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        """Batch-account all non-cache routes (scratchpad family)."""
        home = ctx.sp_home if ctx.sp_home is not None else prepass.home
        local = ctx.sp_local if ctx.sp_local is not None else prepass.local
        _account_sp_plain(
            ctx, trace, prepass, np.flatnonzero(routes == ROUTE_SP_PLAIN),
            home, local,
        )
        _account_sp_rmw(
            ctx, trace, prepass, np.flatnonzero(routes == ROUTE_SP_RMW),
            home, local,
        )
        off = np.flatnonzero(routes == ROUTE_SP_OFFLOAD)
        if len(off):
            _account_offload(
                ctx, trace, prepass, off, self.microcode, home, local
            )

    def finalize(self, ctx: ReplayContext) -> None:
        """Post-accounting fixups (e.g. fold PIM occupancy)."""

    # -- the engine ----------------------------------------------------
    def replay(self, trace: Trace,
               sampler: Optional[ReplaySampler] = None) -> ReplayOutput:
        """Replay ``trace``: pre-pass, route, cache stage, accounting.

        ``sampler`` (a :class:`repro.obs.ReplaySampler`) switches the
        cache stage and the batch accounting to windowed execution:
        every N events the cumulative counters are snapshotted into a
        timeline row. The stateful cache system persists across
        windows and per-route event order is unchanged, so all integer
        counters are identical to the unwindowed replay; per-core
        latency sums differ only by float-summation order.
        """
        tracer = get_tracer()
        metrics = get_registry()
        with tracer.span("replay", cat="replay", backend=self.name,
                         events=trace.num_events) as replay_span:
            with tracer.span("interleave", cat="replay"):
                trace = trace.interleaved()
            config = self.config
            ncores = config.core.num_cores
            stats = MemStats(num_cores=ncores)
            dram = DramModel(config.dram)
            dram.set_random_ranges(self.dram_random_ranges)
            crossbar = Crossbar(config.interconnect, ncores)
            system = _CacheSystem(config, stats, dram, crossbar)
            if self.force_scalar_cache:
                system.fast_path_ok = False
            ctx = ReplayContext(
                config=config, stats=stats, dram=dram, crossbar=crossbar,
                system=system, ncores=ncores,
            )
            self.prepare(ctx)
            with tracer.span("prepass", cat="replay"):
                prepass = precompute(
                    trace, config, mapping=self.prepass_mapping()
                )
            with tracer.span("route", cat="replay"):
                routes = self.route(ctx, trace, prepass)

            cache_idx = np.flatnonzero(routes == ROUTE_CACHE)
            metrics.counter("replay.events").inc(prepass.num_events)
            metrics.counter("replay.cache_events").inc(len(cache_idx))
            metrics.counter("replay.offchip_routed_events").inc(
                prepass.num_events - len(cache_idx)
            )
            if sampler is not None and prepass.num_events:
                self._replay_windowed(
                    ctx, trace, prepass, routes, cache_idx, sampler, tracer
                )
                replay_span.annotate(windows=sampler.timeline().num_windows)
            else:
                with tracer.span("cache_path", cat="replay",
                                 events=len(cache_idx)):
                    if len(cache_idx):
                        system.replay_cache_path(
                            trace.core[cache_idx],
                            trace.addr[cache_idx],
                            prepass.lines[cache_idx],
                            prepass.banks[cache_idx],
                            prepass.bank_keys[cache_idx],
                            prepass.write[cache_idx],
                            prepass.atomic[cache_idx],
                            stats.core_mem_latency,
                            stats.core_serial_cycles,
                        )
                with tracer.span("account", cat="replay"):
                    self.account(ctx, trace, prepass, routes)
            counts = np.bincount(
                np.asarray(trace.core, dtype=np.int64), minlength=ncores
            )
            stats.core_accesses = [int(x) for x in counts]
            self.finalize(ctx)
            _LOG.debug(
                "replayed %d events through %s (%d cache-routed,"
                " l2 hit rate %.4f)",
                prepass.num_events, self.name, len(cache_idx),
                stats.l2_hit_rate,
            )
            return ReplayOutput(
                stats=stats,
                dram=dram,
                crossbar=crossbar,
                l1s=system.l1s,
                l2_banks=system.l2_banks,
                directory=system.directory,
                srcbufs=ctx.srcbufs,
                piscs=ctx.piscs,
            )

    def _replay_windowed(
        self,
        ctx: ReplayContext,
        trace: Trace,
        prepass: TracePrepass,
        routes: np.ndarray,
        cache_idx: np.ndarray,
        sampler: ReplaySampler,
        tracer,
    ) -> None:
        """Windowed cache stage + accounting for timeline sampling.

        Each window replays its cache-routed slice through the shared
        stateful system and batch-accounts its non-cache routes via a
        masked copy of the route array (out-of-window events carry
        ``_ROUTE_MASKED``, which matches no route code), then snapshots
        the cumulative counters into the sampler. Accounting performed
        during :meth:`route` (e.g. source-buffer hits) lands in the
        first window's row.
        """
        n = prepass.num_events
        core = ctx.config.core
        window = sampler.begin(
            n, ctx.ncores, core.compute_cycles_per_access, core.mlp,
            core.imbalance_factor, core.freq_ghz,
        )
        stats = ctx.stats
        system = ctx.system
        masked = np.full(n, _ROUTE_MASKED, dtype=np.int8)
        lo = 0
        while lo < n:
            hi = min(lo + window, n)
            wall_start = time.perf_counter()
            with tracer.span("window", cat="replay", start_event=lo,
                             end_event=hi):
                ci_lo, ci_hi = np.searchsorted(cache_idx, (lo, hi))
                sub = cache_idx[ci_lo:ci_hi]
                if len(sub):
                    system.replay_cache_path(
                        trace.core[sub],
                        trace.addr[sub],
                        prepass.lines[sub],
                        prepass.banks[sub],
                        prepass.bank_keys[sub],
                        prepass.write[sub],
                        prepass.atomic[sub],
                        stats.core_mem_latency,
                        stats.core_serial_cycles,
                    )
                masked[lo:hi] = routes[lo:hi]
                self.account(ctx, trace, prepass, masked)
                masked[lo:hi] = _ROUTE_MASKED
            sampler.record(lo, hi, stats, time.perf_counter() - wall_start)
            lo = hi


#: Registry of backend names → classes (the pluggable surface).
BACKENDS: Dict[str, Type[HierarchyBackend]] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def deco(cls: Type[HierarchyBackend]) -> Type[HierarchyBackend]:
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return deco


def get_backend(name: str) -> Type[HierarchyBackend]:
    """Look up a registered backend class by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; known: {', '.join(sorted(BACKENDS))}"
        ) from None


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(BACKENDS)


# ----------------------------------------------------------------------
# The five hierarchy variants, as routing policies
# ----------------------------------------------------------------------
@register_backend("baseline")
class BaselineBackend(HierarchyBackend):
    """The paper's baseline CMP: caches only, atomics on the cores."""

    def __init__(self, config: SimConfig, dram_random_ranges=()) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "BaselineHierarchy requires a config without scratchpads"
            )
        super().__init__(config)
        #: (start, end) address ranges served close-page under the
        #: "hybrid" DRAM policy (the vtxProp regions).
        self.dram_random_ranges = tuple(dram_random_ranges)


@register_backend("omega")
class OmegaBackend(HierarchyBackend):
    """OMEGA: halved L2 + partitioned scratchpads + PISCs + source buffers."""

    def __init__(
        self,
        config: SimConfig,
        mapping: ScratchpadMapping,
        microcode: Optional[Microcode] = None,
        dram_random_ranges=(),
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "OmegaHierarchy requires a config with use_scratchpad=True"
            )
        super().__init__(config)
        self.mapping = mapping
        self.microcode = microcode
        self.dram_random_ranges = tuple(dram_random_ranges)

    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        return self.mapping

    @property
    def _use_pisc(self) -> bool:
        return self.config.use_pisc and self.microcode is not None

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.piscs = [PiscEngine(p) for p in range(ctx.ncores)]
        if self._use_pisc:
            for p in ctx.piscs:
                p.load_microcode(self.microcode)
        if self.config.use_source_buffer:
            ctx.srcbufs = [
                SourceVertexBuffer(self.config.source_buffer_entries)
                for _ in range(ctx.ncores)
            ]

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        hot = prepass.hot
        # Offload to the PISC: always for atomics; for plain
        # update-function writes only when the pad is remote (a local
        # owner-write is cheaper done by the core). Without PISCs the
        # core performs hot atomics itself over SP word accesses.
        if self._use_pisc:
            taken = hot & (prepass.atomic | (prepass.update & ~prepass.local))
            routes[taken] = ROUTE_SP_OFFLOAD
        else:
            taken = hot & prepass.atomic
            routes[taken] = ROUTE_SP_RMW
        plain = hot & ~taken
        routes[plain] = ROUTE_SP_PLAIN
        if ctx.srcbufs is not None:
            cand = (
                plain & prepass.src_read & ~prepass.write & ~prepass.local
            )
            hits = _srcbuf_stage(ctx, trace, np.flatnonzero(cand))
            routes[hits] = ROUTE_SRCBUF_HIT
        return routes


def _srcbuf_stage(ctx: ReplayContext, trace: Trace,
                  cand_idx: np.ndarray) -> np.ndarray:
    """Run the stateful source-buffer LRU over its candidate events.

    Walks only the candidates (in trace order), applying the wholesale
    barrier invalidations at the positions the full scan would, and
    accounts the hits (1-cycle local reads). Returns the hit indices;
    misses read-allocate and fall through to the plain-SP route.
    """
    srcbufs = ctx.srcbufs
    n = trace.num_events
    barriers = sorted({int(b) for b in trace.barriers.tolist() if 0 <= b < n})
    positions = cand_idx.tolist()
    cores = np.asarray(trace.core[cand_idx], dtype=np.int64).tolist()
    addrs = np.asarray(trace.addr[cand_idx], dtype=np.int64).tolist()
    hits: List[int] = []
    bi = 0
    nb = len(barriers)
    for j in range(len(positions)):
        p = positions[j]
        while bi < nb and barriers[bi] <= p:
            for buf in srcbufs:
                buf.invalidate_all()
            bi += 1
        if srcbufs[cores[j]].lookup(addrs[j]):
            hits.append(p)
    while bi < nb:
        for buf in srcbufs:
            buf.invalidate_all()
        bi += 1
    hit_idx = np.asarray(hits, dtype=np.int64)
    if len(hit_idx):
        stats = ctx.stats
        stats.srcbuf_hits += len(hit_idx)
        hit_cores = np.asarray(trace.core[hit_idx], dtype=np.int64)
        _add_core_sums(
            stats.core_mem_latency, hit_cores,
            np.ones(len(hit_idx)), ctx.ncores,
        )
    return hit_idx


@register_backend("locked")
class LockedCacheBackend(HierarchyBackend):
    """Hot vertices pinned in the L2 via cache-line locking.

    Uses the same popularity partition as OMEGA (``mapping`` decides
    which vertices are "locked"), but a locked access behaves like a
    guaranteed L2 hit at its home bank: L2 latency, plus a crossbar
    *line* transfer whenever the bank is remote — no word-granularity
    packets, no PISC, atomics serialized on the cores.
    """

    def __init__(self, config: SimConfig, mapping: ScratchpadMapping) -> None:
        if config.use_pisc:
            raise SimulationError(
                "LockedCacheHierarchy has no PISCs; pass use_pisc=False"
            )
        super().__init__(config)
        self.mapping = mapping

    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        return self.mapping

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        routes[prepass.hot] = ROUTE_LOCKED
        return routes

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        idx = np.flatnonzero(routes == ROUTE_LOCKED)
        if len(idx) == 0:
            return
        stats = ctx.stats
        config = ctx.config
        n = len(idx)
        cores = np.asarray(trace.core[idx], dtype=np.int64)
        remote = ~prepass.local[idx]
        n_remote = int(np.count_nonzero(remote))
        stats.l2_hits += n
        lat = np.full(n, float(config.l2_per_core.latency_cycles))
        if n_remote:
            # Locked lines move at line granularity; the transfer cost
            # is the topology's endpoint-free average.
            line_bytes = config.l1.line_bytes
            header = config.interconnect.header_bytes
            lat[remote] += ctx.crossbar.transfer_latency()
            ctx.crossbar.line_packets += n_remote
            ctx.crossbar.line_bytes += n_remote * (line_bytes + header)
            stats.onchip_line_bytes += n_remote * (line_bytes + header)
        _account_latencies(ctx, cores, lat, prepass.atomic[idx])


class PimConfig:
    """Parameters of the off-chip PIM atomic units (GraphPIM-style)."""

    def __init__(
        self,
        op_cycles: int = 8,
        units: int = 32,
        bytes_per_op: int = 16,
        issue_cycles: int = 1,
    ) -> None:
        if units <= 0:
            raise SimulationError(f"PIM needs >= 1 unit, got {units}")
        #: DRAM-side read-modify-write latency charged as occupancy.
        self.op_cycles = op_cycles
        #: Number of PIM units (one per vault/channel slice).
        self.units = units
        #: Off-chip bytes per atomic (HMC-style 16-byte atomics).
        self.bytes_per_op = bytes_per_op
        #: Core-side cost of issuing the offload packet.
        self.issue_cycles = issue_cycles


@register_backend("graphpim")
class GraphPimBackend(HierarchyBackend):
    """GraphPIM-style: vtxProp atomics execute in off-chip memory.

    Non-atomic traffic uses the full (baseline-sized) cache hierarchy;
    every vtxProp atomic becomes a fire-and-forget packet to a PIM unit
    chosen by vertex id, costing off-chip bytes and PIM occupancy
    instead of core stalls.
    """

    def __init__(self, config: SimConfig,
                 pim: Optional[PimConfig] = None) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "PimHierarchy uses the full cache hierarchy; pass a"
                " baseline-style config"
            )
        super().__init__(config)
        self.pim = pim or PimConfig()

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.extra["pim_busy"] = [0] * self.pim.units

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        routes[prepass.vtxprop & prepass.atomic] = ROUTE_PIM
        return routes

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        idx = np.flatnonzero(routes == ROUTE_PIM)
        if len(idx) == 0:
            return
        stats = ctx.stats
        pim = self.pim
        n = len(idx)
        cores = np.asarray(trace.core[idx], dtype=np.int64)
        stats.atomics_total += n
        stats.atomics_offloaded += n
        counts = np.bincount(cores, minlength=ctx.ncores)
        serial = stats.core_serial_cycles
        for c in range(ctx.ncores):
            serial[c] += float(counts[c]) * pim.issue_cycles
        verts = np.asarray(trace.vertex[idx], dtype=np.int64)
        units = np.where(verts >= 0, verts % pim.units, 0)
        busy = np.bincount(units, minlength=pim.units) * pim.op_cycles
        pim_busy = ctx.extra["pim_busy"]
        for u in range(pim.units):
            pim_busy[u] += int(busy[u])
        # The atomic's RMW happens in memory: off-chip bytes, no
        # cache-line fetch.
        half = pim.bytes_per_op // 2
        stats.dram_read_bytes += n * half
        stats.dram_write_bytes += n * half
        ctx.dram.read_bytes += n * half
        ctx.dram.write_bytes += n * half
        ctx.dram.read_accesses += n

    def finalize(self, ctx: ReplayContext) -> None:
        # Report PIM occupancy through the same channel the core model
        # reads PISC occupancy from (max over units bounds the run).
        per_core = [0] * ctx.ncores
        for u, busy in enumerate(ctx.extra["pim_busy"]):
            per_core[u % ctx.ncores] += busy
        ctx.stats.pisc_occupancy = per_core


@register_backend("dynamic")
class DynamicScratchpadBackend(HierarchyBackend):
    """Section VI's *dynamic* hot-set identification, made measurable.

    The scratchpads are managed as a frequency-weighted vertex cache:
    any vtxProp access may allocate its vertex into the
    (hash-partitioned) pads, and on conflict the entry with the higher
    running access count stays. Hits behave like OMEGA scratchpad
    accesses (atomics offload to the PISC); misses fall through to the
    cache path and train the frequency counters. Runs on the
    *original* vertex ordering — no preprocessing pass.
    """

    def __init__(
        self,
        config: SimConfig,
        capacity_vertices: int,
        microcode: Optional[Microcode] = None,
        slots_per_set: int = 4,
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "DynamicScratchpadHierarchy needs an OMEGA-style config"
            )
        if capacity_vertices < 0:
            raise SimulationError(
                f"capacity must be >= 0, got {capacity_vertices}"
            )
        if slots_per_set <= 0:
            raise SimulationError(
                f"slots_per_set must be > 0, got {slots_per_set}"
            )
        super().__init__(config)
        self.capacity_vertices = capacity_vertices
        self.microcode = microcode
        self.slots_per_set = slots_per_set

    @property
    def _use_pisc(self) -> bool:
        return self.config.use_pisc and self.microcode is not None

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.piscs = [PiscEngine(p) for p in range(ctx.ncores)]
        if self._use_pisc:
            for p in ctx.piscs:
                p.load_microcode(self.microcode)

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        n = prepass.num_events
        routes = np.zeros(n, dtype=np.int8)
        num_sets = (
            max(1, self.capacity_vertices // self.slots_per_set)
            if self.capacity_vertices > 0
            else 0
        )
        if num_sets == 0 or n == 0:
            return routes
        verts_all = np.asarray(trace.vertex, dtype=np.int64)
        cand = prepass.vtxprop & (verts_all >= 0)
        idx = np.flatnonzero(cand)
        # Frequency training is inherently sequential (the running
        # counts decide victims), but only the vtxProp subset walks it.
        verts = verts_all[idx].tolist()
        slots = self.slots_per_set
        sets: List[dict] = [dict() for _ in range(num_sets)]
        freq: dict = {}
        resident_flags = [False] * len(verts)
        for j, vertex in enumerate(verts):
            count = freq.get(vertex, 0) + 1
            freq[vertex] = count
            entry_set = sets[vertex % num_sets]
            if vertex in entry_set:
                entry_set[vertex] = count
                resident_flags[j] = True
            elif len(entry_set) < slots:
                entry_set[vertex] = count
                resident_flags[j] = True
            else:
                victim = min(entry_set, key=entry_set.get)
                if entry_set[victim] < count:
                    del entry_set[victim]
                    entry_set[vertex] = count
                    resident_flags[j] = True
        resident = np.zeros(n, dtype=bool)
        resident[idx] = resident_flags
        # Dynamic pads hash by vertex id, not by the static chunked map.
        ctx.sp_home = np.where(verts_all >= 0, verts_all % ctx.ncores, 0)
        ctx.sp_local = ctx.sp_home == np.asarray(trace.core, dtype=np.int64)
        if self._use_pisc:
            off = resident & prepass.atomic
            routes[off] = ROUTE_SP_OFFLOAD
            routes[resident & ~off] = ROUTE_SP_PLAIN
        else:
            routes[resident] = ROUTE_SP_PLAIN
        return routes

    def tag_overhead_fraction(self, vtxprop_entry_bytes: int,
                              tag_bytes: int = 4) -> float:
        """Storage overhead of the dynamic approach's per-entry tags.

        The paper's rejection argument: "2x overhead for BFS assuming
        32 bits per tag entry and 32 bits per vtxProp entry".
        """
        if vtxprop_entry_bytes <= 0:
            raise SimulationError(
                f"entry bytes must be > 0, got {vtxprop_entry_bytes}"
            )
        return tag_bytes / vtxprop_entry_bytes
