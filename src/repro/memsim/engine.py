"""Compatibility shim over the layered replay-engine package.

The engine used to live here as one module; it is now split by layer:

- :mod:`repro.memsim.cachestate` — the stateful cache path
  (:class:`CacheSystem`: array-state set-associative model, the batch
  kernel, and the scalar reference oracle behind
  ``REPRO_SCALAR_CACHE=1``);
- :mod:`repro.memsim.routes` — ``ROUTE_*`` codes, vectorized transfer
  latencies, masked-route windowing;
- :mod:`repro.memsim.accounting` — :class:`ReplayContext` and the
  batch (bincount) accounting helpers;
- :mod:`repro.memsim.backends` — one module per hierarchy variant
  plus the registry;
- :mod:`repro.memsim.replay` — the thin driver
  (:func:`repro.memsim.replay.run_replay`).

Every public name that lived here re-exports unchanged, so
``from repro.memsim.engine import HierarchyBackend, get_backend, ...``
keeps working; new code should import from the layer modules.
"""

from __future__ import annotations

import logging

from repro.memsim.accounting import (
    ReplayContext,
    account_latencies as _account_latencies,
    account_offload as _account_offload,
    account_sp_plain as _account_sp_plain,
    account_sp_rmw as _account_sp_rmw,
    add_core_sums as _add_core_sums,
)
from repro.memsim.backends import (
    BACKENDS,
    BaselineBackend,
    DynamicScratchpadBackend,
    GraphPimBackend,
    HierarchyBackend,
    LockedCacheBackend,
    OmegaBackend,
    PimConfig,
    backend_names,
    get_backend,
    register_backend,
)
from repro.memsim.backends.omega import srcbuf_stage as _srcbuf_stage
from repro.memsim.cachestate import CacheSystem as _CacheSystem
from repro.memsim.replay import ReplayOutput
from repro.memsim.routes import (
    ROUTE_CACHE,
    ROUTE_LOCKED,
    ROUTE_MASKED as _ROUTE_MASKED,
    ROUTE_PIM,
    ROUTE_SP_OFFLOAD,
    ROUTE_SP_PLAIN,
    ROUTE_SP_RMW,
    ROUTE_SRCBUF_HIT,
    transfer_latency_many,
)

__all__ = [
    "ReplayOutput",
    "ReplayContext",
    "HierarchyBackend",
    "BaselineBackend",
    "OmegaBackend",
    "LockedCacheBackend",
    "GraphPimBackend",
    "DynamicScratchpadBackend",
    "PimConfig",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "backend_names",
    "transfer_latency_many",
    "ROUTE_CACHE",
    "ROUTE_SP_PLAIN",
    "ROUTE_SP_RMW",
    "ROUTE_SP_OFFLOAD",
    "ROUTE_SRCBUF_HIT",
    "ROUTE_LOCKED",
    "ROUTE_PIM",
]

_LOG = logging.getLogger("repro.memsim.engine")
