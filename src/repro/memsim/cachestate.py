"""The stateful cache path: set-associative state and the batch kernel.

:class:`CacheSystem` owns everything a cache-routed event can touch —
per-core L1s, the banked L2, the MESI directory, the stream
prefetcher, DRAM row state, interconnect accounting — and replays
pre-routed event batches over it. Two execution paths produce
*bit-identical* results:

- the **scalar oracle** (:meth:`CacheSystem.access`, driven by
  :meth:`CacheSystem._replay_generic`): one event per Python
  iteration, the seed semantics. Forced with ``REPRO_SCALAR_CACHE=1``
  in the environment or ``HierarchyBackend.force_scalar_cache``.
- the **batch kernel** (:meth:`CacheSystem._replay_kernel`): a
  vectorized screening pass resolves every *guaranteed hit* in one
  numpy sweep (latency, counters, and LRU effect all known without
  touching state), and only the residual events — those that can
  conflict on a cache set, miss, or carry coherence side effects —
  serialize through the inlined loop.

The batch-segmentation invariant the kernel relies on
(:func:`screen_guaranteed_hits`): an event whose nearest *same-core*
same-line predecessor in the batch is slot-adjacent (no intervening
same-(core, L1-set) event) is a guaranteed L1 hit whose
``move_to_end`` is a no-op — the line is still the set's MRU entry —
so the event has **no state effect at all** and exactly ``l1_latency``
cost. Reads tolerate intervening same-line *reads by other cores*
(a read never invalidates another core's copy and a read hit never
consults the directory); writes require the immediately preceding
same-line event to be a same-core write, so the dirty bit and the
directory's exclusive-owner entry are already established and the
directory transition is idempotent. Such events never enter the
serialized loop; their latency is prefilled and their hit counts fall
out of the per-core complement (events minus misses).

Screening runs to a *generational fixpoint*
(:func:`screen_fixpoint`): a screened event is a total no-op, so
deleting it yields a state-equivalent batch — re-screening the
compacted residual can qualify events whose predecessor chain was
previously interrupted by a now-removed no-op (e.g. the write in a
same-core W,R,W chain only screens once the interleaved read is
gone). Each generation is the same O(n log n) sort machinery over a
shrinking residual, and soundness follows by induction: every
generation's conditions are valid from an *arbitrary* start state, so
they remain valid on the compacted sequence.

The residual is then partitioned into independent conflict groups
(:meth:`CacheSystem._residual_spans`): cores are merged when their
residual events share a line (coherence), share a (bank, L2-set)
slot (LRU interaction), can invalidate a pre-batch sharer's L1, or
can evict a resident occupant another group touches. Groups that
survive the merge provably cannot interact, so the residual replays
group-major — each group a contiguous sub-batch — with per-event
latencies scattered back to original positions, which keeps the
``np.add.at`` per-core float fold bit-identical to batch order. Only
genuinely coupled events (and every batch under an open/hybrid DRAM
page policy, whose row machine serializes globally) stay in one
serialized span.

Unlike the pre-refactor fast path, the kernel covers **every**
interconnect topology and DRAM page policy: mesh hop latencies are
precomputed per (core, bank) pair, and the open/hybrid-page row-buffer
state machine is inlined with per-event channel/row columns computed
vectorized up front.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.config import SimConfig
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.geometry import BankGeometry
from repro.memsim.interconnect import Crossbar
from repro.memsim.prepass import StreamDetector
from repro.memsim.stats import MemStats

__all__ = [
    "CacheRecord",
    "CacheSystem",
    "KernelTelemetry",
    "SCALAR_CACHE_ENV",
    "iter_set_bits",
    "scalar_cache_forced",
    "screen_fixpoint",
    "screen_guaranteed_hits",
    "set_bit_positions",
]

#: Environment variable forcing the scalar reference oracle.
SCALAR_CACHE_ENV = "REPRO_SCALAR_CACHE"


def scalar_cache_forced() -> bool:
    """Whether ``REPRO_SCALAR_CACHE=1`` selects the scalar oracle.

    Deprecated ambient veneer: the environment read delegates to
    :func:`repro.core.context.scalar_cache_from_env`. Runs driven
    through ``run_system`` resolve the flag once on their
    :class:`repro.core.context.RunContext` and pass it explicitly, so
    this is only consulted when :class:`CacheSystem` is constructed
    without an explicit ``scalar_cache`` argument.
    """
    from repro.core.context import scalar_cache_from_env

    return scalar_cache_from_env()


class CacheRecord:
    """Per-event outcome columns of one cache batch (attribution).

    Optional observability sidecar of :meth:`CacheSystem.replay_cache_path`:
    when passed, both execution paths fill one row per event at the
    exact counter-increment sites, so column sums reproduce the batch's
    ``MemStats`` deltas bit-identically. Screened guaranteed hits never
    enter the serialized loop, which is why ``l1_hit`` *defaults* to
    True — only the miss path flips it.

    ``writebacks`` counts dirty-line DRAM write-backs *triggered by*
    the event (an L1-victim's L2 insertion plus the demand miss's own
    L2 eviction can both fire, so the count reaches 2); each one is
    ``line_bytes`` of DRAM write traffic.
    """

    __slots__ = ("l1_hit", "l2_hit", "l2_miss", "prefetch", "writebacks")

    def __init__(self, n: int) -> None:
        self.l1_hit = np.ones(n, dtype=bool)
        self.l2_hit = np.zeros(n, dtype=bool)
        self.l2_miss = np.zeros(n, dtype=bool)
        self.prefetch = np.zeros(n, dtype=bool)
        self.writebacks = np.zeros(n, dtype=np.int64)


def iter_set_bits(mask: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``mask``, LSB first.

    The scalar reference form of the sharer-bitmask walks
    (invalidation targets are the set bits of a directory mask); the
    kernel's invalidation sites use :func:`set_bit_positions` for
    multi-target masks.
    """
    pos = 0
    while mask:
        if mask & 1:
            yield pos
        mask >>= 1
        pos += 1


def set_bit_positions(mask: int) -> np.ndarray:
    """Set-bit positions of ``mask`` as an array, LSB first.

    Vectorized twin of :func:`iter_set_bits` (the oracle-path
    reference): the mask's little-endian bytes unpack to a bit plane
    and ``np.flatnonzero`` reads off the positions in one sweep. Used
    by the kernel's invalidation path when a sharer mask has multiple
    targets.
    """
    if mask <= 0:
        return np.empty(0, dtype=np.int64)
    nbytes = (mask.bit_length() + 7) // 8
    bits = np.unpackbits(
        np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8),
        bitorder="little",
    )
    return np.flatnonzero(bits)


def screen_guaranteed_hits(
    cores: np.ndarray,
    lines: np.ndarray,
    writes: np.ndarray,
    num_sets: int,
) -> np.ndarray:
    """Mark events that provably have *no effect* on cache state.

    Returns a boolean mask over the batch. A marked **read**
    satisfies, within the batch:

    1. its nearest preceding *same-core* event on the same cache line
       exists (that access, hit or miss, left the line resident and
       MRU in this core's L1);
    2. no other event touched the same (core, L1-set) slot in between
       (so the line is still that set's MRU entry: it cannot have been
       evicted, and the LRU touch the event would apply is a no-op);
    3. no *write* to the line intervened (only a write can invalidate
       this core's copy; reads by other cores are transparent — they
       never touch a foreign L1, and a read hit never consults the
       directory).

    A marked **write** satisfies the strict form: the immediately
    preceding same-line event is a same-core *write*, slot-adjacent —
    so the dirty bit is already set and the directory already records
    this core as the exclusive owner, making the write's directory
    transition idempotent with no invalidations or writebacks.

    Such an event is an L1 hit costing exactly ``l1_latency`` whose
    replay changes nothing: the kernel resolves it entirely in this
    vectorized pass and drops it from the serialized loop. Every
    condition is trace-structural — valid from an *arbitrary* start
    state, dependent only on the batch's event order — which is both
    what makes screening a numpy sweep and what makes iterating it
    sound (:func:`screen_fixpoint`).
    """
    n = len(lines)
    out = np.zeros(n, dtype=bool)
    if n < 2:
        return out
    cores = np.asarray(cores, dtype=np.int64)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    slot = cores * num_sets + lines % num_sets
    so = _slot_argsort(slot)
    lo = _line_argsort(lines)
    linepos = np.empty(n, dtype=np.int32)
    cwg = np.empty(n, dtype=np.int32)
    hit = _screen_pass(lines, writes, slot, so, lo, linepos, cwg)
    out[hit] = True
    return out


def _slot_argsort(slot: np.ndarray) -> np.ndarray:
    """Stable argsort of the small-range slot keys.

    Slot ids are bounded by ncores * num_sets, so they almost always
    fit int16 — where numpy's stable sort is a radix sort, several
    times faster than the int64 comparison sort.
    """
    if len(slot) and int(slot.max()) < 32768:
        return np.argsort(slot.astype(np.int16), kind="stable")
    return np.argsort(slot, kind="stable")


def _line_argsort(lines: np.ndarray) -> np.ndarray:
    """Stable argsort of line ids, radix-sorted when the range allows.

    Graph traces touch a compact address window (the vtxProp/CSR
    regions), so line ids usually span far fewer than 2**16 distinct
    values even though their absolute magnitudes are large. Shifting
    by the minimum exposes numpy's uint16 radix sort; wide windows
    fall back to the int64 comparison sort.
    """
    if len(lines):
        lmin = int(lines.min())
        if int(lines.max()) - lmin < 65536:
            return np.argsort(
                (lines - lmin).astype(np.uint16), kind="stable"
            )
    return np.argsort(lines, kind="stable")


def _screen_pass(lines, writes, slot, so, lo, linepos, cwg):
    """One screening generation over sorted views; the shared core of
    :func:`screen_guaranteed_hits` and :func:`screen_fixpoint`.

    ``so``/``lo`` are the residual's batch indices in slot-major and
    line-major stable order; ``linepos``/``cwg`` are caller-provided
    batch-size scratch arrays (stale entries at screened-out positions
    are never read). Returns the batch indices newly screened.

    The slot-major formulation makes both rules two-view: a same-core
    same-line predecessor *is* the slot-predecessor when it is
    slot-adjacent (same core + same line implies same slot). Both
    rules then reduce to comparisons in line-major coordinates — the
    line order groups each line's events contiguously (batch-ordered
    within the group), so for a slot-adjacent same-line pair ``(prev,
    cur)``:

    - *read rule*: no write to the line intervenes iff the cumulative
      write count (one global cumsum over the line order — no group
      reset needed, since positions between two same-line events are
      all same-line) is equal at both positions;
    - *write rule*: nothing at all intervenes on the line iff their
      line positions are adjacent, tightened by "both are writes".
    """
    r = len(so)
    # Line-major pass: per-event line position and running write count.
    cw = cwg[:r]
    np.cumsum(writes[lo], dtype=np.int32, out=cw)
    linepos[lo] = np.arange(r, dtype=np.int32)
    # Slot-major pass: test each event against its slot predecessor.
    ss = slot[so]
    sl = lines[so]
    sw = writes[so]
    p = linepos[so]
    pprev = p[:-1]
    pcur = p[1:]
    base = (ss[1:] == ss[:-1]) & (sl[1:] == sl[:-1])
    ok = base & np.where(
        sw[1:],
        sw[:-1] & (pcur == pprev + 1),
        cw[pcur] == cw[pprev],
    )
    return so[1:][ok]


def screen_fixpoint(
    cores: np.ndarray,
    lines: np.ndarray,
    writes: np.ndarray,
    num_sets: int,
) -> "tuple[np.ndarray, List[int], np.ndarray]":
    """Iterate :func:`screen_guaranteed_hits` to a generational fixpoint.

    A screened event is a total no-op, so deleting it leaves a batch
    whose replay is state-equivalent at every remaining event — and
    the screen's conditions hold from an arbitrary start state, so
    re-screening the compacted residual is sound by induction. Each
    generation rescreens the shrinking residual
    and can qualify events whose predecessor chain was previously
    interrupted by a now-removed no-op (a same-core W,R,W chain
    screens its read in generation 1 and its second write only in
    generation 2, once the read is gone).

    Returns ``(skip, generations, line_order)``: the combined boolean
    mask over the batch, the per-generation screened counts, and the
    surviving residual's batch indices in line-major stable order — a
    byproduct of the incremental iteration that
    :meth:`CacheSystem._residual_spans` reuses to find coherence
    pairs without re-sorting. The batch is
    sorted once; later generations filter the slot-major and
    line-major index arrays in place of re-sorting (removing elements
    preserves sortedness), so each extra generation costs O(residual)
    rather than another sort. Iteration stops at the true fixpoint (a
    generation that screens nothing) or at a diminishing-returns
    cutoff — when a generation resolves less than 1/32 of the residual
    it screened from, the next pass costs more than the loop events it
    would save. The cutoff is deterministic, so replay results are
    still reproducible bit-for-bit; it only leaves some provable
    no-ops to the serialized loop, which handles them correctly
    anyway.
    """
    n = len(lines)
    skip = np.zeros(n, dtype=bool)
    generations: List[int] = []
    if n < 2:
        return skip, generations, np.arange(n, dtype=np.int64)
    cores = np.asarray(cores, dtype=np.int64)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    slot = cores * num_sets + lines % num_sets
    so = _slot_argsort(slot)
    lo = _line_argsort(lines)
    linepos = np.empty(n, dtype=np.int32)
    cwg = np.empty(n, dtype=np.int32)
    while len(so) >= 2:
        before = len(so)
        hit = _screen_pass(lines, writes, slot, so, lo, linepos, cwg)
        c = len(hit)
        if c == 0:
            break
        skip[hit] = True
        generations.append(c)
        keep = ~skip
        so = so[keep[so]]
        lo = lo[keep[lo]]
        if c * 32 < before:
            break
    return skip, generations, lo


class KernelTelemetry:
    """Aggregate screening/grouping counters across a system's batches.

    One instance lives on each :class:`CacheSystem` and accumulates
    over every kernel batch the system replays (all segments and
    windows of a run), so the totals answer "how much of this run's
    cache path was resolved without the serialized loop" — the
    manifest's ``replay.kernel`` block and the Perfetto counter track
    both read from here. The scalar oracle path never touches it:
    ``batches`` stays 0 and the replay block reports mode "scalar".
    """

    __slots__ = ("batches", "events", "screened_per_generation",
                 "grouped_events", "serialized_events", "groups")

    def __init__(self) -> None:
        self.batches = 0
        self.events = 0
        self.screened_per_generation: List[int] = []
        self.grouped_events = 0
        self.serialized_events = 0
        self.groups = 0

    def observe(self, events: int, generations: List[int],
                grouped: int, serialized: int, groups: int) -> None:
        """Fold one kernel batch's screening outcome into the totals."""
        self.batches += 1
        self.events += events
        spg = self.screened_per_generation
        for g, count in enumerate(generations):
            if g < len(spg):
                spg[g] += count
            else:
                spg.append(count)
        self.grouped_events += grouped
        self.serialized_events += serialized
        self.groups += groups

    @property
    def screened(self) -> int:
        """Events resolved by screening alone, across all generations."""
        return sum(self.screened_per_generation)

    @property
    def screened_fraction(self) -> float:
        """Screened share of all kernel-replayed cache events."""
        return self.screened / self.events if self.events else 0.0

    def as_dict(self) -> dict:
        """The manifest shape of the counters (JSON-safe)."""
        return {
            "batches": self.batches,
            "events": self.events,
            "screened": self.screened,
            "screened_fraction": round(self.screened_fraction, 6),
            "screened_per_generation": list(self.screened_per_generation),
            "generations": len(self.screened_per_generation),
            "grouped_events": self.grouped_events,
            "serialized_events": self.serialized_events,
            "groups": self.groups,
        }


class CacheSystem:
    """The shared cache path: L1s + banked L2 + directory + DRAM.

    Exposes both the scalar :meth:`access` (seed semantics, the
    reference oracle) and :meth:`replay_cache_path`, which screens the
    batch for guaranteed hits and serializes only the residual events
    through a fully inlined loop. ``fast_path_ok`` selects the kernel;
    it starts ``False`` only when ``REPRO_SCALAR_CACHE=1`` is set, and
    backends flip it off for ``force_scalar_cache``.
    """

    def __init__(self, config: SimConfig, stats: MemStats,
                 dram: DramModel, crossbar: Crossbar,
                 scalar_cache: Optional[bool] = None) -> None:
        ncores = config.core.num_cores
        self.config = config
        self.stats = stats
        self.dram = dram
        self.crossbar = crossbar
        self.l1s = [Cache(config.l1, f"l1.{c}") for c in range(ncores)]
        self.l2_banks = [
            Cache(config.l2_per_core, f"l2.{b}") for b in range(ncores)
        ]
        self.directory = Directory(ncores)
        self.ncores = ncores
        self.geometry = BankGeometry(
            num_banks=ncores, line_bytes=config.l1.line_bytes
        )
        # Kept as attributes for backward compatibility; all derived
        # from the shared BankGeometry helper.
        self.bank_mask = self.geometry.bank_mask
        self.bank_bits = self.geometry.bank_bits
        self.line_bytes = self.geometry.line_bytes
        self.line_bits = self.geometry.line_bits
        self.l1_lat = config.l1.latency_cycles
        self.l2_lat = config.l2_per_core.latency_cycles
        self.remote_lat = config.interconnect.remote_latency_cycles
        # An OoO core's stride prefetcher hides the latency of
        # sequential line streams (edgeList scans); the fetch itself
        # (traffic, cache fills) still happens.
        self.prefetcher = StreamDetector(ncores)
        #: Whether replay_cache_path may use the batch kernel. The
        #: kernel covers every topology and page policy; only the
        #: escape hatches disable it. ``scalar_cache`` is threaded
        #: from the run's :class:`repro.core.context.RunContext`;
        #: ``None`` (direct construction) falls back to the deprecated
        #: ambient :func:`scalar_cache_forced` veneer.
        if scalar_cache is None:
            scalar_cache = scalar_cache_forced()
        self.fast_path_ok = not scalar_cache
        #: Screening/grouping counters accumulated over every kernel
        #: batch this system replays (see :class:`KernelTelemetry`).
        self.kernel_telemetry = KernelTelemetry()

    def _prefetched(self, core: int, line: int) -> bool:
        """Stride detection: is ``line`` the next line of a live stream?"""
        return self.prefetcher.observe(core, line)

    # ------------------------------------------------------------------
    # Scalar oracle (reference semantics + external callers)
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, write: bool) -> float:
        """One cache-path access; returns the latency seen by the core."""
        line = addr >> self.line_bits
        stats = self.stats
        l1 = self.l1s[core]
        latency = float(self.l1_lat)
        hit, dirty_victim = l1.access_line(line, write)
        if hit:
            stats.l1_hits += 1
            if write:
                inval_mask, writeback = self.directory.on_write(line, core)
                if inval_mask:
                    latency += self._invalidate(inval_mask, line, core)
                if writeback:
                    latency += self._fetch_modified(line)
            return latency

        stats.l1_misses += 1
        # Coherence action for the fill.
        if write:
            inval_mask, writeback = self.directory.on_write(line, core)
            if inval_mask:
                latency += self._invalidate(inval_mask, line, core)
        else:
            _, writeback = self.directory.on_read(line, core)
        if writeback:
            latency += self._fetch_modified(line)
        if dirty_victim is not None:
            self._writeback_to_l2(dirty_victim, core)
            self.directory.on_eviction(dirty_victim, core)

        # L2 lookup at the line's home bank.
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            latency += self.crossbar.line_transfer(self.line_bytes, core, bank)
            stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        latency += self.l2_lat
        l2hit, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, write)
        if l2hit:
            stats.l2_hits += 1
        else:
            stats.l2_misses += 1
            stats.dram_read_bytes += self.line_bytes
            latency += self.dram.read(self.line_bytes, addr)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            stats.dram_write_bytes += self.line_bytes
        # A stream prefetcher hides the fill latency of sequential line
        # runs; the traffic and cache-state changes above still stand.
        if self.prefetcher.observe(core, line):
            stats.prefetch_hits += 1
            latency = float(self.l1_lat + 1)
        return latency

    def _invalidate(self, inval_mask: int, line: int, writer: int) -> float:
        """Invalidate other cores' L1 copies; returns added latency."""
        stats = self.stats
        for c in iter_set_bits(inval_mask):
            self.l1s[c].invalidate_line(line)
            stats.onchip_word_bytes += self.crossbar.config.header_bytes
            self.crossbar.control_message()
            stats.coherence_invalidations += 1
        # The writer waits one round trip for the acks, not one per copy.
        return float(self.remote_lat)

    def _fetch_modified(self, line: int) -> float:
        """Cache-to-cache transfer of a modified line."""
        self.stats.onchip_line_bytes += (
            self.line_bytes + self.crossbar.config.header_bytes
        )
        return float(self.crossbar.line_transfer(self.line_bytes))

    def _writeback_to_l2(self, line: int, core: int) -> None:
        """Write a dirty L1 victim back to its L2 bank."""
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            self.crossbar.line_transfer(self.line_bytes, core, bank)
            self.stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        _, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, True)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            self.stats.dram_write_bytes += self.line_bytes

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def replay_cache_path(
        self,
        cores: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        banks: np.ndarray,
        bank_keys: np.ndarray,
        writes: np.ndarray,
        atomics: np.ndarray,
        mem_lat: List[float],
        serial: List[float],
        record: "CacheRecord" = None,
    ) -> None:
        """Replay every cache-routed event (arrays already subset-sliced).

        Per-core memory-latency and serialization sums accumulate into
        ``mem_lat``/``serial``; atomic events get the core-executed
        split (``atomic_serialization`` of the latency serializes, plus
        the fixed stall). ``record`` (a :class:`CacheRecord` sized to
        the batch) additionally captures per-event outcomes for traffic
        attribution; both paths fill it at the counter-increment sites.
        """
        if len(cores) == 0:
            return
        cores64 = np.asarray(cores, dtype=np.int64)
        if not self.fast_path_ok:
            self._replay_generic(
                cores64.tolist(),
                np.asarray(addrs, dtype=np.int64).tolist(),
                np.asarray(writes).tolist(),
                np.asarray(atomics).tolist(),
                mem_lat, serial, record,
            )
            return
        lats = self._replay_kernel(
            cores64,
            np.asarray(addrs, dtype=np.int64),
            np.asarray(lines, dtype=np.int64),
            np.asarray(banks, dtype=np.int64),
            np.asarray(bank_keys, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            record,
        )
        # Latency accounting happens vectorized, after the loop: the
        # atomic split and per-core sums fold via bincount.
        core_cfg = self.config.core
        ser = core_cfg.atomic_serialization
        stall = core_cfg.atomic_stall_cycles
        atom = np.asarray(atomics, dtype=bool)
        lat = np.asarray(lats)
        n_atomic = int(np.count_nonzero(atom))
        mem = np.where(atom, lat * (1.0 - ser), lat)
        # np.add.at accumulates element-by-element in event order, so
        # the float association matches the scalar oracle exactly even
        # when the batch is a window segment of a longer replay
        # (bincount would fold a partial sum and drift by one ULP).
        mem_sums = np.asarray(mem_lat, dtype=np.float64)
        np.add.at(mem_sums, cores64, mem)
        mem_lat[:] = mem_sums.tolist()
        if n_atomic:
            self.stats.atomics_total += n_atomic
            self.stats.atomics_on_cores += n_atomic
            srl = np.where(atom, lat * ser + stall, 0.0)
            ser_sums = np.asarray(serial, dtype=np.float64)
            np.add.at(ser_sums, cores64, srl)
            serial[:] = ser_sums.tolist()

    def _replay_generic(self, cores, addrs, writes, atomics,
                        mem_lat, serial, record=None) -> None:
        """Scalar oracle: per-event :meth:`access` (seed semantics).

        With ``record`` set, per-event outcomes are recovered by
        differencing the stats counters around each access — the
        oracle-side twin of the kernel's in-loop capture, guaranteed
        to match the aggregate increments by construction.
        """
        stats = self.stats
        access = self.access
        core_cfg = self.config.core
        atomic_stall = core_cfg.atomic_stall_cycles
        atomic_ser = core_cfg.atomic_serialization
        line_bytes = self.line_bytes
        i = -1
        for core, addr, write, atomic in zip(cores, addrs, writes, atomics):
            i += 1
            if record is not None:
                p_l1m = stats.l1_misses
                p_l2h = stats.l2_hits
                p_l2m = stats.l2_misses
                p_pref = stats.prefetch_hits
                p_dw = stats.dram_write_bytes
            latency = access(core, addr, write)
            if record is not None:
                if stats.l1_misses != p_l1m:
                    record.l1_hit[i] = False
                record.l2_hit[i] = stats.l2_hits != p_l2h
                record.l2_miss[i] = stats.l2_misses != p_l2m
                record.prefetch[i] = stats.prefetch_hits != p_pref
                record.writebacks[i] = (
                    (stats.dram_write_bytes - p_dw) // line_bytes
                )
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

    def _replay_kernel(self, cores, addrs, lines, banks, bank_keys, writes,
                       record=None):
        """Screened batch kernel: numpy for guaranteed hits, a
        serialized loop for the residual.

        Mirrors :meth:`access` operation-for-operation on the residual
        events but keeps every counter in a local and touches the
        cache/directory/prefetcher dicts directly, flushing totals back
        to the model objects once at the end. Guaranteed hits
        (:func:`screen_guaranteed_hits`) never enter the loop: their
        latency is prefilled with the L1 latency and their effects are
        provably nil — which is also why ``record`` rows default to
        "L1 hit, nothing else": only the residual miss path writes
        outcome rows, at the same sites the counters increment.
        """
        config = self.config
        ncores = self.ncores
        l1_nsets = self.l1s[0]._num_sets
        l1_ways = self.l1s[0]._ways
        l2_nsets = self.l2_banks[0]._num_sets
        l2_ways = self.l2_banks[0]._ways
        l1_sets = [c._sets for c in self.l1s]
        l2_sets = [b._sets for b in self.l2_banks]
        dir_lines = self.directory._lines
        flat_l1 = [s for c in self.l1s for s in c._sets]
        flat_l2 = [s for b in self.l2_banks for s in b._sets]
        # Prefetcher state, inlined for the L1-miss path (same lists
        # the StreamDetector mutates, so state stays coherent).
        pref = self.prefetcher
        p_heads = pref._heads
        p_next = pref._next
        p_want = pref._want
        num_heads = pref.num_heads

        n = len(cores)
        # The vectorized pass: set indices are state-independent, and
        # the generational screen resolves every guaranteed hit
        # without state.
        s1i = cores * l1_nsets + lines % l1_nsets
        l2i = banks * l2_nsets + bank_keys % l2_nsets
        skip, generations, lo_res = screen_fixpoint(
            cores, lines, writes, l1_nsets
        )
        keep = np.flatnonzero(~skip)
        nkeep = len(keep)

        # Interconnect latencies are per-(core, bank) constants under
        # both topologies; precompute the table the miss path indexes.
        xcfg = self.crossbar.config
        if xcfg.topology == "crossbar":
            bank_lat = [[self.remote_lat] * ncores] * ncores
            wb_lat = self.remote_lat
        else:
            bank_lat = [
                [self.crossbar.transfer_latency(c, b) for b in range(ncores)]
                for c in range(ncores)
            ]
            wb_lat = self.crossbar.transfer_latency()
        # Invalidation acks cost one crossbar round trip regardless of
        # topology (matches _invalidate).
        remote_lat = self.remote_lat

        # DRAM page policy: closed is a constant; open/hybrid run the
        # per-channel row-buffer machine with vectorized per-event
        # channel/row columns (hybrid's random ranges resolved up
        # front; victim write-backs compute theirs in-loop).
        dram = self.dram
        dcfg = config.dram
        closed_page = dcfg.page_policy == "closed"
        dram_lat = dcfg.latency_cycles
        if closed_page:
            track_rows = False
            chan_l = row_l = rand_l = None
            channels = row_bytes = row_hit_cyc = row_miss_cyc = 0
            open_rows = None
            ranges = ()
        else:
            track_rows = True
            channels = dcfg.channels
            row_bytes = dcfg.row_bytes
            row_hit_cyc = dcfg.row_hit_cycles
            row_miss_cyc = dcfg.row_miss_cycles
            open_rows = list(dram._open_rows)
            # Only the hybrid policy consults the random ranges; plain
            # open-page runs the row machine for every access.
            ranges = (
                list(dram._random_ranges)
                if dcfg.page_policy == "hybrid" else []
            )
            kept_addrs = addrs[keep]
            chan_l = ((kept_addrs // 64) % channels).tolist()
            row_l = (kept_addrs // row_bytes).tolist()
            if ranges:
                rand = np.zeros(len(keep), dtype=bool)
                for lo_a, hi_a in ranges:
                    rand |= (kept_addrs >= lo_a) & (kept_addrs < hi_a)
                rand_l = rand.tolist()
            else:
                rand_l = [False] * len(keep)
        rowh = 0
        rowm = 0

        # Residual columns. Under a closed DRAM page (the only policy
        # without a globally serializing row machine) the residual is
        # partitioned into independent conflict groups and replayed
        # group-major: the permutation concatenates each group's
        # events in batch order, which is exactly "replay the groups
        # as independent sub-batches". Latencies scatter back through
        # ``keep`` to original positions, so the np.add.at per-core
        # float fold is bit-identical to batch order.
        kc = cores[keep]
        kl = lines[keep]
        kw = writes[keep]
        ks1 = s1i[keep]
        kb = banks[keep]
        kk = bank_keys[keep]
        kl2 = l2i[keep]
        spans = None
        if closed_page and nkeep > 1 and ncores > 1:
            # Map the fixpoint's surviving line-major order (batch
            # indices) to residual positions, so the span search never
            # re-sorts the lines.
            rpos = np.empty(n, dtype=np.int64)
            rpos[keep] = np.arange(nkeep, dtype=np.int64)
            spans = self._residual_spans(
                kc, kl, kw, kl2, ks1, flat_l1, rpos[lo_res]
            )
        if spans is not None:
            perm = np.concatenate(spans)
            kc = kc[perm]
            kl = kl[perm]
            kw = kw[perm]
            ks1 = ks1[perm]
            kb = kb[perm]
            kk = kk[perm]
            kl2 = kl2[perm]
            keep_res = keep[perm]
        else:
            keep_res = keep
        self.kernel_telemetry.observe(
            events=n,
            generations=generations,
            grouped=nkeep if spans is not None else 0,
            serialized=0 if spans is not None else nkeep,
            groups=(len(spans) if spans is not None
                    else (1 if nkeep else 0)),
        )
        cores_l = kc.tolist()
        lines_l = kl.tolist()
        writes_l = kw.tolist()
        s1i_l = ks1.tolist()
        banks_l = kb.tolist()
        keys_l = kk.tolist()
        l2i_l = kl2.tolist()
        keep_l = keep_res.tolist()

        l1_lat = float(self.l1_lat)
        pref_lat = float(self.l1_lat + 1)
        l2_lat = self.l2_lat
        line_bytes = self.line_bytes
        line_bits = self.line_bits
        header = xcfg.header_bytes
        lb_h = line_bytes + header
        bank_mask = self.bank_mask
        bank_bits = self.bank_bits

        l1h = [0] * ncores
        l1m = [0] * ncores
        l1e = [0] * ncores
        l1de = [0] * ncores
        l2h = [0] * ncores
        l2m = [0] * ncores
        l2e = [0] * ncores
        l2de = [0] * ncores
        s_l2_hits = 0
        s_l2_misses = 0
        s_pref = 0
        s_onchip_line = 0
        s_onchip_word = 0
        s_coh_inv = 0
        s_dram_rd = 0
        s_dram_wr = 0
        x_line_pkts = 0
        x_ctrl_pkts = 0
        d_inval = 0
        d_wb = 0
        dram_racc = 0
        dram_wacc = 0

        def victim_write(vaddr: int) -> None:
            """Row-state effect of a posted victim write-back."""
            nonlocal rowh, rowm
            for lo_a, hi_a in ranges:
                if lo_a <= vaddr < hi_a:
                    return
            ch = (vaddr // 64) % channels
            row = vaddr // row_bytes
            if open_rows[ch] == row:
                rowh += 1
            else:
                rowm += 1
                open_rows[ch] = row

        rec_on = record is not None
        if rec_on:
            r_l1 = record.l1_hit
            r_l2h = record.l2_hit
            r_l2m = record.l2_miss
            r_pref = record.prefetch
            r_wb = record.writebacks

        # Guaranteed hits cost exactly the L1 latency; residual
        # latencies collect in loop order and scatter back through
        # ``keep_res`` once at the end (appending to a list beats
        # per-event ndarray stores, and the prefilled array spares the
        # final list->array conversion the accounting fold would pay).
        lats = np.full(n, l1_lat)
        rl: List[float] = []
        rl_append = rl.append
        for core, line, write, si, bank, bank_key, l2si, ki in zip(
            cores_l, lines_l, writes_l, s1i_l, banks_l, keys_l, l2i_l, keep_l
        ):
            s = flat_l1[si]
            if line in s:
                s.move_to_end(line)
                if not write:
                    rl_append(l1_lat)
                else:
                    s[line] = True
                    me = 1 << core
                    entry = dir_lines.get(line)
                    if entry is None:
                        dir_lines[line] = [me, core]
                        rl_append(l1_lat)
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        extra = 0
                        if others:
                            lsi = line % l1_nsets
                            # Single sharer: direct bit math. Multi-
                            # target masks go through the vectorized
                            # unpackbits/flatnonzero helper.
                            if others & (others - 1):
                                targets = set_bit_positions(others).tolist()
                            else:
                                targets = (others.bit_length() - 1,)
                            for c in targets:
                                sc = l1_sets[c][lsi]
                                if line in sc:
                                    del sc[line]
                                s_onchip_word += header
                                x_ctrl_pkts += 1
                                s_coh_inv += 1
                                d_inval += 1
                            extra = remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            extra += wb_lat
                        rl_append(l1_lat + extra)
            else:
                latency = l1_lat
                l1m[core] += 1
                if rec_on:
                    r_l1[ki] = False
                dirty_victim = -1
                if len(s) >= l1_ways:
                    victim_line, was_dirty = s.popitem(last=False)
                    l1e[core] += 1
                    if was_dirty:
                        l1de[core] += 1
                        dirty_victim = victim_line
                s[line] = write
                me = 1 << core
                entry = dir_lines.get(line)
                if write:
                    if entry is None:
                        dir_lines[line] = [me, core]
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        if others:
                            lsi = line % l1_nsets
                            if others & (others - 1):
                                targets = set_bit_positions(others).tolist()
                            else:
                                targets = (others.bit_length() - 1,)
                            for c in targets:
                                sc = l1_sets[c][lsi]
                                if line in sc:
                                    del sc[line]
                                s_onchip_word += header
                                x_ctrl_pkts += 1
                                s_coh_inv += 1
                                d_inval += 1
                            latency += remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += wb_lat
                else:
                    if entry is None:
                        dir_lines[line] = [me, -1]
                    else:
                        mask0, owner = entry
                        if owner >= 0 and owner != core:
                            d_wb += 1
                            entry[1] = -1
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += wb_lat
                        entry[0] = mask0 | me

                if dirty_victim >= 0:
                    vbank = dirty_victim & bank_mask
                    vkey = dirty_victim >> bank_bits
                    if vbank != core:
                        x_line_pkts += 1
                        s_onchip_line += lb_h
                    s2 = l2_sets[vbank][vkey % l2_nsets]
                    if vkey in s2:
                        l2h[vbank] += 1
                        s2.move_to_end(vkey)
                        s2[vkey] = True
                    else:
                        l2m[vbank] += 1
                        if len(s2) >= l2_ways:
                            v2, d2 = s2.popitem(last=False)
                            l2e[vbank] += 1
                            if d2:
                                l2de[vbank] += 1
                                dram_wacc += 1
                                s_dram_wr += line_bytes
                                if rec_on:
                                    r_wb[ki] += 1
                                if track_rows:
                                    victim_write(
                                        ((v2 << bank_bits) | vbank)
                                        << line_bits
                                    )
                        s2[vkey] = True
                    entry = dir_lines.get(dirty_victim)
                    if entry is not None:
                        entry[0] &= ~me
                        if entry[1] == core:
                            entry[1] = -1
                        if entry[0] == 0:
                            del dir_lines[dirty_victim]

                if bank != core:
                    latency += bank_lat[core][bank]
                    x_line_pkts += 1
                    s_onchip_line += lb_h
                latency += l2_lat
                s2 = flat_l2[l2si]
                if bank_key in s2:
                    l2h[bank] += 1
                    s2.move_to_end(bank_key)
                    if write:
                        s2[bank_key] = True
                    s_l2_hits += 1
                    if rec_on:
                        r_l2h[ki] = True
                else:
                    l2m[bank] += 1
                    dirty2 = -1
                    if len(s2) >= l2_ways:
                        v2, d2 = s2.popitem(last=False)
                        l2e[bank] += 1
                        if d2:
                            l2de[bank] += 1
                            dirty2 = v2
                    s2[bank_key] = write
                    s_l2_misses += 1
                    s_dram_rd += line_bytes
                    dram_racc += 1
                    if rec_on:
                        r_l2m[ki] = True
                    if track_rows:
                        # Exactly one latency is appended per residual
                        # event, so len(rl) (pre-append) is this
                        # event's residual ordinal — no per-iteration
                        # counter needed on the hot paths.
                        i = len(rl)
                        if rand_l[i]:
                            latency += dram_lat
                        else:
                            ch = chan_l[i]
                            row = row_l[i]
                            if open_rows[ch] == row:
                                rowh += 1
                                latency += row_hit_cyc
                            else:
                                rowm += 1
                                open_rows[ch] = row
                                latency += row_miss_cyc
                    else:
                        latency += dram_lat
                    if dirty2 >= 0:
                        dram_wacc += 1
                        s_dram_wr += line_bytes
                        if rec_on:
                            r_wb[ki] += 1
                        if track_rows:
                            victim_write(
                                ((dirty2 << bank_bits) | bank) << line_bits
                            )
                # Stream-prefetch detection (StreamDetector.observe,
                # inlined): a line matching some head + 1 counts as
                # prefetched and advances that head; otherwise it
                # replaces a round-robin victim head.
                want = p_want[core]
                slots = want.get(line)
                heads = p_heads[core]
                nxt = line + 1
                if slots:
                    slot = min(slots)
                    slots.remove(slot)
                    if not slots:
                        del want[line]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    s_pref += 1
                    if rec_on:
                        r_pref[ki] = True
                    latency = pref_lat
                else:
                    slot = p_next[core]
                    old = heads[slot] + 1
                    stale = want.get(old)
                    if stale:
                        stale.remove(slot)
                        if not stale:
                            del want[old]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    p_next[core] = (slot + 1) % num_heads
                rl_append(latency)

        # Per-core L1 hits fall out of the per-core event counts: the
        # loop only tallies misses, hits (screened or residual) are the
        # complement.
        if rl:
            lats[keep_res] = rl

        ev_counts = np.bincount(cores, minlength=ncores)
        for c in range(ncores):
            l1h[c] = int(ev_counts[c]) - l1m[c]
        stats = self.stats
        stats.l1_hits += sum(l1h)
        stats.l1_misses += sum(l1m)
        stats.l2_hits += s_l2_hits
        stats.l2_misses += s_l2_misses
        stats.prefetch_hits += s_pref
        stats.onchip_line_bytes += s_onchip_line
        stats.onchip_word_bytes += s_onchip_word
        stats.coherence_invalidations += s_coh_inv
        stats.dram_read_bytes += s_dram_rd
        stats.dram_write_bytes += s_dram_wr
        for c in range(ncores):
            l1 = self.l1s[c]
            l1.hits += l1h[c]
            l1.misses += l1m[c]
            l1.evictions += l1e[c]
            l1.dirty_evictions += l1de[c]
            l2 = self.l2_banks[c]
            l2.hits += l2h[c]
            l2.misses += l2m[c]
            l2.evictions += l2e[c]
            l2.dirty_evictions += l2de[c]
        self.directory.invalidations += d_inval
        self.directory.writebacks += d_wb
        xbar = self.crossbar
        xbar.line_packets += x_line_pkts
        xbar.line_bytes += x_line_pkts * lb_h
        xbar.control_packets += x_ctrl_pkts
        xbar.control_bytes += x_ctrl_pkts * header
        dram.read_accesses += dram_racc
        dram.read_bytes += s_dram_rd
        dram.write_accesses += dram_wacc
        dram.write_bytes += s_dram_wr
        if track_rows:
            dram.row_hits += rowh
            dram.row_misses += rowm
            dram._open_rows[:] = open_rows
        return lats

    def _residual_spans(self, kc, kl, kw, kl2, ks1, flat_l1, llo):
        """Partition the residual into independent conflict groups.

        Cores are the union-find nodes — every residual event of a
        core shares that core's L1 sets and prefetcher state, so a
        partition of cores induces a partition of events. Two cores
        are merged whenever their residual events could interact:

        - they touch the **same line** (coherence: invalidations,
          owner write-backs, sharer-mask order all matter);
        - they touch the **same (bank, L2-set) slot** (the L2 set's
          LRU order depends on the interleaving of insertions);
        - one **writes a line whose pre-batch directory entry** names
          the other as sharer or owner (the write's invalidation
          deletes the line from that core's L1 set, changing its
          occupancy and future victim choice);
        - one's touched L1 sets hold a **resident occupant line** the
          other accesses, or whose L2 slot the other touches (evicting
          the occupant clears its sharer bit / owner and writes a
          dirty victim into that L2 set — order matters to both).

        Anything not merged provably cannot interact: all remaining
        effects (counter sums, per-event latencies, disjoint dict
        keys, own-bit directory clears on shared entries) commute
        across groups. Returns a list of >= 2 position arrays into the
        residual (each ascending, so batch order is kept within a
        group), or ``None`` when the residual is one coupled group.
        Only called under the closed DRAM page policy — the open and
        hybrid row machines serialize every group through shared
        per-channel row state.

        ``llo`` is the residual's line-major stable order (positions),
        handed down from the screening fixpoint so no re-sort is
        needed here. Sharing pairs come from *adjacent* elements of a
        sorted run — unioning every adjacent pair connects the same
        component as unioning every distinct pair — and the pair ids
        live in an ncores^2 flag plane, so no ``np.unique`` either.
        """
        ncores = self.ncores
        parent = list(range(ncores))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        def merged() -> bool:
            reps = {find(int(c)) for c in present}
            return len(reps) < 2

        present = np.flatnonzero(np.bincount(kc, minlength=ncores))
        if len(present) < 2:
            return None

        pair_flags = np.zeros(ncores * ncores, dtype=bool)
        # (1) cores sharing a line: adjacent cores within each
        # line-major run.
        gl = kl[llo]
        lc = kc[llo]
        same = gl[1:] == gl[:-1]
        pair_flags[lc[:-1][same] * ncores + lc[1:][same]] = True
        # (2) cores sharing a (bank, L2-set) slot: same trick over the
        # slot-major order (small-range keys, radix argsort).
        s2o = _slot_argsort(kl2)
        g2 = kl2[s2o]
        c2 = kc[s2o]
        same2 = g2[1:] == g2[:-1]
        pair_flags[c2[:-1][same2] * ncores + c2[1:][same2]] = True
        for k in np.flatnonzero(pair_flags).tolist():
            a, b = divmod(k, ncores)
            if a != b:
                union(a, b)
        if merged():
            return None

        # (3) pre-batch sharers/owners of written lines: the write's
        # invalidation reaches into their L1 sets. Any writer of the
        # line is a valid representative — step (1) already connected
        # every core touching it.
        dir_lines = self.directory._lines
        gw = kw[llo]
        if np.any(gw):
            wl = gl[gw]
            wc = lc[gw]
            firstw = np.empty(len(wl), dtype=bool)
            firstw[0] = True
            np.not_equal(wl[1:], wl[:-1], out=firstw[1:])
            for line, c in zip(wl[firstw].tolist(), wc[firstw].tolist()):
                entry = dir_lines.get(line)
                if entry is None:
                    continue
                m = entry[0]
                while m:
                    b = m & -m
                    union(c, b.bit_length() - 1)
                    m ^= b
                if entry[1] >= 0:
                    union(c, entry[1])
            if merged():
                return None

        # (4) occupant closure: resident lines of every touched L1 set
        # can be evicted mid-batch.
        l1_nsets = self.l1s[0]._num_sets
        l2_nsets = self.l2_banks[0]._num_sets
        bank_mask = self.bank_mask
        bank_bits = self.bank_bits
        first_l = np.concatenate(([True], gl[1:] != gl[:-1]))
        line_core = dict(zip(gl[first_l].tolist(), lc[first_l].tolist()))
        first_s = np.concatenate(([True], g2[1:] != g2[:-1]))
        slot_core = dict(zip(g2[first_s].tolist(), c2[first_s].tolist()))
        for si in np.flatnonzero(
            np.bincount(ks1, minlength=ncores * l1_nsets)
        ).tolist():
            c = si // l1_nsets
            for occ in flat_l1[si]:
                oc = line_core.get(occ)
                if oc is not None and oc != c:
                    union(c, oc)
                osl = ((occ & bank_mask) * l2_nsets
                       + ((occ >> bank_bits) % l2_nsets))
                ol = slot_core.get(osl)
                if ol is not None and ol != c:
                    union(c, ol)
        if merged():
            return None

        reps = np.asarray([find(c) for c in range(ncores)], dtype=np.int64)
        g = reps[kc]
        order = np.argsort(g, kind="stable")
        gs = g[order]
        cuts = np.flatnonzero(np.concatenate(([True], gs[1:] != gs[:-1])))
        return np.split(order, cuts[1:])
