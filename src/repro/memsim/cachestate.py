"""The stateful cache path: set-associative state and the batch kernel.

:class:`CacheSystem` owns everything a cache-routed event can touch —
per-core L1s, the banked L2, the MESI directory, the stream
prefetcher, DRAM row state, interconnect accounting — and replays
pre-routed event batches over it. Two execution paths produce
*bit-identical* results:

- the **scalar oracle** (:meth:`CacheSystem.access`, driven by
  :meth:`CacheSystem._replay_generic`): one event per Python
  iteration, the seed semantics. Forced with ``REPRO_SCALAR_CACHE=1``
  in the environment or ``HierarchyBackend.force_scalar_cache``.
- the **batch kernel** (:meth:`CacheSystem._replay_kernel`): a
  vectorized screening pass resolves every *guaranteed hit* in one
  numpy sweep (latency, counters, and LRU effect all known without
  touching state), and only the residual events — those that can
  conflict on a cache set, miss, or carry coherence side effects —
  serialize through the inlined loop.

The batch-segmentation invariant the kernel relies on
(:func:`screen_guaranteed_hits`): an event whose *immediately
preceding same-line event in the batch* was issued by the same core
with no intervening same-(core, L1-set) event is a guaranteed L1 hit
whose ``move_to_end`` is a no-op — the line is still the set's MRU
entry — so the event has **no state effect at all** and exactly
``l1_latency`` cost. Writes additionally require that predecessor to
be a write, so the dirty bit and the directory's exclusive-owner
entry are already established and the directory transition is
idempotent. Such events never enter the serialized loop; their
latency is prefilled and their hit counts fall out of the per-core
complement (events minus misses).

Unlike the pre-refactor fast path, the kernel covers **every**
interconnect topology and DRAM page policy: mesh hop latencies are
precomputed per (core, bank) pair, and the open/hybrid-page row-buffer
state machine is inlined with per-event channel/row columns computed
vectorized up front.
"""

from __future__ import annotations

import os
from typing import Iterator, List

import numpy as np

from repro.config import SimConfig
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.geometry import BankGeometry
from repro.memsim.interconnect import Crossbar
from repro.memsim.prepass import StreamDetector
from repro.memsim.stats import MemStats

__all__ = [
    "CacheRecord",
    "CacheSystem",
    "SCALAR_CACHE_ENV",
    "iter_set_bits",
    "scalar_cache_forced",
    "screen_guaranteed_hits",
]

#: Environment variable forcing the scalar reference oracle.
SCALAR_CACHE_ENV = "REPRO_SCALAR_CACHE"


def scalar_cache_forced() -> bool:
    """Whether ``REPRO_SCALAR_CACHE=1`` selects the scalar oracle."""
    return os.environ.get(SCALAR_CACHE_ENV, "") == "1"


class CacheRecord:
    """Per-event outcome columns of one cache batch (attribution).

    Optional observability sidecar of :meth:`CacheSystem.replay_cache_path`:
    when passed, both execution paths fill one row per event at the
    exact counter-increment sites, so column sums reproduce the batch's
    ``MemStats`` deltas bit-identically. Screened guaranteed hits never
    enter the serialized loop, which is why ``l1_hit`` *defaults* to
    True — only the miss path flips it.

    ``writebacks`` counts dirty-line DRAM write-backs *triggered by*
    the event (an L1-victim's L2 insertion plus the demand miss's own
    L2 eviction can both fire, so the count reaches 2); each one is
    ``line_bytes`` of DRAM write traffic.
    """

    __slots__ = ("l1_hit", "l2_hit", "l2_miss", "prefetch", "writebacks")

    def __init__(self, n: int) -> None:
        self.l1_hit = np.ones(n, dtype=bool)
        self.l2_hit = np.zeros(n, dtype=bool)
        self.l2_miss = np.zeros(n, dtype=bool)
        self.prefetch = np.zeros(n, dtype=bool)
        self.writebacks = np.zeros(n, dtype=np.int64)


def iter_set_bits(mask: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``mask``, LSB first.

    The shared form of the sharer-bitmask walks (invalidation targets
    are the set bits of a directory mask).
    """
    pos = 0
    while mask:
        if mask & 1:
            yield pos
        mask >>= 1
        pos += 1


def screen_guaranteed_hits(
    cores: np.ndarray,
    lines: np.ndarray,
    writes: np.ndarray,
    num_sets: int,
) -> np.ndarray:
    """Mark events that provably have *no effect* on cache state.

    Returns a boolean mask over the batch. A marked event satisfies,
    within the batch:

    1. the immediately preceding event on the same cache line was
       issued by the same core (so nothing — no other core's write, no
       invalidation — touched the line in between);
    2. no other event touched the same (core, L1-set) slot in between
       (so the line is still that set's MRU entry: it cannot have been
       evicted, and the LRU touch the event would apply is a no-op);
    3. a write's predecessor is itself a write (so the dirty bit is
       already set and the directory already records this core as the
       exclusive owner — the write's directory transition is
       idempotent and triggers no invalidations or writebacks).

    Such an event is an L1 hit costing exactly ``l1_latency`` whose
    replay changes nothing: the kernel resolves it entirely in this
    vectorized pass and drops it from the serialized loop. All three
    conditions are trace-structural — they depend only on the batch's
    event order, never on cache state — which is what makes screening
    a single numpy sweep.
    """
    n = len(lines)
    out = np.zeros(n, dtype=bool)
    if n < 2:
        return out
    cores = np.asarray(cores, dtype=np.int64)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    # Rank of each event within its (core, L1-set) slot subsequence.
    slot = cores * num_sets + lines % num_sets
    so = np.argsort(slot, kind="stable")
    ss = slot[so]
    starts = np.flatnonzero(np.concatenate(([True], ss[1:] != ss[:-1])))
    sizes = np.diff(np.concatenate((starts, [n])))
    rank = np.empty(n, dtype=np.int64)
    rank[so] = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    # Group by line (stable: within a group, batch order is kept) and
    # test each event against its immediate same-line predecessor.
    lo = np.argsort(lines, kind="stable")
    gl = lines[lo]
    gc = cores[lo]
    gw = writes[lo]
    gr = rank[lo]
    ok = np.zeros(n, dtype=bool)
    ok[1:] = (
        (gl[1:] == gl[:-1])          # same line ...
        & (gc[1:] == gc[:-1])        # ... same core (condition 1)
        & (gr[1:] - gr[:-1] == 1)    # slot-adjacent (condition 2)
        & (~gw[1:] | gw[:-1])        # writes follow writes (condition 3)
    )
    out[lo] = ok
    return out


class CacheSystem:
    """The shared cache path: L1s + banked L2 + directory + DRAM.

    Exposes both the scalar :meth:`access` (seed semantics, the
    reference oracle) and :meth:`replay_cache_path`, which screens the
    batch for guaranteed hits and serializes only the residual events
    through a fully inlined loop. ``fast_path_ok`` selects the kernel;
    it starts ``False`` only when ``REPRO_SCALAR_CACHE=1`` is set, and
    backends flip it off for ``force_scalar_cache``.
    """

    def __init__(self, config: SimConfig, stats: MemStats,
                 dram: DramModel, crossbar: Crossbar) -> None:
        ncores = config.core.num_cores
        self.config = config
        self.stats = stats
        self.dram = dram
        self.crossbar = crossbar
        self.l1s = [Cache(config.l1, f"l1.{c}") for c in range(ncores)]
        self.l2_banks = [
            Cache(config.l2_per_core, f"l2.{b}") for b in range(ncores)
        ]
        self.directory = Directory(ncores)
        self.ncores = ncores
        self.geometry = BankGeometry(
            num_banks=ncores, line_bytes=config.l1.line_bytes
        )
        # Kept as attributes for backward compatibility; all derived
        # from the shared BankGeometry helper.
        self.bank_mask = self.geometry.bank_mask
        self.bank_bits = self.geometry.bank_bits
        self.line_bytes = self.geometry.line_bytes
        self.line_bits = self.geometry.line_bits
        self.l1_lat = config.l1.latency_cycles
        self.l2_lat = config.l2_per_core.latency_cycles
        self.remote_lat = config.interconnect.remote_latency_cycles
        # An OoO core's stride prefetcher hides the latency of
        # sequential line streams (edgeList scans); the fetch itself
        # (traffic, cache fills) still happens.
        self.prefetcher = StreamDetector(ncores)
        #: Whether replay_cache_path may use the batch kernel. The
        #: kernel covers every topology and page policy; only the
        #: escape hatches disable it.
        self.fast_path_ok = not scalar_cache_forced()

    def _prefetched(self, core: int, line: int) -> bool:
        """Stride detection: is ``line`` the next line of a live stream?"""
        return self.prefetcher.observe(core, line)

    # ------------------------------------------------------------------
    # Scalar oracle (reference semantics + external callers)
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, write: bool) -> float:
        """One cache-path access; returns the latency seen by the core."""
        line = addr >> self.line_bits
        stats = self.stats
        l1 = self.l1s[core]
        latency = float(self.l1_lat)
        hit, dirty_victim = l1.access_line(line, write)
        if hit:
            stats.l1_hits += 1
            if write:
                inval_mask, writeback = self.directory.on_write(line, core)
                if inval_mask:
                    latency += self._invalidate(inval_mask, line, core)
                if writeback:
                    latency += self._fetch_modified(line)
            return latency

        stats.l1_misses += 1
        # Coherence action for the fill.
        if write:
            inval_mask, writeback = self.directory.on_write(line, core)
            if inval_mask:
                latency += self._invalidate(inval_mask, line, core)
        else:
            _, writeback = self.directory.on_read(line, core)
        if writeback:
            latency += self._fetch_modified(line)
        if dirty_victim is not None:
            self._writeback_to_l2(dirty_victim, core)
            self.directory.on_eviction(dirty_victim, core)

        # L2 lookup at the line's home bank.
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            latency += self.crossbar.line_transfer(self.line_bytes, core, bank)
            stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        latency += self.l2_lat
        l2hit, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, write)
        if l2hit:
            stats.l2_hits += 1
        else:
            stats.l2_misses += 1
            stats.dram_read_bytes += self.line_bytes
            latency += self.dram.read(self.line_bytes, addr)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            stats.dram_write_bytes += self.line_bytes
        # A stream prefetcher hides the fill latency of sequential line
        # runs; the traffic and cache-state changes above still stand.
        if self.prefetcher.observe(core, line):
            stats.prefetch_hits += 1
            latency = float(self.l1_lat + 1)
        return latency

    def _invalidate(self, inval_mask: int, line: int, writer: int) -> float:
        """Invalidate other cores' L1 copies; returns added latency."""
        stats = self.stats
        for c in iter_set_bits(inval_mask):
            self.l1s[c].invalidate_line(line)
            stats.onchip_word_bytes += self.crossbar.config.header_bytes
            self.crossbar.control_message()
            stats.coherence_invalidations += 1
        # The writer waits one round trip for the acks, not one per copy.
        return float(self.remote_lat)

    def _fetch_modified(self, line: int) -> float:
        """Cache-to-cache transfer of a modified line."""
        self.stats.onchip_line_bytes += (
            self.line_bytes + self.crossbar.config.header_bytes
        )
        return float(self.crossbar.line_transfer(self.line_bytes))

    def _writeback_to_l2(self, line: int, core: int) -> None:
        """Write a dirty L1 victim back to its L2 bank."""
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            self.crossbar.line_transfer(self.line_bytes, core, bank)
            self.stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        _, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, True)
        if l2_dirty_victim is not None:
            victim_addr = self.geometry.victim_addr(l2_dirty_victim, bank)
            self.dram.write(self.line_bytes, victim_addr)
            self.stats.dram_write_bytes += self.line_bytes

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def replay_cache_path(
        self,
        cores: np.ndarray,
        addrs: np.ndarray,
        lines: np.ndarray,
        banks: np.ndarray,
        bank_keys: np.ndarray,
        writes: np.ndarray,
        atomics: np.ndarray,
        mem_lat: List[float],
        serial: List[float],
        record: "CacheRecord" = None,
    ) -> None:
        """Replay every cache-routed event (arrays already subset-sliced).

        Per-core memory-latency and serialization sums accumulate into
        ``mem_lat``/``serial``; atomic events get the core-executed
        split (``atomic_serialization`` of the latency serializes, plus
        the fixed stall). ``record`` (a :class:`CacheRecord` sized to
        the batch) additionally captures per-event outcomes for traffic
        attribution; both paths fill it at the counter-increment sites.
        """
        if len(cores) == 0:
            return
        cores64 = np.asarray(cores, dtype=np.int64)
        if not self.fast_path_ok:
            self._replay_generic(
                cores64.tolist(),
                np.asarray(addrs, dtype=np.int64).tolist(),
                np.asarray(writes).tolist(),
                np.asarray(atomics).tolist(),
                mem_lat, serial, record,
            )
            return
        lats = self._replay_kernel(
            cores64,
            np.asarray(addrs, dtype=np.int64),
            np.asarray(lines, dtype=np.int64),
            np.asarray(banks, dtype=np.int64),
            np.asarray(bank_keys, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            record,
        )
        # Latency accounting happens vectorized, after the loop: the
        # atomic split and per-core sums fold via bincount.
        core_cfg = self.config.core
        ser = core_cfg.atomic_serialization
        stall = core_cfg.atomic_stall_cycles
        atom = np.asarray(atomics, dtype=bool)
        lat = np.asarray(lats)
        n_atomic = int(np.count_nonzero(atom))
        mem = np.where(atom, lat * (1.0 - ser), lat)
        # np.add.at accumulates element-by-element in event order, so
        # the float association matches the scalar oracle exactly even
        # when the batch is a window segment of a longer replay
        # (bincount would fold a partial sum and drift by one ULP).
        mem_sums = np.asarray(mem_lat, dtype=np.float64)
        np.add.at(mem_sums, cores64, mem)
        mem_lat[:] = mem_sums.tolist()
        if n_atomic:
            self.stats.atomics_total += n_atomic
            self.stats.atomics_on_cores += n_atomic
            srl = np.where(atom, lat * ser + stall, 0.0)
            ser_sums = np.asarray(serial, dtype=np.float64)
            np.add.at(ser_sums, cores64, srl)
            serial[:] = ser_sums.tolist()

    def _replay_generic(self, cores, addrs, writes, atomics,
                        mem_lat, serial, record=None) -> None:
        """Scalar oracle: per-event :meth:`access` (seed semantics).

        With ``record`` set, per-event outcomes are recovered by
        differencing the stats counters around each access — the
        oracle-side twin of the kernel's in-loop capture, guaranteed
        to match the aggregate increments by construction.
        """
        stats = self.stats
        access = self.access
        core_cfg = self.config.core
        atomic_stall = core_cfg.atomic_stall_cycles
        atomic_ser = core_cfg.atomic_serialization
        line_bytes = self.line_bytes
        i = -1
        for core, addr, write, atomic in zip(cores, addrs, writes, atomics):
            i += 1
            if record is not None:
                p_l1m = stats.l1_misses
                p_l2h = stats.l2_hits
                p_l2m = stats.l2_misses
                p_pref = stats.prefetch_hits
                p_dw = stats.dram_write_bytes
            latency = access(core, addr, write)
            if record is not None:
                if stats.l1_misses != p_l1m:
                    record.l1_hit[i] = False
                record.l2_hit[i] = stats.l2_hits != p_l2h
                record.l2_miss[i] = stats.l2_misses != p_l2m
                record.prefetch[i] = stats.prefetch_hits != p_pref
                record.writebacks[i] = (
                    (stats.dram_write_bytes - p_dw) // line_bytes
                )
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

    def _replay_kernel(self, cores, addrs, lines, banks, bank_keys, writes,
                       record=None):
        """Screened batch kernel: numpy for guaranteed hits, a
        serialized loop for the residual.

        Mirrors :meth:`access` operation-for-operation on the residual
        events but keeps every counter in a local and touches the
        cache/directory/prefetcher dicts directly, flushing totals back
        to the model objects once at the end. Guaranteed hits
        (:func:`screen_guaranteed_hits`) never enter the loop: their
        latency is prefilled with the L1 latency and their effects are
        provably nil — which is also why ``record`` rows default to
        "L1 hit, nothing else": only the residual miss path writes
        outcome rows, at the same sites the counters increment.
        """
        config = self.config
        ncores = self.ncores
        l1_nsets = self.l1s[0]._num_sets
        l1_ways = self.l1s[0]._ways
        l2_nsets = self.l2_banks[0]._num_sets
        l2_ways = self.l2_banks[0]._ways
        l1_sets = [c._sets for c in self.l1s]
        l2_sets = [b._sets for b in self.l2_banks]
        dir_lines = self.directory._lines
        flat_l1 = [s for c in self.l1s for s in c._sets]
        flat_l2 = [s for b in self.l2_banks for s in b._sets]
        # Prefetcher state, inlined for the L1-miss path (same lists
        # the StreamDetector mutates, so state stays coherent).
        pref = self.prefetcher
        p_heads = pref._heads
        p_next = pref._next
        p_want = pref._want
        num_heads = pref.num_heads

        n = len(cores)
        # The vectorized pass: set indices are state-independent, and
        # the screen resolves every guaranteed hit without state.
        s1i = cores * l1_nsets + lines % l1_nsets
        l2i = banks * l2_nsets + bank_keys % l2_nsets
        skip = screen_guaranteed_hits(cores, lines, writes, l1_nsets)
        keep = np.flatnonzero(~skip)

        # Interconnect latencies are per-(core, bank) constants under
        # both topologies; precompute the table the miss path indexes.
        xcfg = self.crossbar.config
        if xcfg.topology == "crossbar":
            bank_lat = [[self.remote_lat] * ncores] * ncores
            wb_lat = self.remote_lat
        else:
            bank_lat = [
                [self.crossbar.transfer_latency(c, b) for b in range(ncores)]
                for c in range(ncores)
            ]
            wb_lat = self.crossbar.transfer_latency()
        # Invalidation acks cost one crossbar round trip regardless of
        # topology (matches _invalidate).
        remote_lat = self.remote_lat

        # DRAM page policy: closed is a constant; open/hybrid run the
        # per-channel row-buffer machine with vectorized per-event
        # channel/row columns (hybrid's random ranges resolved up
        # front; victim write-backs compute theirs in-loop).
        dram = self.dram
        dcfg = config.dram
        closed_page = dcfg.page_policy == "closed"
        dram_lat = dcfg.latency_cycles
        if closed_page:
            track_rows = False
            chan_l = row_l = rand_l = None
            channels = row_bytes = row_hit_cyc = row_miss_cyc = 0
            open_rows = None
            ranges = ()
        else:
            track_rows = True
            channels = dcfg.channels
            row_bytes = dcfg.row_bytes
            row_hit_cyc = dcfg.row_hit_cycles
            row_miss_cyc = dcfg.row_miss_cycles
            open_rows = list(dram._open_rows)
            # Only the hybrid policy consults the random ranges; plain
            # open-page runs the row machine for every access.
            ranges = (
                list(dram._random_ranges)
                if dcfg.page_policy == "hybrid" else []
            )
            kept_addrs = addrs[keep]
            chan_l = ((kept_addrs // 64) % channels).tolist()
            row_l = (kept_addrs // row_bytes).tolist()
            if ranges:
                rand = np.zeros(len(keep), dtype=bool)
                for lo_a, hi_a in ranges:
                    rand |= (kept_addrs >= lo_a) & (kept_addrs < hi_a)
                rand_l = rand.tolist()
            else:
                rand_l = [False] * len(keep)
        rowh = 0
        rowm = 0

        # Residual (serialized) columns.
        cores_l = cores[keep].tolist()
        lines_l = lines[keep].tolist()
        writes_l = writes[keep].tolist()
        s1i_l = s1i[keep].tolist()
        banks_l = banks[keep].tolist()
        keys_l = bank_keys[keep].tolist()
        l2i_l = l2i[keep].tolist()
        keep_l = keep.tolist()

        l1_lat = float(self.l1_lat)
        pref_lat = float(self.l1_lat + 1)
        l2_lat = self.l2_lat
        line_bytes = self.line_bytes
        line_bits = self.line_bits
        header = xcfg.header_bytes
        lb_h = line_bytes + header
        bank_mask = self.bank_mask
        bank_bits = self.bank_bits

        l1h = [0] * ncores
        l1m = [0] * ncores
        l1e = [0] * ncores
        l1de = [0] * ncores
        l2h = [0] * ncores
        l2m = [0] * ncores
        l2e = [0] * ncores
        l2de = [0] * ncores
        s_l2_hits = 0
        s_l2_misses = 0
        s_pref = 0
        s_onchip_line = 0
        s_onchip_word = 0
        s_coh_inv = 0
        s_dram_rd = 0
        s_dram_wr = 0
        x_line_pkts = 0
        x_ctrl_pkts = 0
        d_inval = 0
        d_wb = 0
        dram_racc = 0
        dram_wacc = 0

        def victim_write(vaddr: int) -> None:
            """Row-state effect of a posted victim write-back."""
            nonlocal rowh, rowm
            for lo_a, hi_a in ranges:
                if lo_a <= vaddr < hi_a:
                    return
            ch = (vaddr // 64) % channels
            row = vaddr // row_bytes
            if open_rows[ch] == row:
                rowh += 1
            else:
                rowm += 1
                open_rows[ch] = row

        rec_on = record is not None
        if rec_on:
            r_l1 = record.l1_hit
            r_l2h = record.l2_hit
            r_l2m = record.l2_miss
            r_pref = record.prefetch
            r_wb = record.writebacks

        # Guaranteed hits cost exactly the L1 latency; the loop only
        # overwrites residual events' entries.
        lats = [l1_lat] * n
        i = -1
        for core, line, write, si in zip(cores_l, lines_l, writes_l, s1i_l):
            i += 1
            s = flat_l1[si]
            if line in s:
                s.move_to_end(line)
                if write:
                    s[line] = True
                    me = 1 << core
                    entry = dir_lines.get(line)
                    if entry is None:
                        dir_lines[line] = [me, core]
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        extra = 0
                        if others:
                            lsi = line % l1_nsets
                            for c in iter_set_bits(others):
                                sc = l1_sets[c][lsi]
                                if line in sc:
                                    del sc[line]
                                s_onchip_word += header
                                x_ctrl_pkts += 1
                                s_coh_inv += 1
                                d_inval += 1
                            extra = remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            extra += wb_lat
                        if extra:
                            lats[keep_l[i]] = l1_lat + extra
            else:
                latency = l1_lat
                l1m[core] += 1
                if rec_on:
                    r_l1[keep_l[i]] = False
                dirty_victim = -1
                if len(s) >= l1_ways:
                    victim_line, was_dirty = s.popitem(last=False)
                    l1e[core] += 1
                    if was_dirty:
                        l1de[core] += 1
                        dirty_victim = victim_line
                s[line] = write
                me = 1 << core
                entry = dir_lines.get(line)
                if write:
                    if entry is None:
                        dir_lines[line] = [me, core]
                    else:
                        mask0, owner = entry
                        others = mask0 & ~me
                        wb = owner >= 0 and owner != core
                        entry[0] = me
                        entry[1] = core
                        if wb:
                            d_wb += 1
                        if others:
                            lsi = line % l1_nsets
                            for c in iter_set_bits(others):
                                sc = l1_sets[c][lsi]
                                if line in sc:
                                    del sc[line]
                                s_onchip_word += header
                                x_ctrl_pkts += 1
                                s_coh_inv += 1
                                d_inval += 1
                            latency += remote_lat
                        if wb:
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += wb_lat
                else:
                    if entry is None:
                        dir_lines[line] = [me, -1]
                    else:
                        mask0, owner = entry
                        if owner >= 0 and owner != core:
                            d_wb += 1
                            entry[1] = -1
                            s_onchip_line += lb_h
                            x_line_pkts += 1
                            latency += wb_lat
                        entry[0] = mask0 | me

                if dirty_victim >= 0:
                    vbank = dirty_victim & bank_mask
                    vkey = dirty_victim >> bank_bits
                    if vbank != core:
                        x_line_pkts += 1
                        s_onchip_line += lb_h
                    s2 = l2_sets[vbank][vkey % l2_nsets]
                    if vkey in s2:
                        l2h[vbank] += 1
                        s2.move_to_end(vkey)
                        s2[vkey] = True
                    else:
                        l2m[vbank] += 1
                        if len(s2) >= l2_ways:
                            v2, d2 = s2.popitem(last=False)
                            l2e[vbank] += 1
                            if d2:
                                l2de[vbank] += 1
                                dram_wacc += 1
                                s_dram_wr += line_bytes
                                if rec_on:
                                    r_wb[keep_l[i]] += 1
                                if track_rows:
                                    victim_write(
                                        ((v2 << bank_bits) | vbank)
                                        << line_bits
                                    )
                        s2[vkey] = True
                    entry = dir_lines.get(dirty_victim)
                    if entry is not None:
                        entry[0] &= ~me
                        if entry[1] == core:
                            entry[1] = -1
                        if entry[0] == 0:
                            del dir_lines[dirty_victim]

                bank = banks_l[i]
                if bank != core:
                    latency += bank_lat[core][bank]
                    x_line_pkts += 1
                    s_onchip_line += lb_h
                latency += l2_lat
                bank_key = keys_l[i]
                s2 = flat_l2[l2i_l[i]]
                if bank_key in s2:
                    l2h[bank] += 1
                    s2.move_to_end(bank_key)
                    if write:
                        s2[bank_key] = True
                    s_l2_hits += 1
                    if rec_on:
                        r_l2h[keep_l[i]] = True
                else:
                    l2m[bank] += 1
                    dirty2 = -1
                    if len(s2) >= l2_ways:
                        v2, d2 = s2.popitem(last=False)
                        l2e[bank] += 1
                        if d2:
                            l2de[bank] += 1
                            dirty2 = v2
                    s2[bank_key] = write
                    s_l2_misses += 1
                    s_dram_rd += line_bytes
                    dram_racc += 1
                    if rec_on:
                        r_l2m[keep_l[i]] = True
                    if track_rows:
                        if rand_l[i]:
                            latency += dram_lat
                        else:
                            ch = chan_l[i]
                            row = row_l[i]
                            if open_rows[ch] == row:
                                rowh += 1
                                latency += row_hit_cyc
                            else:
                                rowm += 1
                                open_rows[ch] = row
                                latency += row_miss_cyc
                    else:
                        latency += dram_lat
                    if dirty2 >= 0:
                        dram_wacc += 1
                        s_dram_wr += line_bytes
                        if rec_on:
                            r_wb[keep_l[i]] += 1
                        if track_rows:
                            victim_write(
                                ((dirty2 << bank_bits) | bank) << line_bits
                            )
                # Stream-prefetch detection (StreamDetector.observe,
                # inlined): a line matching some head + 1 counts as
                # prefetched and advances that head; otherwise it
                # replaces a round-robin victim head.
                want = p_want[core]
                slots = want.get(line)
                heads = p_heads[core]
                nxt = line + 1
                if slots:
                    slot = min(slots)
                    slots.remove(slot)
                    if not slots:
                        del want[line]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    s_pref += 1
                    if rec_on:
                        r_pref[keep_l[i]] = True
                    latency = pref_lat
                else:
                    slot = p_next[core]
                    old = heads[slot] + 1
                    stale = want.get(old)
                    if stale:
                        stale.remove(slot)
                        if not stale:
                            del want[old]
                    heads[slot] = line
                    ws = want.get(nxt)
                    if ws is None:
                        want[nxt] = [slot]
                    else:
                        ws.append(slot)
                    p_next[core] = (slot + 1) % num_heads
                lats[keep_l[i]] = latency

        # Per-core L1 hits fall out of the per-core event counts: the
        # loop only tallies misses, hits (screened or residual) are the
        # complement.
        ev_counts = np.bincount(cores, minlength=ncores)
        for c in range(ncores):
            l1h[c] = int(ev_counts[c]) - l1m[c]
        stats = self.stats
        stats.l1_hits += sum(l1h)
        stats.l1_misses += sum(l1m)
        stats.l2_hits += s_l2_hits
        stats.l2_misses += s_l2_misses
        stats.prefetch_hits += s_pref
        stats.onchip_line_bytes += s_onchip_line
        stats.onchip_word_bytes += s_onchip_word
        stats.coherence_invalidations += s_coh_inv
        stats.dram_read_bytes += s_dram_rd
        stats.dram_write_bytes += s_dram_wr
        for c in range(ncores):
            l1 = self.l1s[c]
            l1.hits += l1h[c]
            l1.misses += l1m[c]
            l1.evictions += l1e[c]
            l1.dirty_evictions += l1de[c]
            l2 = self.l2_banks[c]
            l2.hits += l2h[c]
            l2.misses += l2m[c]
            l2.evictions += l2e[c]
            l2.dirty_evictions += l2de[c]
        self.directory.invalidations += d_inval
        self.directory.writebacks += d_wb
        xbar = self.crossbar
        xbar.line_packets += x_line_pkts
        xbar.line_bytes += x_line_pkts * lb_h
        xbar.control_packets += x_ctrl_pkts
        xbar.control_bytes += x_ctrl_pkts * header
        dram.read_accesses += dram_racc
        dram.read_bytes += s_dram_rd
        dram.write_accesses += dram_wacc
        dram.write_bytes += s_dram_wr
        if track_rows:
            dram.row_hits += rowh
            dram.row_misses += rowm
            dram._open_rows[:] = open_rows
        return lats
