"""Baseline CMP and OMEGA hierarchies (compatibility surface).

Both replay paths now live in the unified engine
(:mod:`repro.memsim.engine`): the baseline and OMEGA hierarchies are
routing policies over the shared :class:`_CacheSystem`, a vectorized
trace pre-pass, and batch accounting. This module re-exports them
under their historical names so existing imports keep working:

- :class:`BaselineHierarchy` — the paper's cache-only CMP
  (``backend="baseline"``),
- :class:`OmegaHierarchy` — scratchpads + PISCs + source buffers
  (``backend="omega"``),
- :class:`ReplayOutput` / :class:`_CacheSystem` — the shared replay
  result and cache path.
"""

from __future__ import annotations

from repro.memsim.engine import (
    BaselineBackend as BaselineHierarchy,
    OmegaBackend as OmegaHierarchy,
    ReplayOutput,
    _CacheSystem,
)

__all__ = ["ReplayOutput", "BaselineHierarchy", "OmegaHierarchy", "_CacheSystem"]
