"""Trace replay through the baseline CMP and OMEGA memory hierarchies.

Both hierarchies share the cache path: private L1s backed by a shared,
line-interleaved banked L2 with a MESI-style directory, a crossbar
between tiles, and DRAM behind the L2. The OMEGA hierarchy adds the
monitor-unit routing: vtxProp accesses to hot (scratchpad-resident)
vertices bypass the caches entirely — atomics become PISC offload
packets, source reads consult the per-core source vertex buffer, and
everything moves at word granularity.

Replay is a single pass over the columnar trace, accumulating
per-core latency/stall sums that the analytic core model then folds
into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import (
    AccessClass,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_UPDATE,
    FLAG_WRITE,
    Trace,
)
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = ["ReplayOutput", "BaselineHierarchy", "OmegaHierarchy"]


@dataclass
class ReplayOutput:
    """Everything a replay produces, for the timing/energy models."""

    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    l1s: List[Cache]
    l2_banks: List[Cache]
    directory: Directory
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    piscs: Optional[List[PiscEngine]] = None


class _CacheSystem:
    """The shared cache path: L1s + banked L2 + directory + DRAM."""

    def __init__(self, config: SimConfig, stats: MemStats,
                 dram: DramModel, crossbar: Crossbar) -> None:
        ncores = config.core.num_cores
        self.config = config
        self.stats = stats
        self.dram = dram
        self.crossbar = crossbar
        self.l1s = [Cache(config.l1, f"l1.{c}") for c in range(ncores)]
        self.l2_banks = [
            Cache(config.l2_per_core, f"l2.{b}") for b in range(ncores)
        ]
        self.directory = Directory(ncores)
        self.ncores = ncores
        # Banking: bank = line low bits; bank-local key drops them.
        self.bank_mask = ncores - 1
        self.bank_bits = max(ncores.bit_length() - 1, 0)
        self.line_bytes = config.l1.line_bytes
        self.line_bits = self.line_bytes.bit_length() - 1
        self.l1_lat = config.l1.latency_cycles
        self.l2_lat = config.l2_per_core.latency_cycles
        self.remote_lat = config.interconnect.remote_latency_cycles
        # Per-core stream-prefetcher state: a few recent stream heads.
        # An OoO core's stride prefetcher hides the latency of
        # sequential line streams (edgeList scans); the fetch itself
        # (traffic, cache fills) still happens.
        self._stream_heads = [[-2] * 16 for _ in range(ncores)]
        self._stream_next = [0] * ncores

    def _prefetched(self, core: int, line: int) -> bool:
        """Stride detection: is ``line`` the next line of a live stream?

        Matching advances the stream head; a miss on all heads starts a
        new stream (round-robin replacement), so the *second* line of
        any sequential run and onward count as prefetched.
        """
        heads = self._stream_heads[core]
        for i, head in enumerate(heads):
            if line == head + 1:
                heads[i] = line
                return True
        slot = self._stream_next[core]
        heads[slot] = line
        self._stream_next[core] = (slot + 1) % len(heads)
        return False

    def access(self, core: int, addr: int, write: bool) -> float:
        """One cache-path access; returns the latency seen by the core."""
        line = addr >> self.line_bits
        stats = self.stats
        l1 = self.l1s[core]
        latency = float(self.l1_lat)
        hit, dirty_victim = l1.access_line(line, write)
        if hit:
            stats.l1_hits += 1
            if write:
                inval_mask, writeback = self.directory.on_write(line, core)
                if inval_mask:
                    latency += self._invalidate(inval_mask, line, core)
                if writeback:
                    latency += self._fetch_modified(line)
            return latency

        stats.l1_misses += 1
        # Coherence action for the fill.
        if write:
            inval_mask, writeback = self.directory.on_write(line, core)
            if inval_mask:
                latency += self._invalidate(inval_mask, line, core)
        else:
            _, writeback = self.directory.on_read(line, core)
        if writeback:
            latency += self._fetch_modified(line)
        if dirty_victim is not None:
            self._writeback_to_l2(dirty_victim, core)
            self.directory.on_eviction(dirty_victim, core)

        # L2 lookup at the line's home bank.
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            latency += self.crossbar.line_transfer(self.line_bytes, core, bank)
            stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        latency += self.l2_lat
        l2hit, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, write)
        if l2hit:
            stats.l2_hits += 1
        else:
            stats.l2_misses += 1
            stats.dram_read_bytes += self.line_bytes
            latency += self.dram.read(self.line_bytes, addr)
        if l2_dirty_victim is not None:
            victim_addr = (l2_dirty_victim << self.bank_bits | bank) << self.line_bits
            self.dram.write(self.line_bytes, victim_addr)
            stats.dram_write_bytes += self.line_bytes
        # A stream prefetcher hides the fill latency of sequential line
        # runs; the traffic and cache-state changes above still stand.
        if self._prefetched(core, line):
            stats.prefetch_hits += 1
            latency = float(self.l1_lat + 1)
        return latency

    def _invalidate(self, inval_mask: int, line: int, writer: int) -> float:
        """Invalidate other cores' L1 copies; returns added latency."""
        stats = self.stats
        latency = 0.0
        mask = inval_mask
        c = 0
        while mask:
            if mask & 1:
                self.l1s[c].invalidate_line(line)
                stats.onchip_word_bytes += self.crossbar.config.header_bytes
                self.crossbar.control_message()
                stats.coherence_invalidations += 1
            mask >>= 1
            c += 1
        # The writer waits one round trip for the acks, not one per copy.
        latency += self.remote_lat
        return latency

    def _fetch_modified(self, line: int) -> float:
        """Cache-to-cache transfer of a modified line."""
        self.stats.onchip_line_bytes += (
            self.line_bytes + self.crossbar.config.header_bytes
        )
        return float(self.crossbar.line_transfer(self.line_bytes))

    def _writeback_to_l2(self, line: int, core: int) -> None:
        """Write a dirty L1 victim back to its L2 bank."""
        bank = line & self.bank_mask
        bank_key = line >> self.bank_bits
        if bank != core:
            self.crossbar.line_transfer(self.line_bytes, core, bank)
            self.stats.onchip_line_bytes += (
                self.line_bytes + self.crossbar.config.header_bytes
            )
        _, l2_dirty_victim = self.l2_banks[bank].access_line(bank_key, True)
        if l2_dirty_victim is not None:
            victim_addr = (l2_dirty_victim << self.bank_bits | bank) << self.line_bits
            self.dram.write(self.line_bytes, victim_addr)
            self.stats.dram_write_bytes += self.line_bytes


class BaselineHierarchy:
    """The paper's baseline CMP: caches only, atomics on the cores."""

    def __init__(self, config: SimConfig, dram_random_ranges=()) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "BaselineHierarchy requires a config without scratchpads"
            )
        self.config = config
        #: (start, end) address ranges served close-page under the
        #: "hybrid" DRAM policy (the vtxProp regions).
        self.dram_random_ranges = tuple(dram_random_ranges)

    def replay(self, trace: Trace) -> ReplayOutput:
        """Replay ``trace`` and return all models' end state."""
        trace = trace.interleaved()
        config = self.config
        stats = MemStats(num_cores=config.core.num_cores)
        dram = DramModel(config.dram)
        dram.set_random_ranges(self.dram_random_ranges)
        crossbar = Crossbar(config.interconnect, config.core.num_cores)
        system = _CacheSystem(config, stats, dram, crossbar)

        cores = trace.core.tolist()
        addrs = trace.addr.tolist()
        flags = trace.flags.tolist()
        mem_lat = stats.core_mem_latency
        serial = stats.core_serial_cycles
        accesses = stats.core_accesses
        atomic_stall = config.core.atomic_stall_cycles
        atomic_ser = config.core.atomic_serialization
        access = system.access

        for i in range(len(cores)):
            core = cores[i]
            f = flags[i]
            write = bool(f & FLAG_WRITE)
            latency = access(core, addrs[i], write)
            accesses[core] += 1
            if f & FLAG_ATOMIC:
                # A core-executed atomic serializes the pipeline for
                # most of the RMW round trip (a fraction overlaps with
                # atomics to independent lines).
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
        )


class OmegaHierarchy:
    """OMEGA: halved L2 + partitioned scratchpads + PISCs + source buffers."""

    def __init__(
        self,
        config: SimConfig,
        mapping: ScratchpadMapping,
        microcode: Optional[Microcode] = None,
        dram_random_ranges=(),
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "OmegaHierarchy requires a config with use_scratchpad=True"
            )
        self.config = config
        self.mapping = mapping
        self.microcode = microcode
        self.dram_random_ranges = tuple(dram_random_ranges)

    def replay(self, trace: Trace) -> ReplayOutput:
        """Replay ``trace`` with monitor-unit routing to the scratchpads."""
        trace = trace.interleaved()
        config = self.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        dram.set_random_ranges(self.dram_random_ranges)
        crossbar = Crossbar(config.interconnect, ncores)
        system = _CacheSystem(config, stats, dram, crossbar)

        use_pisc = config.use_pisc and self.microcode is not None
        piscs = [PiscEngine(p) for p in range(ncores)]
        if use_pisc:
            for p in piscs:
                p.load_microcode(self.microcode)
        srcbufs = (
            [SourceVertexBuffer(config.source_buffer_entries) for _ in range(ncores)]
            if config.use_source_buffer
            else None
        )

        cores = trace.core.tolist()
        addrs = trace.addr.tolist()
        sizes = trace.size.tolist()
        classes = trace.access_class.tolist()
        flags = trace.flags.tolist()
        vertices = trace.vertex.tolist()
        barriers = trace.barriers.tolist()
        barrier_set = set(barriers) if srcbufs is not None else set()

        mem_lat = stats.core_mem_latency
        serial = stats.core_serial_cycles
        accesses = stats.core_accesses
        occupancy = stats.pisc_occupancy
        access = system.access

        vtxprop = int(AccessClass.VTXPROP)
        sp_lat = config.scratchpad.latency_cycles
        remote_lat = config.interconnect.remote_latency_cycles
        header = config.interconnect.header_bytes
        offload_issue = config.core.offload_issue_cycles
        atomic_stall = config.core.atomic_stall_cycles
        atomic_ser = config.core.atomic_serialization
        mapping = self.mapping
        hot_capacity = mapping.hot_capacity
        chunk = mapping.chunk_size

        for i in range(len(cores)):
            if barrier_set and i in barrier_set:
                for buf in srcbufs:
                    buf.invalidate_all()
            core = cores[i]
            f = flags[i]
            write = bool(f & FLAG_WRITE)
            atomic = bool(f & FLAG_ATOMIC)
            vertex = vertices[i]
            accesses[core] += 1

            if classes[i] == vtxprop and 0 <= vertex < hot_capacity:
                # Monitor unit matched: scratchpad path.
                home = (vertex // chunk) % ncores
                local = home == core
                nbytes = min(sizes[i], 8)
                # Offload to the PISC: always for atomics; for plain
                # update-function writes only when the pad is remote
                # (a local owner-write is cheaper done by the core).
                if atomic or (use_pisc and (f & FLAG_UPDATE) and not local):
                    if atomic:
                        stats.atomics_total += 1
                    if use_pisc:
                        # Fire-and-forget offload: the core only pays
                        # the issue cost; the op runs on the home PISC.
                        if atomic:
                            stats.atomics_offloaded += 1
                        stats.pisc_ops += 1
                        serial[core] += offload_issue
                        occupancy[home] += piscs[home].execute(vertex)
                        if local:
                            stats.sp_local_accesses += 1
                        else:
                            stats.sp_remote_accesses += 1
                            crossbar.word_transfer(nbytes, core, home)
                            stats.onchip_word_bytes += nbytes + header
                        continue
                    # Scratchpads without PISC: the core performs the
                    # RMW itself over word-granularity SP accesses.
                    stats.atomics_on_cores += 1
                    lat = float(sp_lat * 2)  # read + write
                    if local:
                        stats.sp_local_accesses += 1
                    else:
                        stats.sp_remote_accesses += 1
                        lat += 2 * crossbar.transfer_latency(core, home)
                        crossbar.word_transfer(nbytes, core, home)
                        crossbar.word_transfer(nbytes, home, core)
                        stats.onchip_word_bytes += 2 * (nbytes + header)
                    serial[core] += lat * atomic_ser + atomic_stall
                    mem_lat[core] += lat * (1.0 - atomic_ser)
                    continue

                if (
                    srcbufs is not None
                    and (f & FLAG_SRC_READ)
                    and not write
                    and not local
                ):
                    if srcbufs[core].lookup(addrs[i]):
                        stats.srcbuf_hits += 1
                        mem_lat[core] += 1.0
                        continue
                # Plain scratchpad read/write.
                lat = float(sp_lat)
                if local:
                    stats.sp_local_accesses += 1
                    stats.sp_plain_local += 1
                else:
                    stats.sp_remote_accesses += 1
                    stats.sp_plain_remote += 1
                    lat += crossbar.transfer_latency(core, home)
                    crossbar.word_transfer(nbytes, core, home)
                    stats.onchip_word_bytes += nbytes + header
                mem_lat[core] += lat
                continue

            # Cache path (cold vtxProp, edgeList, nGraphData).
            latency = access(core, addrs[i], write)
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
            srcbufs=srcbufs,
            piscs=piscs,
        )
