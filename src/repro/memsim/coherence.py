"""Simplified MESI directory for the private L1s.

Tracks, per cache line, which cores hold a copy and whether one of
them holds it modified. The replay charges the classic MESI costs:

- a read of a line modified in another L1 forces a write-back
  (line-sized on-chip transfer plus latency),
- a write/atomic invalidates all other sharers (one control packet
  each), which is the coherence ping-pong that makes core-side atomics
  on shared vertex data expensive on the baseline CMP.

State is a dict line → (sharer bitmask, owner). Lines evicted from an
L1 are lazily removed on the next directory action, which slightly
overestimates sharing — a conservative choice that favors the
*baseline* (OMEGA's scratchpad traffic never touches the directory).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["Directory", "CoherenceOutcome"]

#: (invalidated_cores_mask, writeback_needed)
CoherenceOutcome = Tuple[int, bool]


class Directory:
    """MESI-style sharer tracking for one chip's private L1s."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        # line -> [sharer_mask, owner_core_or_-1 (modified holder)]
        self._lines: Dict[int, list] = {}
        self.invalidations = 0
        self.writebacks = 0

    def on_read(self, line: int, core: int) -> CoherenceOutcome:
        """Core ``core`` reads ``line``; returns (inval_mask, writeback)."""
        entry = self._lines.get(line)
        if entry is None:
            self._lines[line] = [1 << core, -1]
            return 0, False
        mask, owner = entry
        writeback = owner >= 0 and owner != core
        if writeback:
            self.writebacks += 1
            entry[1] = -1  # downgrade M -> S
        entry[0] = mask | (1 << core)
        return 0, writeback

    def on_write(self, line: int, core: int) -> CoherenceOutcome:
        """Core ``core`` writes ``line``; returns (inval_mask, writeback).

        ``inval_mask`` has a bit set for every *other* core whose L1
        copy must be invalidated; the caller drops those lines from the
        corresponding caches.
        """
        entry = self._lines.get(line)
        me = 1 << core
        if entry is None:
            self._lines[line] = [me, core]
            return 0, False
        mask, owner = entry
        others = mask & ~me
        writeback = owner >= 0 and owner != core
        if writeback:
            self.writebacks += 1
        if others:
            self.invalidations += bin(others).count("1")
        entry[0] = me
        entry[1] = core
        return others, writeback

    def on_eviction(self, line: int, core: int) -> None:
        """Core ``core`` evicted ``line`` from its L1."""
        entry = self._lines.get(line)
        if entry is None:
            return
        entry[0] &= ~(1 << core)
        if entry[1] == core:
            entry[1] = -1
        if entry[0] == 0:
            del self._lines[line]

    def sharers(self, line: int) -> int:
        """Number of cores currently holding ``line``."""
        entry = self._lines.get(line)
        return bin(entry[0]).count("1") if entry else 0

    def is_modified(self, line: int) -> bool:
        """Whether some core holds ``line`` in modified state."""
        entry = self._lines.get(line)
        return entry is not None and entry[1] >= 0
