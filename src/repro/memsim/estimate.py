"""Analytic fast-path estimator: predict replay counters without replay.

The replay engine's cost is its stateful cache kernel. This module
predicts the MemStats-level headline counters — cache hit rates, DRAM
read traffic, scratchpad/offload shares — from trace *structure*
alone, in a handful of vectorized passes:

1. The real pre-pass and routing stages run exactly as in
   :func:`repro.memsim.replay.run_replay` (so scratchpad, offload,
   source-buffer, locked-region and PIM shares are **exact**: routing
   is a pure function of the trace and the backend's training state,
   not of cache contents).
2. Cache-routed events go through a *reuse-gap* model instead of the
   stateful kernel: in per-(core, L1-set) slot-major order, an access
   is predicted to hit iff its previous same-line occurrence in the
   same slot is at most ``ways`` slot-accesses away. First touches are
   misses. The same rule, applied to the predicted-miss subsequence in
   (bank, L2-set) slots with the L2's associativity, predicts L2 hits.
3. Predicted DRAM read traffic is the predicted L2 miss count times
   the line size; write traffic uses the write-triggered subset of
   those misses as a dirty-eviction proxy.

The model is deliberately *approximate* where the kernel is stateful:
the reuse gap counts slot accesses rather than distinct intervening
lines (a pessimistic bias — repeats inflate the gap), there is no
cross-core coherence (invalidations make the model optimistic for
write-shared lines), no prefetcher, and no warm state across calls.
``docs/performance.md`` documents the measured error envelope; the
property suite (``tests/property/test_estimate.py``) pins the
conservation invariants that hold regardless of workload.

Determinism (DET001): this module takes no wall-clock time and draws
no randomness — identical inputs give identical estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.config import SimConfig
from repro.ligra.trace import Trace
from repro.memsim.accounting import LatencyLedger, ReplayContext
from repro.memsim.cachestate import CacheSystem, _slot_argsort
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.prepass import precompute
from repro.memsim.routes import (
    ROUTE_CACHE,
    ROUTE_LOCKED,
    ROUTE_PIM,
    ROUTE_SP_OFFLOAD,
    ROUTE_SP_PLAIN,
    ROUTE_SP_RMW,
    ROUTE_SRCBUF_HIT,
)
from repro.memsim.stats import MemStats

__all__ = ["ReplayEstimate", "estimate_replay", "predict_slot_hits"]


@dataclass
class ReplayEstimate:
    """Predicted headline counters for one (backend, trace) pair.

    Route-derived fields (``sp_*``, ``offloads``, ``srcbuf_hits``,
    ``locked_events``, ``pim_events``) are exact; cache-level fields
    (``l1_*``, ``l2_*``, ``dram_*``) come from the reuse-gap model.
    """

    events: int = 0
    cache_events: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    sp_plain: int = 0
    sp_rmw: int = 0
    offloads: int = 0
    srcbuf_hits: int = 0
    locked_events: int = 0
    pim_events: int = 0
    #: Raw route-code histogram (route code -> event count).
    route_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def l1_hit_rate(self) -> float:
        """Predicted L1 hit rate over cache-routed events."""
        return self.l1_hits / self.cache_events if self.cache_events else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Predicted L2 hit rate over predicted L1 misses."""
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def sp_events(self) -> int:
        """Events absorbed by the scratchpad port (exact)."""
        return self.sp_plain + self.sp_rmw + self.offloads

    @property
    def offload_fraction(self) -> float:
        """Fire-and-forget offload share of all events (exact)."""
        return self.offloads / self.events if self.events else 0.0

    @property
    def sp_fraction(self) -> float:
        """Scratchpad-routed share of all events (exact)."""
        return self.sp_events / self.events if self.events else 0.0

    @property
    def dram_bytes(self) -> int:
        """Predicted total DRAM traffic."""
        return self.dram_read_bytes + self.dram_write_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric form — the namespace prune specs evaluate in."""
        return {
            "events": self.events,
            "cache_events": self.cache_events,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "l2_hit_rate": self.l2_hit_rate,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "dram_bytes": self.dram_bytes,
            "sp_plain": self.sp_plain,
            "sp_rmw": self.sp_rmw,
            "offloads": self.offloads,
            "sp_events": self.sp_events,
            "sp_fraction": self.sp_fraction,
            "offload_fraction": self.offload_fraction,
            "srcbuf_hits": self.srcbuf_hits,
            "locked_events": self.locked_events,
            "pim_events": self.pim_events,
        }


def predict_slot_hits(
    slots: np.ndarray, keys: np.ndarray, ways: int
) -> np.ndarray:
    """Reuse-gap hit prediction for one level of set-associative cache.

    ``slots[i]`` names the set the i-th access indexes (already fused
    with the core/bank id so distinct caches never share a slot) and
    ``keys[i]`` the line it touches. An access is predicted to *hit*
    iff the nearest earlier access to the same ``(slot, key)`` is at
    most ``ways`` accesses away *within that slot* — i.e. at most
    ``ways - 1`` slot accesses intervene, which bounds the number of
    distinct intervening lines an LRU set of ``ways`` ways can absorb
    without evicting the key. First touches always predict a miss.

    The gap counts slot *accesses*, not distinct lines, so repeated
    touches of one hot line inflate the gap and the model errs toward
    predicting misses (pessimistic for hits, conservative for DRAM
    traffic). Everything is vectorized; no per-event Python loop.
    """
    n = len(slots)
    out = np.zeros(n, dtype=bool)
    if n < 2 or ways <= 0:
        return out
    slots = np.ascontiguousarray(slots, dtype=np.int64)
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    # Slot-major, batch-stable order; per-slot sequence numbers.
    so = _slot_argsort(slots)
    ss = slots[so]
    rank = np.arange(n, dtype=np.int64)
    new_slot = np.empty(n, dtype=bool)
    new_slot[0] = True
    np.not_equal(ss[1:], ss[:-1], out=new_slot[1:])
    starts = np.flatnonzero(new_slot)
    sizes = np.diff(np.append(starts, n))
    rank -= np.repeat(starts, sizes)
    # (slot, key)-major order, still batch-stable: lexsort's last key
    # is primary, and ties keep the slot-major (= batch) order.
    o2 = np.lexsort((keys[so], ss))
    k2 = keys[so][o2]
    s2 = ss[o2]
    r2 = rank[o2]
    same = (s2[1:] == s2[:-1]) & (k2[1:] == k2[:-1])
    hit2 = same & ((r2[1:] - r2[:-1]) <= ways)
    out[so[o2[1:][hit2]]] = True
    return out


def estimate_replay(backend, trace: Trace) -> ReplayEstimate:
    """Predict replay counters for ``trace`` through ``backend``.

    Runs the backend's real prepare/route stages (so the estimate
    sees the same routing a replay would — including training-state
    routes like the dynamic scratchpad's frequency filter) and then
    the closed-form cache model of :func:`predict_slot_hits` instead
    of the stateful kernel. Costs a few sorts of the cache-routed
    subset; never touches :meth:`CacheSystem.replay_cache_path`.
    """
    config: SimConfig = backend.config
    ncores = config.core.num_cores
    stats = MemStats(num_cores=ncores)
    dram = DramModel(config.dram)
    dram.set_random_ranges(backend.dram_random_ranges)
    crossbar = Crossbar(config.interconnect, ncores)
    system = CacheSystem(
        config, stats, dram, crossbar,
        scalar_cache=(
            True if backend.force_scalar_cache
            else getattr(backend, "scalar_cache", None)
        ),
    )
    ctx = ReplayContext(
        config=config, stats=stats, dram=dram, crossbar=crossbar,
        system=system, ncores=ncores, ledger=LatencyLedger(ncores),
    )
    backend.prepare(ctx)

    seg = trace.interleaved()
    prepass = precompute(seg, config, mapping=backend.prepass_mapping())
    routes = backend.route(ctx, seg, prepass)

    est = ReplayEstimate(events=int(prepass.num_events))
    nonneg = routes[routes >= 0]
    counts = np.bincount(nonneg, minlength=int(ROUTE_PIM) + 1)
    est.route_counts = {
        int(code): int(c) for code, c in enumerate(counts) if c
    }
    est.sp_plain = int(counts[ROUTE_SP_PLAIN])
    est.sp_rmw = int(counts[ROUTE_SP_RMW])
    est.offloads = int(counts[ROUTE_SP_OFFLOAD])
    est.srcbuf_hits = int(counts[ROUTE_SRCBUF_HIT])
    est.locked_events = int(counts[ROUTE_LOCKED])
    est.pim_events = int(counts[ROUTE_PIM])

    cache_idx = np.flatnonzero(routes == ROUTE_CACHE)
    est.cache_events = int(len(cache_idx))
    if not est.cache_events:
        return est

    cores = np.asarray(seg.core, dtype=np.int64)[cache_idx]
    lines = prepass.lines[cache_idx]
    l1_nsets = config.l1.num_sets
    l1_hit = predict_slot_hits(
        cores * l1_nsets + lines % l1_nsets, lines, config.l1.ways
    )
    est.l1_hits = int(np.count_nonzero(l1_hit))
    est.l1_misses = est.cache_events - est.l1_hits

    miss = ~l1_hit
    banks = prepass.banks[cache_idx][miss]
    bank_keys = prepass.bank_keys[cache_idx][miss]
    l2_nsets = config.l2_per_core.num_sets
    l2_hit = predict_slot_hits(
        banks * l2_nsets + bank_keys % l2_nsets,
        bank_keys,
        config.l2_per_core.ways,
    )
    est.l2_hits = int(np.count_nonzero(l2_hit))
    est.l2_misses = est.l1_misses - est.l2_hits

    line_bytes = config.l1.line_bytes
    est.dram_read_bytes = est.l2_misses * line_bytes
    l2_miss_writes = np.count_nonzero(
        prepass.write[cache_idx][miss] & ~l2_hit
    )
    est.dram_write_bytes = int(l2_miss_writes) * line_bytes
    return est
