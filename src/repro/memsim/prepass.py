"""Vectorized trace pre-pass: classify the whole trace before replay.

The replay engine splits every simulation into a *stateless* batch
stage and a *stateful* loop. This module is the batch stage: given a
columnar :class:`~repro.ligra.trace.Trace`, it computes — in numpy,
over all events at once — everything a replay needs that does not
depend on cache or directory state:

- flag decoding (write / atomic / source-read / update masks),
- cache-line ids, home banks and bank-local keys
  (:class:`~repro.memsim.geometry.BankGeometry`),
- region/access-class lookup (the vectorized twin of
  :meth:`repro.ligra.trace.AddressSpace.classify`),
- hot-vertex membership and scratchpad-home computation (via
  :class:`~repro.memsim.mapping.ScratchpadMapping`),
- word-granularity access sizes (clamped to the 8-byte scratchpad
  port).

Only cache, directory, DRAM-row and buffer state updates remain in
the per-event loop (:mod:`repro.memsim.engine`).

Stream-prefetch detection is also provided here. The detector itself
is inherently sequential (each observation rotates per-core stream
heads), so :class:`StreamDetector` offers the exact per-event
``observe`` the engine drives on L1 misses, plus a batch ``flags``
form that processes a whole (core, line) sequence at once — both
implement the same 16-head round-robin stride detector and produce
identical flags for identical input sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.ligra.trace import (
    AccessClass,
    FLAG_ATOMIC,
    FLAG_SRC_READ,
    FLAG_UPDATE,
    FLAG_WRITE,
    Region,
    Trace,
)
from repro.memsim.geometry import BankGeometry
from repro.memsim.mapping import ScratchpadMapping

__all__ = [
    "TracePrepass",
    "precompute",
    "classify_regions",
    "StreamDetector",
]

#: Scratchpad word-port width: accesses are clamped to 8 bytes.
SP_WORD_BYTES = 8


def classify_regions(
    regions: Sequence[Region], addrs: np.ndarray
) -> np.ndarray:
    """Vectorized region classification.

    The numpy twin of :meth:`repro.ligra.trace.AddressSpace.classify`:
    each address gets the access class of the *first* region (in
    allocation order) containing it, or ``NGRAPH`` when unmapped.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    out = np.full(len(addrs), int(AccessClass.NGRAPH), dtype=np.int8)
    # Later assignments overwrite earlier ones, so walking the regions
    # in reverse makes the first allocated region win ties, matching
    # the scalar first-match scan.
    for region in reversed(list(regions)):
        inside = (addrs >= region.base) & (addrs < region.end)
        out[inside] = int(region.access_class)
    return out


@dataclass
class TracePrepass:
    """Per-event arrays derived from a trace before the stateful loop.

    All arrays are indexed by event position in the (interleaved)
    trace. ``hot``/``home``/``local`` are only populated when a
    scratchpad mapping is supplied (all-False / -1 otherwise).
    """

    #: Decoded flag masks.
    write: np.ndarray
    atomic: np.ndarray
    src_read: np.ndarray
    update: np.ndarray
    #: Cache-line geometry per event.
    lines: np.ndarray
    banks: np.ndarray
    bank_keys: np.ndarray
    #: Scratchpad-word access size (bytes, clamped to the 8 B port).
    nbytes: np.ndarray
    #: vtxProp events (the monitor unit's class check).
    vtxprop: np.ndarray
    #: Scratchpad routing (mapping-dependent).
    hot: np.ndarray
    home: np.ndarray
    local: np.ndarray

    @property
    def num_events(self) -> int:
        """Number of events covered."""
        return len(self.lines)


def precompute(
    trace: Trace,
    config: SimConfig,
    mapping: Optional[ScratchpadMapping] = None,
) -> TracePrepass:
    """Run the batch classification stage over ``trace``.

    ``mapping`` enables the hot/home/local columns for scratchpad
    backends; cache-only backends pass ``None`` and get inert columns.
    """
    geometry = BankGeometry(
        num_banks=config.core.num_cores,
        line_bytes=config.l1.line_bytes,
    )
    flags = trace.flags
    lines = geometry.lines_of(trace.addr)
    n = len(lines)
    vtxprop = trace.access_class == np.int8(int(AccessClass.VTXPROP))
    if mapping is not None and mapping.hot_capacity > 0:
        hot = vtxprop & mapping.is_hot_many(trace.vertex)
        home = mapping.home_many(trace.vertex)
        local = home == trace.core
    else:
        hot = np.zeros(n, dtype=bool)
        home = np.full(n, -1, dtype=np.int64)
        local = np.zeros(n, dtype=bool)
    return TracePrepass(
        write=(flags & FLAG_WRITE) != 0,
        atomic=(flags & FLAG_ATOMIC) != 0,
        src_read=(flags & FLAG_SRC_READ) != 0,
        update=(flags & FLAG_UPDATE) != 0,
        lines=lines,
        banks=geometry.banks_of(lines),
        bank_keys=geometry.bank_keys_of(lines),
        nbytes=np.minimum(trace.size, SP_WORD_BYTES).astype(np.int64),
        vtxprop=vtxprop,
        hot=hot,
        home=home,
        local=local,
    )


class StreamDetector:
    """Per-core stride-stream detector (the L1 prefetcher model).

    Each core tracks ``num_heads`` recent stream heads. An observed
    line equal to some head + 1 counts as *prefetched* and advances
    that head (the first matching head in slot order, exactly like a
    linear scan of the head array); otherwise the line replaces a head
    chosen round-robin, so the second line of any sequential run and
    onward is prefetched.

    The implementation keeps a per-core map from *expected next line*
    to the slots waiting for it, making each observation O(1) instead
    of an O(num_heads) scan while producing bit-identical decisions.
    """

    def __init__(self, num_cores: int, num_heads: int = 16) -> None:
        self.num_heads = num_heads
        self._heads = [[-2] * num_heads for _ in range(num_cores)]
        self._next = [0] * num_cores
        # expected next line -> sorted-insertion list of slot indices
        self._want = [{-1: list(range(num_heads))} for _ in range(num_cores)]

    def observe(self, core: int, line: int) -> bool:
        """Feed one line; returns whether it was stream-prefetched."""
        want = self._want[core]
        slots = want.get(line)
        heads = self._heads[core]
        if slots:
            # First matching head in slot order advances.
            slot = min(slots)
            slots.remove(slot)
            if not slots:
                del want[line]
            heads[slot] = line
            want.setdefault(line + 1, []).append(slot)
            return True
        slot = self._next[core]
        old = heads[slot] + 1
        stale = want.get(old)
        if stale:
            stale.remove(slot)
            if not stale:
                del want[old]
        heads[slot] = line
        want.setdefault(line + 1, []).append(slot)
        self._next[core] = (slot + 1) % self.num_heads
        return False

    def flags(self, cores, lines) -> np.ndarray:
        """Batch form: flags for a whole (core, line) sequence.

        Equivalent to calling :meth:`observe` per event; used by the
        pre-pass equivalence tests and by backends whose cache-path
        membership is statically known.
        """
        cores = np.asarray(cores).tolist()
        lines = np.asarray(lines).tolist()
        observe = self.observe
        return np.fromiter(
            (observe(c, ln) for c, ln in zip(cores, lines)),
            dtype=bool,
            count=len(lines),
        )
