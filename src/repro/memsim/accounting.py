"""Batch accounting: fold routed event families into the counters.

Everything that is not the stateful cache path is charged here, in
numpy, over whole route subsets at once: per-core latency sums fold
with ``np.bincount`` (which accumulates each core's partial sum in
event order, so the results are bit-identical to a per-event scalar
loop), and traffic/occupancy counters are plain reductions.

:class:`ReplayContext` is the mutable bag of per-replay state the
engine shares with a backend: the model objects, the stats sink, and
backend-supplied routing overrides.

Segmented replay adds one wrinkle: float sums are association
sensitive, so a per-core latency total accumulated segment by segment
would drift (harmlessly, but measurably) from the whole-trace sum.
:class:`LatencyLedger` removes the drift by construction — every
latency family accumulates into its own per-core running sum with
``np.add.at`` (an ordered, unbuffered element loop, so folding a
stream in segments is the *same* binary-addition sequence as folding
it whole), and :meth:`LatencyLedger.flush` rebuilds the stats totals
in a fixed family order. Streamed and in-core replays therefore
produce bit-identical ``core_mem_latency`` / ``core_serial_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.cachestate import CacheSystem
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import transfer_latency_many
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = [
    "ReplayContext",
    "LatencyLedger",
    "MEM_FAMILIES",
    "SERIAL_FAMILIES",
    "add_core_sums",
    "account_latencies",
    "account_sp_plain",
    "account_sp_rmw",
    "account_offload",
]

#: Latency families that contribute to ``core_mem_latency``, in the
#: (fixed) order :meth:`LatencyLedger.flush` sums them.
MEM_FAMILIES = ("cache", "srcbuf", "sp_plain", "sp_rmw", "locked")

#: Families that contribute to ``core_serial_cycles``, in flush order.
SERIAL_FAMILIES = ("cache", "sp_plain", "sp_rmw", "locked", "offload", "pim")


class LatencyLedger:
    """Segment-order-invariant per-core latency accumulation.

    One running per-core sum per latency family. Each family folds its
    events with ``np.add.at`` (sequential element adds), so feeding the
    same event stream in one batch or in many segments performs the
    identical float-addition sequence; :meth:`flush` then *overwrites*
    the stats totals as a fixed-family-order sum of the running sums.
    The result: per-core latencies are bit-identical however the trace
    was chunked — whole, windowed, or streamed segment by segment.
    """

    def __init__(self, ncores: int) -> None:
        self.ncores = ncores
        self.mem = {f: [0.0] * ncores for f in MEM_FAMILIES}
        self.serial = {f: [0.0] * ncores for f in SERIAL_FAMILIES}

    @staticmethod
    def _fold(target: List[float], cores: np.ndarray,
              weights: np.ndarray) -> None:
        # np.add.at is unbuffered: element j adds into the sum left by
        # element j-1, continuing exactly from the carried-in totals.
        sums = np.asarray(target, dtype=np.float64)
        np.add.at(sums, cores, weights)
        target[:] = sums.tolist()

    def add_mem(self, family: str, cores: np.ndarray,
                weights: np.ndarray) -> None:
        """Fold overlappable memory latency into ``family``'s sums."""
        self._fold(self.mem[family], cores, weights)

    def add_serial(self, family: str, cores: np.ndarray,
                   weights: np.ndarray) -> None:
        """Fold pipeline-serialized cycles into ``family``'s sums."""
        self._fold(self.serial[family], cores, weights)

    def flush(self, stats: MemStats) -> None:
        """Overwrite the stats' per-core totals from the family sums.

        Idempotent and cheap; the driver calls it before every timeline
        snapshot and once at the end of the replay.
        """
        for c in range(self.ncores):
            mem = 0.0
            for family in MEM_FAMILIES:
                mem += self.mem[family][c]
            stats.core_mem_latency[c] = mem
            srl = 0.0
            for family in SERIAL_FAMILIES:
                srl += self.serial[family][c]
            stats.core_serial_cycles[c] = srl


@dataclass
class ReplayContext:
    """Mutable per-replay state shared between the engine and a backend."""

    config: SimConfig
    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    system: CacheSystem
    ncores: int
    piscs: Optional[List[PiscEngine]] = None
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    #: Backend-supplied scratchpad home/locality overrides (the dynamic
    #: backend homes by ``vertex % ncores`` instead of the mapping).
    sp_home: Optional[np.ndarray] = None
    sp_local: Optional[np.ndarray] = None
    #: Per-family latency accumulation (segment-order invariant). The
    #: driver always supplies one; ``None`` only in direct unit-test
    #: construction, where the helpers fall back to in-place bincount.
    ledger: Optional[LatencyLedger] = None
    extra: dict = field(default_factory=dict)


def add_core_sums(target: List[float], cores: np.ndarray,
                  weights: np.ndarray, ncores: int) -> None:
    """``target[c] += sum(weights where cores == c)`` via bincount."""
    sums = np.bincount(cores, weights=weights, minlength=ncores)
    for c in range(ncores):
        target[c] += float(sums[c])


def account_latencies(ctx: ReplayContext, cores: np.ndarray,
                      lat: np.ndarray, atomic: np.ndarray,
                      family: str = "sp_plain") -> None:
    """Fold per-event latencies into the per-core sums.

    Atomic events get the core-executed split: a fraction of the
    latency (plus the fixed stall) serializes the pipeline, the rest
    overlaps as ordinary memory latency. ``family`` names the ledger
    bucket the latencies land in (see :class:`LatencyLedger`).
    """
    stats = ctx.stats
    core_cfg = ctx.config.core
    ser = core_cfg.atomic_serialization
    stall = core_cfg.atomic_stall_cycles
    n_atomic = int(np.count_nonzero(atomic))
    mem = np.where(atomic, lat * (1.0 - ser), lat)
    if ctx.ledger is not None:
        ctx.ledger.add_mem(family, cores, mem)
    else:
        add_core_sums(stats.core_mem_latency, cores, mem, ctx.ncores)
    if n_atomic:
        stats.atomics_total += n_atomic
        stats.atomics_on_cores += n_atomic
        srl = np.where(atomic, lat * ser + stall, 0.0)
        if ctx.ledger is not None:
            ctx.ledger.add_serial(family, cores, srl)
        else:
            add_core_sums(stats.core_serial_cycles, cores, srl, ctx.ncores)


def account_sp_plain(ctx: ReplayContext, trace: Trace,
                     prepass: TracePrepass, idx: np.ndarray,
                     home: np.ndarray, local_mask: np.ndarray) -> None:
    """Plain scratchpad reads/writes: word packets, SP latency."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    n_local = n - n_remote
    stats.sp_local_accesses += n_local
    stats.sp_plain_local += n_local
    stats.sp_remote_accesses += n_remote
    stats.sp_plain_remote += n_remote
    lat = np.full(n, float(config.scratchpad.latency_cycles))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header
    account_latencies(ctx, cores, lat, prepass.atomic[idx],
                      family="sp_plain")


def account_sp_rmw(ctx: ReplayContext, trace: Trace,
                   prepass: TracePrepass, idx: np.ndarray,
                   home: np.ndarray, local_mask: np.ndarray) -> None:
    """Core-executed RMW on scratchpad words (OMEGA without PISCs)."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    # Read + write of the word.
    lat = np.full(n, float(config.scratchpad.latency_cycles * 2))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += 2.0 * transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += 2 * n_remote
        ctx.crossbar.word_bytes += 2 * (rbytes + n_remote * header)
        stats.onchip_word_bytes += 2 * (rbytes + n_remote * header)
    account_latencies(ctx, cores, lat, np.ones(n, dtype=bool),
                      family="sp_rmw")


def account_offload(ctx: ReplayContext, trace: Trace,
                    prepass: TracePrepass, idx: np.ndarray,
                    microcode: Microcode, home: np.ndarray,
                    local_mask: np.ndarray) -> None:
    """Fire-and-forget PISC offloads: issue cost + pad occupancy."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    n = len(idx)
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    n_atomic = int(np.count_nonzero(prepass.atomic[idx]))
    stats.atomics_total += n_atomic
    stats.atomics_offloaded += n_atomic
    stats.pisc_ops += n
    issue = config.core.offload_issue_cycles
    counts = np.bincount(cores, minlength=ctx.ncores)
    # Exact integer counts times an integer issue cost: order-free, but
    # still routed through the ledger because flush() overwrites.
    serial = (
        ctx.ledger.serial["offload"] if ctx.ledger is not None
        else stats.core_serial_cycles
    )
    for c in range(ctx.ncores):
        serial[c] += float(counts[c]) * issue

    homes = np.asarray(home[idx], dtype=np.int64)
    verts = np.asarray(trace.vertex[idx], dtype=np.int64)
    cycles = microcode.cycles
    occupancy = stats.pisc_occupancy
    piscs = ctx.piscs
    if piscs is None:
        raise SimulationError(
            "account_offload called without PISC engines; the backend's"
            " prepare() must populate ctx.piscs before routing offloads"
        )
    for p in range(ctx.ncores):
        vs = verts[homes == p]
        cnt = len(vs)
        if not cnt:
            continue
        pisc = piscs[p]
        pisc.ops_executed += cnt
        pisc.busy_cycles += cnt * cycles
        # Same-vertex back-to-back ops serialize on the pad controller.
        conflicts = int(np.count_nonzero(vs[1:] == vs[:-1]))
        if vs[0] == pisc._last_vertex:
            conflicts += 1
        pisc.conflict_cycles += conflicts * cycles
        pisc._last_vertex = int(vs[-1])
        occupancy[p] += cnt * cycles

    local = local_mask[idx]
    n_remote = int(np.count_nonzero(~local))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    if n_remote:
        header = config.interconnect.header_bytes
        rbytes = int(prepass.nbytes[idx][~local].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header
