"""Batch accounting: fold routed event families into the counters.

Everything that is not the stateful cache path is charged here, in
numpy, over whole route subsets at once: per-core latency sums fold
with ``np.bincount`` (which accumulates each core's partial sum in
event order, so the results are bit-identical to a per-event scalar
loop), and traffic/occupancy counters are plain reductions.

:class:`ReplayContext` is the mutable bag of per-replay state the
engine shares with a backend: the model objects, the stats sink, and
backend-supplied routing overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.cachestate import CacheSystem
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import transfer_latency_many
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = [
    "ReplayContext",
    "add_core_sums",
    "account_latencies",
    "account_sp_plain",
    "account_sp_rmw",
    "account_offload",
]


@dataclass
class ReplayContext:
    """Mutable per-replay state shared between the engine and a backend."""

    config: SimConfig
    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    system: CacheSystem
    ncores: int
    piscs: Optional[List[PiscEngine]] = None
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    #: Backend-supplied scratchpad home/locality overrides (the dynamic
    #: backend homes by ``vertex % ncores`` instead of the mapping).
    sp_home: Optional[np.ndarray] = None
    sp_local: Optional[np.ndarray] = None
    extra: dict = field(default_factory=dict)


def add_core_sums(target: List[float], cores: np.ndarray,
                  weights: np.ndarray, ncores: int) -> None:
    """``target[c] += sum(weights where cores == c)`` via bincount."""
    sums = np.bincount(cores, weights=weights, minlength=ncores)
    for c in range(ncores):
        target[c] += float(sums[c])


def account_latencies(ctx: ReplayContext, cores: np.ndarray,
                      lat: np.ndarray, atomic: np.ndarray) -> None:
    """Fold per-event latencies into the per-core sums.

    Atomic events get the core-executed split: a fraction of the
    latency (plus the fixed stall) serializes the pipeline, the rest
    overlaps as ordinary memory latency.
    """
    stats = ctx.stats
    core_cfg = ctx.config.core
    ser = core_cfg.atomic_serialization
    stall = core_cfg.atomic_stall_cycles
    n_atomic = int(np.count_nonzero(atomic))
    mem = np.where(atomic, lat * (1.0 - ser), lat)
    add_core_sums(stats.core_mem_latency, cores, mem, ctx.ncores)
    if n_atomic:
        stats.atomics_total += n_atomic
        stats.atomics_on_cores += n_atomic
        srl = np.where(atomic, lat * ser + stall, 0.0)
        add_core_sums(stats.core_serial_cycles, cores, srl, ctx.ncores)


def account_sp_plain(ctx: ReplayContext, trace: Trace,
                     prepass: TracePrepass, idx: np.ndarray,
                     home: np.ndarray, local_mask: np.ndarray) -> None:
    """Plain scratchpad reads/writes: word packets, SP latency."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    n_local = n - n_remote
    stats.sp_local_accesses += n_local
    stats.sp_plain_local += n_local
    stats.sp_remote_accesses += n_remote
    stats.sp_plain_remote += n_remote
    lat = np.full(n, float(config.scratchpad.latency_cycles))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header
    account_latencies(ctx, cores, lat, prepass.atomic[idx])


def account_sp_rmw(ctx: ReplayContext, trace: Trace,
                   prepass: TracePrepass, idx: np.ndarray,
                   home: np.ndarray, local_mask: np.ndarray) -> None:
    """Core-executed RMW on scratchpad words (OMEGA without PISCs)."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    local = local_mask[idx]
    n = len(idx)
    remote = ~local
    n_remote = int(np.count_nonzero(remote))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    # Read + write of the word.
    lat = np.full(n, float(config.scratchpad.latency_cycles * 2))
    if n_remote:
        header = config.interconnect.header_bytes
        lat[remote] += 2.0 * transfer_latency_many(
            ctx.crossbar, cores[remote], home[idx][remote]
        )
        rbytes = int(prepass.nbytes[idx][remote].sum())
        ctx.crossbar.word_packets += 2 * n_remote
        ctx.crossbar.word_bytes += 2 * (rbytes + n_remote * header)
        stats.onchip_word_bytes += 2 * (rbytes + n_remote * header)
    account_latencies(ctx, cores, lat, np.ones(n, dtype=bool))


def account_offload(ctx: ReplayContext, trace: Trace,
                    prepass: TracePrepass, idx: np.ndarray,
                    microcode: Microcode, home: np.ndarray,
                    local_mask: np.ndarray) -> None:
    """Fire-and-forget PISC offloads: issue cost + pad occupancy."""
    if len(idx) == 0:
        return
    stats = ctx.stats
    config = ctx.config
    n = len(idx)
    cores = np.asarray(trace.core[idx], dtype=np.int64)
    n_atomic = int(np.count_nonzero(prepass.atomic[idx]))
    stats.atomics_total += n_atomic
    stats.atomics_offloaded += n_atomic
    stats.pisc_ops += n
    issue = config.core.offload_issue_cycles
    counts = np.bincount(cores, minlength=ctx.ncores)
    serial = stats.core_serial_cycles
    for c in range(ctx.ncores):
        serial[c] += float(counts[c]) * issue

    homes = np.asarray(home[idx], dtype=np.int64)
    verts = np.asarray(trace.vertex[idx], dtype=np.int64)
    cycles = microcode.cycles
    occupancy = stats.pisc_occupancy
    piscs = ctx.piscs
    if piscs is None:
        raise SimulationError(
            "account_offload called without PISC engines; the backend's"
            " prepare() must populate ctx.piscs before routing offloads"
        )
    for p in range(ctx.ncores):
        vs = verts[homes == p]
        cnt = len(vs)
        if not cnt:
            continue
        pisc = piscs[p]
        pisc.ops_executed += cnt
        pisc.busy_cycles += cnt * cycles
        # Same-vertex back-to-back ops serialize on the pad controller.
        conflicts = int(np.count_nonzero(vs[1:] == vs[:-1]))
        if vs[0] == pisc._last_vertex:
            conflicts += 1
        pisc.conflict_cycles += conflicts * cycles
        pisc._last_vertex = int(vs[-1])
        occupancy[p] += cnt * cycles

    local = local_mask[idx]
    n_remote = int(np.count_nonzero(~local))
    stats.sp_local_accesses += n - n_remote
    stats.sp_remote_accesses += n_remote
    if n_remote:
        header = config.interconnect.header_bytes
        rbytes = int(prepass.nbytes[idx][~local].sum())
        ctx.crossbar.word_packets += n_remote
        ctx.crossbar.word_bytes += rbytes + n_remote * header
        stats.onchip_word_bytes += rbytes + n_remote * header
