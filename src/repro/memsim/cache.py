"""Set-associative write-back cache with LRU replacement.

Used for both the private L1s and the shared banked L2. The replay
loop is pure Python, so the implementation favors cheap per-access
work: each set is an ``OrderedDict`` mapping line tag → dirty flag,
giving O(1) hit/miss/evict with LRU ordering maintained by
``move_to_end``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.config import CacheConfig

__all__ = ["Cache", "AccessResult"]

#: (hit, evicted_dirty_line_addr_or_None)
AccessResult = Tuple[bool, Optional[int]]


class Cache:
    """One set-associative LRU cache instance.

    Addresses are byte addresses; lookups operate on line granularity
    internally. The cache is write-allocate / write-back: a write miss
    fetches the line, and dirty victims are reported to the caller so
    the hierarchy can charge the write-back traffic.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._line_bits = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def line_of(self, addr: int) -> int:
        """Line address (byte address with offset bits cleared)."""
        return addr >> self._line_bits

    def access_line(self, line: int, write: bool = False) -> AccessResult:
        """Access a line address; returns (hit, dirty_victim_line).

        ``dirty_victim_line`` is the evicted line's address when a miss
        displaced modified data, else ``None``.
        """
        s = self._sets[line % self._num_sets]
        if line in s:
            self.hits += 1
            s.move_to_end(line)
            if write:
                s[line] = True
            return True, None
        self.misses += 1
        victim_dirty: Optional[int] = None
        if len(s) >= self._ways:
            victim_line, was_dirty = s.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self.dirty_evictions += 1
                victim_dirty = victim_line
        s[line] = write
        return False, victim_dirty

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Access a byte address (convenience wrapper over lines)."""
        return self.access_line(self.line_of(addr), write)

    def contains_line(self, line: int) -> bool:
        """Presence check without touching LRU state."""
        return line in self._sets[line % self._num_sets]

    def invalidate_line(self, line: int) -> bool:
        """Drop a line (coherence invalidation); returns whether present."""
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]
            return True
        return False

    def flush(self) -> int:
        """Empty the cache, returning the number of dirty lines dropped."""
        dirty = 0
        for s in self._sets:
            dirty += sum(1 for d in s.values() if d)
            s.clear()
        return dirty

    @property
    def hit_rate(self) -> float:
        """Hit rate over all accesses so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cache({self.name}, {self.config.size_bytes}B,"
            f" {self._ways}-way, hit_rate={self.hit_rate:.2%})"
        )
