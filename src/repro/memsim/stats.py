"""Counters gathered during trace replay."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MemStats"]


@dataclass
class MemStats:
    """Event and byte counters for one simulated run.

    Latency/stall sums are kept per core so the timing model can take
    the slowest core as the barrier; everything else is chip-wide.
    """

    num_cores: int = 16

    # Cache events
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    #: Misses whose latency was hidden by the stream prefetcher.
    prefetch_hits: int = 0

    # Scratchpad events
    sp_local_accesses: int = 0
    sp_remote_accesses: int = 0
    #: Non-offload (plain read/write) scratchpad accesses — the subset
    #: whose locality the Section V-D chunk matching governs.
    sp_plain_local: int = 0
    sp_plain_remote: int = 0
    srcbuf_hits: int = 0
    pisc_ops: int = 0

    # Atomic accounting
    atomics_total: int = 0
    atomics_on_cores: int = 0
    atomics_offloaded: int = 0

    # Traffic (bytes)
    onchip_line_bytes: int = 0
    onchip_word_bytes: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    coherence_invalidations: int = 0

    # Per-core cycle contributions
    core_mem_latency: List[float] = field(default_factory=list)
    core_serial_cycles: List[float] = field(default_factory=list)
    core_accesses: List[int] = field(default_factory=list)
    #: Per-scratchpad PISC occupancy (ops executed on each pad).
    pisc_occupancy: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.core_mem_latency:
            self.core_mem_latency = [0.0] * self.num_cores
        if not self.core_serial_cycles:
            self.core_serial_cycles = [0.0] * self.num_cores
        if not self.core_accesses:
            self.core_accesses = [0] * self.num_cores
        if not self.pisc_occupancy:
            self.pisc_occupancy = [0] * self.num_cores

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def l1_accesses(self) -> int:
        """Total L1 lookups."""
        return self.l1_hits + self.l1_misses

    @property
    def l2_accesses(self) -> int:
        """Total L2 lookups."""
        return self.l2_hits + self.l2_misses

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit rate in [0, 1] (0.0 on zero-access runs)."""
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """L2 (last-level cache) hit rate in [0, 1]."""
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def sp_accesses(self) -> int:
        """Total scratchpad accesses (local + remote + offloads)."""
        return self.sp_local_accesses + self.sp_remote_accesses

    @property
    def sp_plain_accesses(self) -> int:
        """Plain (non-offload) scratchpad accesses."""
        return self.sp_plain_local + self.sp_plain_remote

    @property
    def sp_plain_remote_share(self) -> float:
        """Remote fraction of plain scratchpad accesses (Section V-D)."""
        total = self.sp_plain_accesses
        return self.sp_plain_remote / total if total else 0.0

    @property
    def last_level_hit_rate(self) -> float:
        """Combined last-level *storage* hit rate (paper Fig 15).

        Scratchpad and source-buffer hits count as last-level hits;
        the denominator is every access that got past the L1.
        """
        beyond_l1 = self.l2_accesses + self.sp_accesses + self.srcbuf_hits
        hits = self.l2_hits + self.sp_accesses + self.srcbuf_hits
        return hits / beyond_l1 if beyond_l1 else 0.0

    @property
    def atomics_offload_share(self) -> float:
        """Fraction of atomics executed at the pads (0.0 when none ran)."""
        total = self.atomics_total
        return self.atomics_offloaded / total if total else 0.0

    @property
    def onchip_traffic_bytes(self) -> int:
        """All bytes moved across the crossbar (Fig 17 metric)."""
        return self.onchip_line_bytes + self.onchip_word_bytes

    @property
    def dram_bytes(self) -> int:
        """All bytes moved to/from DRAM."""
        return self.dram_read_bytes + self.dram_write_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline counters (for reports)."""
        return {
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "prefetch_hits": self.prefetch_hits,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "last_level_hit_rate": self.last_level_hit_rate,
            "sp_local": self.sp_local_accesses,
            "sp_remote": self.sp_remote_accesses,
            "sp_plain_accesses": self.sp_plain_accesses,
            "sp_plain_remote_share": self.sp_plain_remote_share,
            "srcbuf_hits": self.srcbuf_hits,
            "pisc_ops": self.pisc_ops,
            "atomics_total": self.atomics_total,
            "atomics_on_cores": self.atomics_on_cores,
            "atomics_offloaded": self.atomics_offloaded,
            "onchip_traffic_bytes": self.onchip_traffic_bytes,
            "dram_bytes": self.dram_bytes,
            "coherence_invalidations": self.coherence_invalidations,
        }
