"""Analytic core timing model.

Replaces gem5's cycle-accurate OoO cores with the standard analytic
decomposition used by memory-subsystem studies: each core's runtime is

``compute + serialized stalls + (memory latency / MLP)``

where MLP is the effective memory-level parallelism the OoO window
extracts, serialized stalls are the cycles the pipeline *cannot* hide
(core-executed atomics on the baseline; offload issue slots on OMEGA),
and the chip-level run length is the slowest core bounded below by the
structural throughput limits: DRAM channel bandwidth, crossbar
throughput, and per-PISC occupancy.

The decomposition also yields the Fig 3 TMAM-style breakdown — the
fraction of the critical core's time spent waiting on memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SimConfig
from repro.memsim.hierarchy import ReplayOutput

__all__ = ["TimingResult", "compute_timing"]


@dataclass(frozen=True)
class TimingResult:
    """Cycle-level outcome of one replay."""

    total_cycles: float
    critical_core: int
    core_cycles: tuple
    #: Structural bounds considered: the winner is the bottleneck.
    bounds: Dict[str, float]
    bottleneck: str
    compute_cycles: float
    serial_cycles: float
    memory_cycles: float

    @property
    def memory_bound_fraction(self) -> float:
        """Share of the critical core's time stalled on memory (Fig 3)."""
        total = self.compute_cycles + self.serial_cycles + self.memory_cycles
        return (self.memory_cycles + self.serial_cycles) / total if total else 0.0

    def seconds(self, freq_ghz: float) -> float:
        """Wall-clock seconds at the given core frequency."""
        return self.total_cycles / (freq_ghz * 1e9)


def compute_timing(output: ReplayOutput, config: SimConfig) -> TimingResult:
    """Fold replay counters into a chip-level cycle count.

    Per-core costs are aggregated with a work-stealing model: Ligra's
    scheduler (the paper tuned OpenMP scheduling explicitly) spreads
    the work, so the chip-level bound is the mean per-core cost times a
    small residual ``imbalance_factor`` — not the worst static
    partition, which would overcharge whichever core happened to own
    the cold-vertex atomics.
    """
    core_cfg = config.core
    stats = output.stats
    mlp = core_cfg.mlp
    cpa = core_cfg.compute_cycles_per_access
    ncores = core_cfg.num_cores

    core_cycles = []
    for c in range(ncores):
        compute = stats.core_accesses[c] * cpa
        serial = stats.core_serial_cycles[c]
        memory = stats.core_mem_latency[c] / mlp
        core_cycles.append(compute + serial + memory)

    critical = max(range(ncores), key=lambda c: core_cycles[c])
    total_compute = sum(stats.core_accesses) * cpa
    total_serial = sum(stats.core_serial_cycles)
    total_memory = sum(stats.core_mem_latency) / mlp
    balanced = (
        (total_compute + total_serial + total_memory)
        / ncores
        * core_cfg.imbalance_factor
    )
    bounds = {
        "cores": balanced,
        "dram_bandwidth": output.dram.min_cycles_for_bandwidth(),
        "crossbar": output.crossbar.min_cycles_for_bandwidth(),
        "pisc": float(max(stats.pisc_occupancy) if stats.pisc_occupancy else 0),
    }
    bottleneck = max(bounds, key=bounds.get)
    total = bounds[bottleneck]

    return TimingResult(
        total_cycles=total,
        critical_core=critical,
        core_cycles=tuple(core_cycles),
        bounds=bounds,
        bottleneck=bottleneck,
        compute_cycles=total_compute / ncores,
        serial_cycles=total_serial / ncores,
        memory_cycles=total_memory / ncores,
    )
