"""Route codes, route resolution helpers, and masked-route windowing.

Every hierarchy backend reduces to a *routing policy*: one
``ROUTE_*`` code per trace event, assigned in a single vectorized
pass. The codes partition the trace into the stateful cache path
(``ROUTE_CACHE``) and the batch-accounted scratchpad/buffer/PIM
families; :mod:`repro.memsim.accounting` charges the latter with
``np.bincount`` folds.

The windowed (telemetry-sampled) replay reuses the same route array
per window through :class:`WindowedRoutes`: out-of-window events are
masked with :data:`ROUTE_MASKED`, a sentinel outside every backend's
code space, so the per-route accounting helpers see exactly the
events of the current window without re-deriving routes.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.interconnect import Crossbar

__all__ = [
    "ROUTE_CACHE",
    "ROUTE_SP_PLAIN",
    "ROUTE_SP_RMW",
    "ROUTE_SP_OFFLOAD",
    "ROUTE_SRCBUF_HIT",
    "ROUTE_LOCKED",
    "ROUTE_PIM",
    "ROUTE_MASKED",
    "WindowedRoutes",
    "transfer_latency_many",
]

#: Sentinel route value outside every backend's code space; the
#: windowed replay masks out-of-window events with it.
ROUTE_MASKED = np.int8(-1)

# Route codes assigned by HierarchyBackend.route, one per trace event.
ROUTE_CACHE = 0        #: L1 → L2 → DRAM (the stateful loop)
ROUTE_SP_PLAIN = 1     #: plain scratchpad read/write (word packets)
ROUTE_SP_RMW = 2       #: core-executed RMW on a scratchpad word
ROUTE_SP_OFFLOAD = 3   #: fire-and-forget PISC offload
ROUTE_SRCBUF_HIT = 4   #: absorbed by the source vertex buffer
ROUTE_LOCKED = 5       #: pinned L2 line (locked-cache design)
ROUTE_PIM = 6          #: off-chip PIM atomic (GraphPIM design)


def transfer_latency_many(
    crossbar: Crossbar, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`Crossbar.transfer_latency` (no packet side
    effects — accounting is the caller's job)."""
    cfg = crossbar.config
    src = np.asarray(src, dtype=np.int64)
    if cfg.topology == "crossbar":
        return np.full(len(src), cfg.remote_latency_cycles, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    side = crossbar._mesh_side
    hops = np.abs(src % side - dst % side) + np.abs(src // side - dst // side)
    lat = np.rint(cfg.mesh_router_cycles + hops * cfg.mesh_hop_cycles)
    return lat.astype(np.int64)


class WindowedRoutes:
    """A masked view of a route array for windowed accounting.

    Holds one reusable masked copy: :meth:`fill` exposes the
    ``[lo, hi)`` slice of the underlying routes, :meth:`clear` re-masks
    it. Events outside the filled window carry :data:`ROUTE_MASKED`,
    which matches no route code, so batch accounting over the masked
    array charges exactly the in-window events.
    """

    def __init__(self, routes: np.ndarray) -> None:
        self.routes = routes
        self.masked = np.full(len(routes), ROUTE_MASKED, dtype=np.int8)

    def fill(self, lo: int, hi: int) -> np.ndarray:
        """Unmask ``[lo, hi)``; returns the masked route array."""
        self.masked[lo:hi] = self.routes[lo:hi]
        return self.masked

    def clear(self, lo: int, hi: int) -> None:
        """Re-mask ``[lo, hi)`` after its window was accounted."""
        self.masked[lo:hi] = ROUTE_MASKED
