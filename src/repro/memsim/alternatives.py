"""Alternative memory-subsystem designs the paper argues against.

Section IX ("Locked cache vs. scratchpad") and the related-work
comparison (Table V) position OMEGA against neighboring designs. All
three alternatives are now routing policies over the unified replay
engine (:mod:`repro.memsim.engine`), re-exported here under their
historical names:

- :class:`LockedCacheHierarchy` (``backend="locked"``) — pin the hot
  vertices' cache lines in the shared L2 instead of moving them to
  scratchpads. The hot set always hits on chip, but every access still
  moves a full line across the crossbar and every atomic still
  executes on a core.
- :class:`PimHierarchy` (``backend="graphpim"``) — a GraphPIM-style
  design (Nai et al., HPCA 2017): every vtxProp atomic is offloaded to
  processing-in-memory units *off-chip*, trading pipeline stalls for
  off-chip traffic.
- :class:`DynamicScratchpadHierarchy` (``backend="dynamic"``) — the
  Section VI dynamic hot-set alternative: scratchpads managed as a
  frequency-weighted vertex cache, no offline reordering.
"""

from __future__ import annotations

from repro.memsim.engine import (
    DynamicScratchpadBackend as DynamicScratchpadHierarchy,
    GraphPimBackend as PimHierarchy,
    LockedCacheBackend as LockedCacheHierarchy,
    PimConfig,
)

__all__ = [
    "LockedCacheHierarchy",
    "PimHierarchy",
    "PimConfig",
    "DynamicScratchpadHierarchy",
]
