"""Alternative memory-subsystem designs the paper argues against.

Section IX ("Locked cache vs. scratchpad") and the related-work
comparison (Table V) position OMEGA against two neighboring designs,
both implemented here so the claims can be measured rather than taken
on faith:

- :class:`LockedCacheHierarchy` — pin the hot vertices' cache lines in
  the shared L2 (replacement disabled) instead of moving them to
  scratchpads. The hot set always hits on chip, but every access still
  moves a 64-byte line across the crossbar and every atomic still
  executes on a core: the paper predicts "high on-chip communication
  overhead because data is inefficiently accessed on a cache-line
  granularity".
- :class:`PimHierarchy` — a GraphPIM-style design (Nai et al., HPCA
  2017): every vtxProp atomic is offloaded to processing-in-memory
  units *off-chip*, with no scratchpads at all. Cores stop stalling on
  atomics, but each offload turns into a DRAM-side read-modify-write,
  so the design trades pipeline stalls for off-chip traffic and cannot
  exploit the on-chip locality of natural graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import AccessClass, FLAG_ATOMIC, FLAG_WRITE, Trace
from repro.memsim.dram import DramModel
from repro.memsim.hierarchy import ReplayOutput, _CacheSystem
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.stats import MemStats

__all__ = [
    "LockedCacheHierarchy",
    "PimHierarchy",
    "PimConfig",
    "DynamicScratchpadHierarchy",
]


class LockedCacheHierarchy:
    """Hot vertices pinned in the L2 via cache-line locking.

    Uses the same popularity partition as OMEGA (``mapping`` decides
    which vertices are "locked"), but a locked access behaves like a
    guaranteed L2 hit at its home bank: L2 latency, plus a crossbar
    *line* transfer whenever the bank is remote — no word-granularity
    packets, no PISC, atomics serialized on the cores. The L2 capacity
    available to everything else shrinks by the locked footprint, which
    the caller models by passing a config with a reduced L2 (the same
    halved-L2 config OMEGA uses keeps the storage comparison fair).
    """

    def __init__(self, config: SimConfig, mapping: ScratchpadMapping) -> None:
        if config.use_pisc:
            raise SimulationError(
                "LockedCacheHierarchy has no PISCs; pass use_pisc=False"
            )
        self.config = config
        self.mapping = mapping

    def replay(self, trace: Trace) -> ReplayOutput:
        """Replay with locked-line routing for hot vtxProp accesses."""
        trace = trace.interleaved()
        config = self.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        crossbar = Crossbar(config.interconnect, ncores)
        system = _CacheSystem(config, stats, dram, crossbar)

        cores = trace.core.tolist()
        addrs = trace.addr.tolist()
        classes = trace.access_class.tolist()
        flags = trace.flags.tolist()
        vertices = trace.vertex.tolist()

        mem_lat = stats.core_mem_latency
        serial = stats.core_serial_cycles
        accesses = stats.core_accesses
        access = system.access

        vtxprop = int(AccessClass.VTXPROP)
        l2_lat = config.l2_per_core.latency_cycles
        line_bytes = config.l1.line_bytes
        header = config.interconnect.header_bytes
        atomic_stall = config.core.atomic_stall_cycles
        atomic_ser = config.core.atomic_serialization
        hot_capacity = self.mapping.hot_capacity
        chunk = self.mapping.chunk_size

        for i in range(len(cores)):
            core = cores[i]
            f = flags[i]
            write = bool(f & FLAG_WRITE)
            atomic = bool(f & FLAG_ATOMIC)
            vertex = vertices[i]
            accesses[core] += 1

            if classes[i] == vtxprop and 0 <= vertex < hot_capacity:
                # Locked line: guaranteed on-chip, at line granularity.
                bank = (vertex // chunk) % ncores
                lat = float(l2_lat)
                stats.l2_hits += 1
                if bank != core:
                    lat += crossbar.line_transfer(line_bytes)
                    stats.onchip_line_bytes += line_bytes + header
                if atomic:
                    stats.atomics_total += 1
                    stats.atomics_on_cores += 1
                    serial[core] += lat * atomic_ser + atomic_stall
                    mem_lat[core] += lat * (1.0 - atomic_ser)
                else:
                    mem_lat[core] += lat
                continue

            latency = access(core, addrs[i], write)
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
        )


class PimConfig:
    """Parameters of the off-chip PIM atomic units (GraphPIM-style)."""

    def __init__(
        self,
        op_cycles: int = 8,
        units: int = 32,
        bytes_per_op: int = 16,
        issue_cycles: int = 1,
    ) -> None:
        if units <= 0:
            raise SimulationError(f"PIM needs >= 1 unit, got {units}")
        #: DRAM-side read-modify-write latency charged as occupancy.
        self.op_cycles = op_cycles
        #: Number of PIM units (one per vault/channel slice).
        self.units = units
        #: Off-chip bytes per atomic (HMC-style 16-byte atomics).
        self.bytes_per_op = bytes_per_op
        #: Core-side cost of issuing the offload packet.
        self.issue_cycles = issue_cycles


class PimHierarchy:
    """GraphPIM-style: vtxProp atomics execute in off-chip memory.

    Non-atomic traffic uses the full (baseline-sized) cache hierarchy;
    every vtxProp atomic becomes a fire-and-forget packet to a PIM unit
    chosen by vertex id, costing off-chip bytes and PIM occupancy
    instead of core stalls.
    """

    def __init__(self, config: SimConfig, pim: Optional[PimConfig] = None) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "PimHierarchy uses the full cache hierarchy; pass a"
                " baseline-style config"
            )
        self.config = config
        self.pim = pim or PimConfig()

    def replay(self, trace: Trace) -> ReplayOutput:
        """Replay with PIM offloading of all vtxProp atomics."""
        trace = trace.interleaved()
        config = self.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        crossbar = Crossbar(config.interconnect, ncores)
        system = _CacheSystem(config, stats, dram, crossbar)
        pim = self.pim
        pim_busy = [0] * pim.units

        cores = trace.core.tolist()
        addrs = trace.addr.tolist()
        classes = trace.access_class.tolist()
        flags = trace.flags.tolist()
        vertices = trace.vertex.tolist()

        mem_lat = stats.core_mem_latency
        serial = stats.core_serial_cycles
        accesses = stats.core_accesses
        access = system.access

        vtxprop = int(AccessClass.VTXPROP)
        atomic_stall = config.core.atomic_stall_cycles
        atomic_ser = config.core.atomic_serialization

        for i in range(len(cores)):
            core = cores[i]
            f = flags[i]
            write = bool(f & FLAG_WRITE)
            atomic = bool(f & FLAG_ATOMIC)
            accesses[core] += 1

            if atomic and classes[i] == vtxprop:
                stats.atomics_total += 1
                stats.atomics_offloaded += 1
                serial[core] += pim.issue_cycles
                unit = vertices[i] % pim.units if vertices[i] >= 0 else 0
                pim_busy[unit] += pim.op_cycles
                # The atomic's RMW happens in memory: off-chip bytes,
                # no cache-line fetch.
                stats.dram_read_bytes += pim.bytes_per_op // 2
                stats.dram_write_bytes += pim.bytes_per_op // 2
                dram.read_bytes += pim.bytes_per_op // 2
                dram.write_bytes += pim.bytes_per_op // 2
                dram.read_accesses += 1
                continue

            latency = access(core, addrs[i], write)
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

        # Report PIM occupancy through the same channel the core model
        # reads PISC occupancy from (max over units bounds the run).
        per_core = [0] * ncores
        for u, busy in enumerate(pim_busy):
            per_core[u % ncores] += busy
        stats.pisc_occupancy = per_core

        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
        )


class DynamicScratchpadHierarchy:
    """Section VI's *dynamic* hot-set identification, made measurable.

    Instead of OMEGA's offline reordering, the scratchpads here are
    managed as a frequency-weighted vertex cache: any vtxProp access
    may allocate its vertex into the (hash-partitioned) pads, and on
    conflict the entry with the higher running access count stays —
    "a hardware cache with a replacement policy based on vertex
    connectivity and a word granularity cache-block size", which the
    paper rejects for its tag overhead (up to 2x storage for BFS) but
    never measures. Hits behave like OMEGA scratchpad accesses
    (atomics offload to the PISC); misses fall through to the cache
    path and train the frequency counters.

    Runs on the *original* vertex ordering — no preprocessing pass.
    """

    def __init__(
        self,
        config: SimConfig,
        capacity_vertices: int,
        microcode=None,
        slots_per_set: int = 4,
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "DynamicScratchpadHierarchy needs an OMEGA-style config"
            )
        if capacity_vertices < 0:
            raise SimulationError(
                f"capacity must be >= 0, got {capacity_vertices}"
            )
        if slots_per_set <= 0:
            raise SimulationError(
                f"slots_per_set must be > 0, got {slots_per_set}"
            )
        self.config = config
        self.capacity_vertices = capacity_vertices
        self.microcode = microcode
        self.slots_per_set = slots_per_set

    def replay(self, trace: Trace) -> ReplayOutput:
        """Replay with dynamic (frequency-based) scratchpad management."""
        from repro.ligra.trace import FLAG_UPDATE
        from repro.memsim.pisc import PiscEngine

        trace = trace.interleaved()
        config = self.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        crossbar = Crossbar(config.interconnect, ncores)
        system = _CacheSystem(config, stats, dram, crossbar)

        use_pisc = config.use_pisc and self.microcode is not None
        piscs = [PiscEngine(p) for p in range(ncores)]
        if use_pisc:
            for p in piscs:
                p.load_microcode(self.microcode)

        num_sets = (
            max(1, self.capacity_vertices // self.slots_per_set)
            if self.capacity_vertices > 0
            else 0
        )
        # Per set: {vertex: access_count}; the min-count entry is the victim.
        sets = [dict() for _ in range(num_sets)]
        freq: dict = {}

        cores = trace.core.tolist()
        addrs = trace.addr.tolist()
        sizes = trace.size.tolist()
        classes = trace.access_class.tolist()
        flags = trace.flags.tolist()
        vertices = trace.vertex.tolist()

        mem_lat = stats.core_mem_latency
        serial = stats.core_serial_cycles
        accesses = stats.core_accesses
        occupancy = stats.pisc_occupancy
        access = system.access

        vtxprop = int(AccessClass.VTXPROP)
        sp_lat = config.scratchpad.latency_cycles
        header = config.interconnect.header_bytes
        offload_issue = config.core.offload_issue_cycles
        atomic_stall = config.core.atomic_stall_cycles
        atomic_ser = config.core.atomic_serialization

        for i in range(len(cores)):
            core = cores[i]
            f = flags[i]
            write = bool(f & FLAG_WRITE)
            atomic = bool(f & FLAG_ATOMIC)
            vertex = vertices[i]
            accesses[core] += 1

            resident = False
            if classes[i] == vtxprop and vertex >= 0 and num_sets:
                count = freq.get(vertex, 0) + 1
                freq[vertex] = count
                entry_set = sets[vertex % num_sets]
                if vertex in entry_set:
                    entry_set[vertex] = count
                    resident = True
                elif len(entry_set) < self.slots_per_set:
                    entry_set[vertex] = count
                    resident = True
                else:
                    victim = min(entry_set, key=entry_set.get)
                    if entry_set[victim] < count:
                        del entry_set[victim]
                        entry_set[vertex] = count
                        resident = True

            if resident:
                home = vertex % ncores
                local = home == core
                nbytes = min(sizes[i], 8)
                if atomic and use_pisc:
                    stats.atomics_total += 1
                    stats.atomics_offloaded += 1
                    stats.pisc_ops += 1
                    serial[core] += offload_issue
                    occupancy[home] += piscs[home].execute(vertex)
                    if local:
                        stats.sp_local_accesses += 1
                    else:
                        stats.sp_remote_accesses += 1
                        crossbar.word_transfer(nbytes, core, home)
                        stats.onchip_word_bytes += nbytes + header
                    continue
                lat = float(sp_lat)
                if local:
                    stats.sp_local_accesses += 1
                    stats.sp_plain_local += 1
                else:
                    stats.sp_remote_accesses += 1
                    stats.sp_plain_remote += 1
                    lat += crossbar.transfer_latency(core, home)
                    crossbar.word_transfer(nbytes, core, home)
                    stats.onchip_word_bytes += nbytes + header
                if atomic:
                    stats.atomics_total += 1
                    stats.atomics_on_cores += 1
                    serial[core] += lat * atomic_ser + atomic_stall
                    mem_lat[core] += lat * (1.0 - atomic_ser)
                else:
                    mem_lat[core] += lat
                continue

            latency = access(core, addrs[i], write)
            if atomic:
                stats.atomics_total += 1
                stats.atomics_on_cores += 1
                serial[core] += latency * atomic_ser + atomic_stall
                mem_lat[core] += latency * (1.0 - atomic_ser)
            else:
                mem_lat[core] += latency

        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
            piscs=piscs,
        )

    def tag_overhead_fraction(self, vtxprop_entry_bytes: int,
                              tag_bytes: int = 4) -> float:
        """Storage overhead of the dynamic approach's per-entry tags.

        The paper's rejection argument: "2x overhead for BFS assuming
        32 bits per tag entry and 32 bits per vtxProp entry".
        """
        if vtxprop_entry_bytes <= 0:
            raise SimulationError(
                f"entry bytes must be > 0, got {vtxprop_entry_bytes}"
            )
        return tag_bytes / vtxprop_entry_bytes

