"""Trace-driven memory-subsystem simulator.

The gem5 substitute: set-associative caches with a MESI-style
directory, a banked shared L2, a crossbar, DRAM bandwidth/latency
accounting, OMEGA's scratchpads + PISC engines + source buffers, an
analytic core timing model, and energy/area models.
"""

from repro.memsim.alternatives import (
    LockedCacheHierarchy,
    PimConfig,
    PimHierarchy,
)
from repro.memsim.area import area_power_table
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.core_model import TimingResult, compute_timing
from repro.memsim.dram import DramModel
from repro.memsim.energy import EnergyBreakdown, EnergyModel
from repro.memsim.hierarchy import BaselineHierarchy, OmegaHierarchy, ReplayOutput
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import MicroOp, Microcode, PiscEngine
from repro.memsim.scratchpad import (
    MonitorRegister,
    ScratchpadController,
    hot_capacity_for,
)
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = [
    "LockedCacheHierarchy",
    "PimConfig",
    "PimHierarchy",
    "area_power_table",
    "Cache",
    "Directory",
    "TimingResult",
    "compute_timing",
    "DramModel",
    "EnergyBreakdown",
    "EnergyModel",
    "BaselineHierarchy",
    "OmegaHierarchy",
    "ReplayOutput",
    "Crossbar",
    "ScratchpadMapping",
    "MicroOp",
    "Microcode",
    "PiscEngine",
    "MonitorRegister",
    "ScratchpadController",
    "hot_capacity_for",
    "SourceVertexBuffer",
    "MemStats",
]
