"""Trace-driven memory-subsystem simulator.

The gem5 substitute: set-associative caches with a MESI-style
directory, a banked shared L2, a crossbar, DRAM bandwidth/latency
accounting, OMEGA's scratchpads + PISC engines + source buffers, an
analytic core timing model, and energy/area models.

All hierarchy variants are routing policies over one batch-vectorized
replay engine (:mod:`repro.memsim.engine`); pick one by name via
:func:`get_backend` / ``run_system(..., backend=...)``.
"""

from repro.memsim.alternatives import (
    LockedCacheHierarchy,
    PimConfig,
    PimHierarchy,
)
from repro.memsim.area import area_power_table
from repro.memsim.cache import Cache
from repro.memsim.coherence import Directory
from repro.memsim.core_model import TimingResult, compute_timing
from repro.memsim.dram import DramModel
from repro.memsim.energy import EnergyBreakdown, EnergyModel
from repro.memsim.engine import (
    BACKENDS,
    HierarchyBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.memsim.geometry import BankGeometry
from repro.memsim.hierarchy import BaselineHierarchy, OmegaHierarchy, ReplayOutput
from repro.memsim.interconnect import Crossbar
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import MicroOp, Microcode, PiscEngine
from repro.memsim.prepass import StreamDetector, TracePrepass, precompute
from repro.memsim.scratchpad import (
    MonitorRegister,
    ScratchpadController,
    hot_capacity_for,
)
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats

__all__ = [
    "LockedCacheHierarchy",
    "PimConfig",
    "PimHierarchy",
    "BACKENDS",
    "HierarchyBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "BankGeometry",
    "StreamDetector",
    "TracePrepass",
    "precompute",
    "area_power_table",
    "Cache",
    "Directory",
    "TimingResult",
    "compute_timing",
    "DramModel",
    "EnergyBreakdown",
    "EnergyModel",
    "BaselineHierarchy",
    "OmegaHierarchy",
    "ReplayOutput",
    "Crossbar",
    "ScratchpadMapping",
    "MicroOp",
    "Microcode",
    "PiscEngine",
    "MonitorRegister",
    "ScratchpadController",
    "hot_capacity_for",
    "SourceVertexBuffer",
    "MemStats",
]
