"""Locked-cache alternative: hot vertices pinned in the shared L2."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.accounting import ReplayContext, account_latencies
from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.registry import register_backend
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import ROUTE_LOCKED

__all__ = ["LockedCacheBackend"]


@register_backend("locked")
class LockedCacheBackend(HierarchyBackend):
    """Hot vertices pinned in the L2 via cache-line locking.

    Uses the same popularity partition as OMEGA (``mapping`` decides
    which vertices are "locked"), but a locked access behaves like a
    guaranteed L2 hit at its home bank: L2 latency, plus a crossbar
    *line* transfer whenever the bank is remote — no word-granularity
    packets, no PISC, atomics serialized on the cores.
    """

    def __init__(self, config: SimConfig, mapping: ScratchpadMapping) -> None:
        if config.use_pisc:
            raise SimulationError(
                "LockedCacheHierarchy has no PISCs; pass use_pisc=False"
            )
        super().__init__(config)
        self.mapping = mapping

    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        return self.mapping

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        routes[prepass.hot] = ROUTE_LOCKED
        return routes

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        idx = np.flatnonzero(routes == ROUTE_LOCKED)
        if len(idx) == 0:
            return
        stats = ctx.stats
        config = ctx.config
        n = len(idx)
        cores = np.asarray(trace.core[idx], dtype=np.int64)
        remote = ~prepass.local[idx]
        n_remote = int(np.count_nonzero(remote))
        stats.l2_hits += n
        lat = np.full(n, float(config.l2_per_core.latency_cycles))
        if n_remote:
            # Locked lines move at line granularity; the transfer cost
            # is the topology's endpoint-free average.
            line_bytes = config.l1.line_bytes
            header = config.interconnect.header_bytes
            lat[remote] += ctx.crossbar.transfer_latency()
            ctx.crossbar.line_packets += n_remote
            ctx.crossbar.line_bytes += n_remote * (line_bytes + header)
            stats.onchip_line_bytes += n_remote * (line_bytes + header)
        account_latencies(ctx, cores, lat, prepass.atomic[idx],
                          family="locked")
