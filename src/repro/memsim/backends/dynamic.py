"""Dynamic hot-set identification (Section VI), made measurable."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.accounting import ReplayContext
from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.registry import register_backend
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import ROUTE_SP_OFFLOAD, ROUTE_SP_PLAIN

__all__ = ["DynamicScratchpadBackend"]


@register_backend("dynamic")
class DynamicScratchpadBackend(HierarchyBackend):
    """Section VI's *dynamic* hot-set identification, made measurable.

    The scratchpads are managed as a frequency-weighted vertex cache:
    any vtxProp access may allocate its vertex into the
    (hash-partitioned) pads, and on conflict the entry with the higher
    running access count stays. Hits behave like OMEGA scratchpad
    accesses (atomics offload to the PISC); misses fall through to the
    cache path and train the frequency counters. Runs on the
    *original* vertex ordering — no preprocessing pass.
    """

    def __init__(
        self,
        config: SimConfig,
        capacity_vertices: int,
        microcode: Optional[Microcode] = None,
        slots_per_set: int = 4,
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "DynamicScratchpadHierarchy needs an OMEGA-style config"
            )
        if capacity_vertices < 0:
            raise SimulationError(
                f"capacity must be >= 0, got {capacity_vertices}"
            )
        if slots_per_set <= 0:
            raise SimulationError(
                f"slots_per_set must be > 0, got {slots_per_set}"
            )
        super().__init__(config)
        self.capacity_vertices = capacity_vertices
        self.microcode = microcode
        self.slots_per_set = slots_per_set

    @property
    def _use_pisc(self) -> bool:
        return self.config.use_pisc and self.microcode is not None

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.piscs = [PiscEngine(p) for p in range(ctx.ncores)]
        if self._use_pisc:
            for p in ctx.piscs:
                p.load_microcode(self.microcode)
        # The frequency trainer's state lives on the context so it
        # carries across trace segments: counts learned in segment k
        # keep deciding victims in segment k+1, exactly as they would
        # in one whole-trace pass.
        num_sets = (
            max(1, self.capacity_vertices // self.slots_per_set)
            if self.capacity_vertices > 0
            else 0
        )
        sets: List[dict] = [dict() for _ in range(num_sets)]
        ctx.extra["dyn_sets"] = sets
        ctx.extra["dyn_freq"] = {}

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        n = prepass.num_events
        routes = np.zeros(n, dtype=np.int8)
        sets = ctx.extra["dyn_sets"]
        num_sets = len(sets)
        if num_sets == 0 or n == 0:
            return routes
        verts_all = np.asarray(trace.vertex, dtype=np.int64)
        cand = prepass.vtxprop & (verts_all >= 0)
        idx = np.flatnonzero(cand)
        # Frequency training is inherently sequential (the running
        # counts decide victims), but only the vtxProp subset walks it.
        verts = verts_all[idx].tolist()
        slots = self.slots_per_set
        freq: dict = ctx.extra["dyn_freq"]
        resident_flags = [False] * len(verts)
        for j, vertex in enumerate(verts):
            count = freq.get(vertex, 0) + 1
            freq[vertex] = count
            entry_set = sets[vertex % num_sets]
            if vertex in entry_set:
                entry_set[vertex] = count
                resident_flags[j] = True
            elif len(entry_set) < slots:
                entry_set[vertex] = count
                resident_flags[j] = True
            else:
                victim = min(entry_set, key=entry_set.get)
                if entry_set[victim] < count:
                    del entry_set[victim]
                    entry_set[vertex] = count
                    resident_flags[j] = True
        resident = np.zeros(n, dtype=bool)
        resident[idx] = resident_flags
        # Dynamic pads hash by vertex id, not by the static chunked map.
        ctx.sp_home = np.where(verts_all >= 0, verts_all % ctx.ncores, 0)
        ctx.sp_local = ctx.sp_home == np.asarray(trace.core, dtype=np.int64)
        if self._use_pisc:
            off = resident & prepass.atomic
            routes[off] = ROUTE_SP_OFFLOAD
            routes[resident & ~off] = ROUTE_SP_PLAIN
        else:
            routes[resident] = ROUTE_SP_PLAIN
        return routes

    def tag_overhead_fraction(self, vtxprop_entry_bytes: int,
                              tag_bytes: int = 4) -> float:
        """Storage overhead of the dynamic approach's per-entry tags.

        The paper's rejection argument: "2x overhead for BFS assuming
        32 bits per tag entry and 32 bits per vtxProp entry".
        """
        if vtxprop_entry_bytes <= 0:
            raise SimulationError(
                f"entry bytes must be > 0, got {vtxprop_entry_bytes}"
            )
        return tag_bytes / vtxprop_entry_bytes
