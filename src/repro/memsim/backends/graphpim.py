"""GraphPIM-style alternative: vtxProp atomics execute in memory."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.accounting import ReplayContext
from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.registry import register_backend
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import ROUTE_PIM

__all__ = ["GraphPimBackend", "PimConfig"]


class PimConfig:
    """Parameters of the off-chip PIM atomic units (GraphPIM-style)."""

    def __init__(
        self,
        op_cycles: int = 8,
        units: int = 32,
        bytes_per_op: int = 16,
        issue_cycles: int = 1,
    ) -> None:
        if units <= 0:
            raise SimulationError(f"PIM needs >= 1 unit, got {units}")
        #: DRAM-side read-modify-write latency charged as occupancy.
        self.op_cycles = op_cycles
        #: Number of PIM units (one per vault/channel slice).
        self.units = units
        #: Off-chip bytes per atomic (HMC-style 16-byte atomics).
        self.bytes_per_op = bytes_per_op
        #: Core-side cost of issuing the offload packet.
        self.issue_cycles = issue_cycles


@register_backend("graphpim")
class GraphPimBackend(HierarchyBackend):
    """GraphPIM-style: vtxProp atomics execute in off-chip memory.

    Non-atomic traffic uses the full (baseline-sized) cache hierarchy;
    every vtxProp atomic becomes a fire-and-forget packet to a PIM unit
    chosen by vertex id, costing off-chip bytes and PIM occupancy
    instead of core stalls.
    """

    def __init__(self, config: SimConfig,
                 pim: Optional[PimConfig] = None) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "PimHierarchy uses the full cache hierarchy; pass a"
                " baseline-style config"
            )
        super().__init__(config)
        self.pim = pim or PimConfig()
        self.pim_bytes_per_op = self.pim.bytes_per_op

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.extra["pim_busy"] = [0] * self.pim.units

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        routes[prepass.vtxprop & prepass.atomic] = ROUTE_PIM
        return routes

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        idx = np.flatnonzero(routes == ROUTE_PIM)
        if len(idx) == 0:
            return
        stats = ctx.stats
        pim = self.pim
        n = len(idx)
        cores = np.asarray(trace.core[idx], dtype=np.int64)
        stats.atomics_total += n
        stats.atomics_offloaded += n
        counts = np.bincount(cores, minlength=ctx.ncores)
        serial = (
            ctx.ledger.serial["pim"] if ctx.ledger is not None
            else stats.core_serial_cycles
        )
        for c in range(ctx.ncores):
            serial[c] += float(counts[c]) * pim.issue_cycles
        verts = np.asarray(trace.vertex[idx], dtype=np.int64)
        units = np.where(verts >= 0, verts % pim.units, 0)
        busy = np.bincount(units, minlength=pim.units) * pim.op_cycles
        pim_busy = ctx.extra["pim_busy"]
        for u in range(pim.units):
            pim_busy[u] += int(busy[u])
        # The atomic's RMW happens in memory: off-chip bytes, no
        # cache-line fetch.
        half = pim.bytes_per_op // 2
        stats.dram_read_bytes += n * half
        stats.dram_write_bytes += n * half
        ctx.dram.read_bytes += n * half
        ctx.dram.write_bytes += n * half
        ctx.dram.read_accesses += n

    def finalize(self, ctx: ReplayContext) -> None:
        # Report PIM occupancy through the same channel the core model
        # reads PISC occupancy from (max over units bounds the run).
        per_core = [0] * ctx.ncores
        for u, busy in enumerate(ctx.extra["pim_busy"]):
            per_core[u % ctx.ncores] += busy
        ctx.stats.pisc_occupancy = per_core
