"""The paper's baseline CMP: caches only, atomics on the cores."""

from __future__ import annotations

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.registry import register_backend

__all__ = ["BaselineBackend"]


@register_backend("baseline")
class BaselineBackend(HierarchyBackend):
    """The paper's baseline CMP: caches only, atomics on the cores."""

    def __init__(self, config: SimConfig, dram_random_ranges=()) -> None:
        if config.use_scratchpad:
            raise SimulationError(
                "BaselineHierarchy requires a config without scratchpads"
            )
        super().__init__(config)
        #: (start, end) address ranges served close-page under the
        #: "hybrid" DRAM policy (the vtxProp regions).
        self.dram_random_ranges = tuple(dram_random_ranges)
