"""Backend registry: name → class, the pluggable surface.

Backends register under a short name (``"baseline"``, ``"omega"``,
``"locked"``, ``"graphpim"``, ``"dynamic"``) so drivers and the CLI
can select them with a string (:func:`get_backend` /
``run_system(..., backend="omega")``). Third-party hierarchies get
the same treatment: decorate a :class:`HierarchyBackend` subclass
with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import SimulationError

__all__ = ["BACKENDS", "register_backend", "get_backend", "backend_names"]

#: Registry of backend names → classes (the pluggable surface).
BACKENDS: Dict[str, type] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def deco(cls: Type) -> Type:
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return deco


def get_backend(name: str) -> Type:
    """Look up a registered backend class by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; known: {', '.join(sorted(BACKENDS))}"
        ) from None


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(BACKENDS)
