"""OMEGA: halved L2 + partitioned scratchpads + PISCs + source buffers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.accounting import ReplayContext, add_core_sums
from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.registry import register_backend
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import Microcode, PiscEngine
from repro.memsim.prepass import TracePrepass
from repro.memsim.routes import (
    ROUTE_SP_OFFLOAD,
    ROUTE_SP_PLAIN,
    ROUTE_SP_RMW,
    ROUTE_SRCBUF_HIT,
)
from repro.memsim.srcbuffer import SourceVertexBuffer

__all__ = ["OmegaBackend"]


@register_backend("omega")
class OmegaBackend(HierarchyBackend):
    """OMEGA: halved L2 + partitioned scratchpads + PISCs + source buffers."""

    def __init__(
        self,
        config: SimConfig,
        mapping: ScratchpadMapping,
        microcode: Optional[Microcode] = None,
        dram_random_ranges=(),
    ) -> None:
        if not config.use_scratchpad:
            raise SimulationError(
                "OmegaHierarchy requires a config with use_scratchpad=True"
            )
        super().__init__(config)
        self.mapping = mapping
        self.microcode = microcode
        self.dram_random_ranges = tuple(dram_random_ranges)

    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        return self.mapping

    @property
    def _use_pisc(self) -> bool:
        return self.config.use_pisc and self.microcode is not None

    def prepare(self, ctx: ReplayContext) -> None:
        ctx.piscs = [PiscEngine(p) for p in range(ctx.ncores)]
        if self._use_pisc:
            for p in ctx.piscs:
                p.load_microcode(self.microcode)
        if self.config.use_source_buffer:
            ctx.srcbufs = [
                SourceVertexBuffer(self.config.source_buffer_entries)
                for _ in range(ctx.ncores)
            ]

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        routes = np.zeros(prepass.num_events, dtype=np.int8)
        hot = prepass.hot
        # Offload to the PISC: always for atomics; for plain
        # update-function writes only when the pad is remote (a local
        # owner-write is cheaper done by the core). Without PISCs the
        # core performs hot atomics itself over SP word accesses.
        if self._use_pisc:
            taken = hot & (prepass.atomic | (prepass.update & ~prepass.local))
            routes[taken] = ROUTE_SP_OFFLOAD
        else:
            taken = hot & prepass.atomic
            routes[taken] = ROUTE_SP_RMW
        plain = hot & ~taken
        routes[plain] = ROUTE_SP_PLAIN
        if ctx.srcbufs is not None:
            cand = (
                plain & prepass.src_read & ~prepass.write & ~prepass.local
            )
            hits = srcbuf_stage(ctx, trace, np.flatnonzero(cand))
            routes[hits] = ROUTE_SRCBUF_HIT
        return routes

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        # Source-buffer hits: 1-cycle local reads. The stateful LRU walk
        # in srcbuf_stage decides them at route time, but they are
        # charged here so windowed/segmented replays attribute them to
        # the window they occur in.
        idx = np.flatnonzero(routes == ROUTE_SRCBUF_HIT)
        if len(idx):
            stats = ctx.stats
            stats.srcbuf_hits += len(idx)
            cores = np.asarray(trace.core[idx], dtype=np.int64)
            ones = np.ones(len(idx))
            if ctx.ledger is not None:
                ctx.ledger.add_mem("srcbuf", cores, ones)
            else:
                add_core_sums(
                    stats.core_mem_latency, cores, ones, ctx.ncores
                )
        super().account(ctx, trace, prepass, routes)


def srcbuf_stage(ctx: ReplayContext, trace: Trace,
                 cand_idx: np.ndarray) -> np.ndarray:
    """Run the stateful source-buffer LRU over its candidate events.

    Walks only the candidates (in trace order), applying the wholesale
    barrier invalidations at the positions the full scan would.
    Returns the hit indices (charged by :meth:`OmegaBackend.account`);
    misses read-allocate and fall through to the plain-SP route.
    """
    srcbufs = ctx.srcbufs
    n = trace.num_events
    barriers = sorted({int(b) for b in trace.barriers.tolist() if 0 <= b < n})
    positions = cand_idx.tolist()
    cores = np.asarray(trace.core[cand_idx], dtype=np.int64).tolist()
    addrs = np.asarray(trace.addr[cand_idx], dtype=np.int64).tolist()
    hits: List[int] = []
    bi = 0
    nb = len(barriers)
    for j in range(len(positions)):
        p = positions[j]
        while bi < nb and barriers[bi] <= p:
            for buf in srcbufs:
                buf.invalidate_all()
            bi += 1
        if srcbufs[cores[j]].lookup(addrs[j]):
            hits.append(p)
    while bi < nb:
        for buf in srcbufs:
            buf.invalidate_all()
        bi += 1
    return np.asarray(hits, dtype=np.int64)
