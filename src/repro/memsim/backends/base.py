"""The backend protocol: a memory hierarchy as a routing policy.

Subclasses validate their configuration in ``__init__``, spin up any
private structures in :meth:`HierarchyBackend.prepare` (PISCs, source
buffers), assign one ``ROUTE_*`` code per event in
:meth:`HierarchyBackend.route`, and charge everything that is not the
stateful cache path in :meth:`HierarchyBackend.account` (vectorized).
The template :meth:`HierarchyBackend.replay` delegates to the shared
driver (:func:`repro.memsim.replay.run_replay`), which owns the
pre-pass, the cache stage, and the per-core access counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SimConfig
from repro.ligra.trace import Trace
from repro.memsim.accounting import (
    ReplayContext,
    account_offload,
    account_sp_plain,
    account_sp_rmw,
)
from repro.memsim.mapping import ScratchpadMapping
from repro.memsim.pisc import Microcode
from repro.memsim.prepass import TracePrepass
from repro.memsim.replay import ReplayOutput, run_replay, run_replay_segments
from repro.memsim.routes import (
    ROUTE_SP_OFFLOAD,
    ROUTE_SP_PLAIN,
    ROUTE_SP_RMW,
)
from repro.obs.timeline import ReplaySampler

__all__ = ["HierarchyBackend"]


class HierarchyBackend:
    """A memory hierarchy as a routing policy over the shared engine."""

    #: Registry name; set by :func:`register_backend`.
    name = "?"

    #: Debug/benchmark escape hatch: force the per-event scalar cache
    #: loop even when the config qualifies for the batch kernel.
    force_scalar_cache = False

    #: Context-threaded scalar-cache flag: ``run_system`` copies its
    #: :class:`repro.core.context.RunContext.scalar_cache` here so the
    #: replay driver constructs the :class:`CacheSystem` without any
    #: ambient (environment) read on the hot path. ``None`` means
    #: "no context" — the cache system then falls back to the
    #: deprecated ``scalar_cache_forced()`` veneer; ``force_scalar_cache``
    #: above still wins over both.
    scalar_cache: Optional[bool] = None

    #: Off-chip bytes charged per in-memory atomic (non-zero only for
    #: PIM-style backends); read by the attribution accumulator so its
    #: per-class DRAM folds mirror the backend's accounting.
    pim_bytes_per_op = 0

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.dram_random_ranges = ()
        self.microcode: Optional[Microcode] = None

    # -- hooks ---------------------------------------------------------
    def prepass_mapping(self) -> Optional[ScratchpadMapping]:
        """Mapping used by the pre-pass for hot/home/local columns."""
        return None

    def prepare(self, ctx: ReplayContext) -> None:
        """Create backend-private structures before routing."""

    def route(self, ctx: ReplayContext, trace: Trace,
              prepass: TracePrepass) -> np.ndarray:
        """Assign one ROUTE_* code per event (default: all cache)."""
        return np.zeros(prepass.num_events, dtype=np.int8)

    def account(self, ctx: ReplayContext, trace: Trace,
                prepass: TracePrepass, routes: np.ndarray) -> None:
        """Batch-account all non-cache routes (scratchpad family)."""
        home = ctx.sp_home if ctx.sp_home is not None else prepass.home
        local = ctx.sp_local if ctx.sp_local is not None else prepass.local
        account_sp_plain(
            ctx, trace, prepass, np.flatnonzero(routes == ROUTE_SP_PLAIN),
            home, local,
        )
        account_sp_rmw(
            ctx, trace, prepass, np.flatnonzero(routes == ROUTE_SP_RMW),
            home, local,
        )
        off = np.flatnonzero(routes == ROUTE_SP_OFFLOAD)
        if len(off):
            account_offload(
                ctx, trace, prepass, off, self.microcode, home, local
            )

    def finalize(self, ctx: ReplayContext) -> None:
        """Post-accounting fixups (e.g. fold PIM occupancy)."""

    # -- the engine ----------------------------------------------------
    def replay(self, trace: Trace,
               sampler: Optional[ReplaySampler] = None,
               attribution=None) -> ReplayOutput:
        """Replay ``trace``: pre-pass, route, cache stage, accounting.

        Delegates to :func:`repro.memsim.replay.run_replay`; see its
        docstring for the windowed-sampling and attribution contracts.
        """
        return run_replay(self, trace, sampler, attribution)

    def replay_segments(self, segments,
                        sampler: Optional[ReplaySampler] = None,
                        attribution=None) -> ReplayOutput:
        """Replay a segmented trace stream with bounded resident memory.

        ``segments`` is a :class:`repro.ligra.segments.SegmentedTrace`
        (an interleaved archive). Counters are bit-identical to
        :meth:`replay` over the materialized trace; see
        :func:`repro.memsim.replay.run_replay_segments`.
        """
        return run_replay_segments(self, segments, sampler, attribution)
