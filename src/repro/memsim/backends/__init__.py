"""Hierarchy backends: one module per design, plus the registry.

Importing this package registers the five built-in backends
(``baseline``, ``omega``, ``locked``, ``graphpim``, ``dynamic``) and
exposes the registry surface (:data:`BACKENDS`,
:func:`register_backend`, :func:`get_backend`, :func:`backend_names`)
together with the :class:`HierarchyBackend` protocol.
"""

from repro.memsim.backends.base import HierarchyBackend
from repro.memsim.backends.baseline import BaselineBackend
from repro.memsim.backends.dynamic import DynamicScratchpadBackend
from repro.memsim.backends.graphpim import GraphPimBackend, PimConfig
from repro.memsim.backends.locked import LockedCacheBackend
from repro.memsim.backends.omega import OmegaBackend
from repro.memsim.backends.registry import (
    BACKENDS,
    backend_names,
    get_backend,
    register_backend,
)

__all__ = [
    "HierarchyBackend",
    "BaselineBackend",
    "OmegaBackend",
    "LockedCacheBackend",
    "GraphPimBackend",
    "DynamicScratchpadBackend",
    "PimConfig",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "backend_names",
]
