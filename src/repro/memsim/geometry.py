"""Shared line/bank address arithmetic for every memory hierarchy.

Every hierarchy variant needs the same three pieces of address math:
byte address → cache-line id, line id → home L2 bank (low-bit
interleave), and line id → bank-local key (the line with its bank bits
dropped). Before the engine refactor each replay loop carried its own
copy of these shifts and masks; they now live in one place, in both
scalar and numpy-vectorized form, so the pre-pass and the stateful
loop are guaranteed to agree.

The interleave is the paper's Table III banking: the shared L2 is
split into one bank per core and lines are distributed by their low
bits, so consecutive lines land on consecutive banks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["BankGeometry"]


@dataclass(frozen=True)
class BankGeometry:
    """Line and bank arithmetic for a banked, line-interleaved L2.

    Parameters
    ----------
    num_banks:
        Number of L2 banks (one per core). Must be a power of two so
        the interleave reduces to a mask.
    line_bytes:
        Cache-line size in bytes. Must be a power of two.
    """

    num_banks: int
    line_bytes: int

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ConfigError(
                f"num_banks must be a positive power of two,"
                f" got {self.num_banks}"
            )
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(
                f"line_bytes must be a positive power of two,"
                f" got {self.line_bytes}"
            )

    @property
    def line_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return self.line_bytes.bit_length() - 1

    @property
    def bank_bits(self) -> int:
        """Number of line bits consumed by the bank interleave."""
        return max(self.num_banks.bit_length() - 1, 0)

    @property
    def bank_mask(self) -> int:
        """Mask selecting a line's bank bits."""
        return self.num_banks - 1

    # ------------------------------------------------------------------
    # Scalar forms (the stateful loop)
    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Cache-line id of a byte address."""
        return addr >> self.line_bits

    def bank_of(self, line: int) -> int:
        """Home L2 bank of a line (low-bit interleave)."""
        return line & self.bank_mask

    def bank_key_of(self, line: int) -> int:
        """Bank-local line key (the line with its bank bits dropped)."""
        return line >> self.bank_bits

    def line_from_bank(self, bank_key: int, bank: int) -> int:
        """Inverse of (:meth:`bank_of`, :meth:`bank_key_of`)."""
        return (bank_key << self.bank_bits) | bank

    def addr_of_line(self, line: int) -> int:
        """First byte address of a line."""
        return line << self.line_bits

    def victim_addr(self, bank_key: int, bank: int) -> int:
        """Byte address of an evicted bank-local line (for DRAM
        write-back accounting)."""
        return self.addr_of_line(self.line_from_bank(bank_key, bank))

    # ------------------------------------------------------------------
    # Vectorized forms (the pre-pass)
    # ------------------------------------------------------------------
    def lines_of(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`line_of`."""
        return np.asarray(addrs, dtype=np.int64) >> self.line_bits

    def banks_of(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bank_of`."""
        return np.asarray(lines, dtype=np.int64) & self.bank_mask

    def bank_keys_of(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bank_key_of`."""
        return np.asarray(lines, dtype=np.int64) >> self.bank_bits
