"""Per-core source vertex buffer (paper Section V-C, Figure 11).

A small read-only buffer in front of the remote scratchpads: when a
core reads a *source* vertex's vtxProp (SSSP-style algorithms read it
once per outgoing edge), the first read pays the remote-scratchpad
latency and fills the buffer; subsequent reads of the same vertex hit
locally. Because source properties are stable within an algorithm
iteration, the buffer needs no coherence — it is simply invalidated
wholesale at every iteration boundary.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

__all__ = ["SourceVertexBuffer"]


class SourceVertexBuffer:
    """LRU buffer of recently read (prop, vertex) source entries."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ConfigError(f"buffer needs >= 1 entry, got {num_entries}")
        self.num_entries = num_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, key: int) -> bool:
        """Check for ``key``; on miss, allocate it (read-allocate)."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return True
        self.misses += 1
        if len(self._entries) >= self.num_entries:
            self._entries.popitem(last=False)
        self._entries[key] = None
        return False

    def invalidate_all(self) -> None:
        """End-of-iteration wholesale invalidation."""
        self.invalidations += 1
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hit rate over all lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)
