"""PISC (Processing-In-SCratchpad) engine model (Section V-B, Fig 9).

Each scratchpad is paired with a PISC: a microcoded ALU that executes
the algorithm's atomic update in-situ. The engine holds

- **microcode registers** storing the micro-op sequence for the
  current algorithm's update function (written at application start by
  the offload compiler's generated configuration code),
- a simple **ALU** supporting the :class:`~repro.ligra.atomics.AtomicOp`
  vocabulary (its fp adder dominates PISC area/power), and
- a **sequencer** that interprets offload commands: read the vertex's
  scratchpad line, run the ALU, write back, and update the active
  list.

The timing model charges each offloaded op the microcode's total
cycle count as *occupancy* on that pad — offloads are fire-and-forget
for the issuing core, so a pad can become the bottleneck only when
its op stream exceeds the run length (tracked by the core model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import OffloadError
from repro.ligra.atomics import AtomicOp

__all__ = ["MicroOp", "Microcode", "PiscEngine", "MICRO_OP_CYCLES"]


class MicroOp(enum.Enum):
    """Micro-operations the PISC sequencer can issue."""

    SP_READ = "sp_read"          # read the vertex's scratchpad line
    ALU = "alu"                  # combine with the incoming operand
    GUARD = "guard"              # conditional check (CAS-style ops)
    SP_WRITE = "sp_write"        # write the result back
    SET_ACTIVE_DENSE = "set_active_dense"    # set the in-line active bit
    APPEND_ACTIVE_SPARSE = "append_active_sparse"  # push id via L1


#: Per-micro-op cycle costs (scratchpad latency dominates).
MICRO_OP_CYCLES: Dict[MicroOp, int] = {
    MicroOp.SP_READ: 1,
    MicroOp.ALU: 1,
    MicroOp.GUARD: 1,
    MicroOp.SP_WRITE: 1,
    MicroOp.SET_ACTIVE_DENSE: 1,
    MicroOp.APPEND_ACTIVE_SPARSE: 2,
}


@dataclass(frozen=True)
class Microcode:
    """A compiled update function: micro-op sequence plus its ALU op(s).

    Compound updates (Radii's "or & signed min") carry one ALU micro-op
    per operation; ``alu_op`` remains the primary op (the PISC's area
    and energy driver) and ``extra_alu_ops`` the rest.
    """

    name: str
    ops: Tuple[MicroOp, ...]
    alu_op: AtomicOp
    extra_alu_ops: Tuple[AtomicOp, ...] = ()

    def __post_init__(self) -> None:
        alu_steps = sum(1 for op in self.ops if op is MicroOp.ALU)
        if alu_steps and self.alu_op is None:
            raise OffloadError(f"microcode {self.name!r} uses ALU without an op")
        if alu_steps != (1 + len(self.extra_alu_ops)) and alu_steps > 0:
            raise OffloadError(
                f"microcode {self.name!r} has {alu_steps} ALU steps for"
                f" {1 + len(self.extra_alu_ops)} operations"
            )
        if not self.ops:
            raise OffloadError(f"microcode {self.name!r} is empty")

    @property
    def alu_ops(self) -> Tuple[AtomicOp, ...]:
        """All ALU operations, primary first."""
        return (self.alu_op, *self.extra_alu_ops)

    @property
    def cycles(self) -> int:
        """Total sequencer cycles per offloaded operation."""
        return sum(MICRO_OP_CYCLES[op] for op in self.ops)


class PiscEngine:
    """One pad's PISC: executes offloaded atomic updates.

    Tracks occupancy (busy cycles) and operation counts; the in-flight
    blocking rule ("the scratchpad controller blocks all requests
    issued to the same vertex" while an atomic is in progress) is
    modeled as a serialization charge when consecutive ops hit the
    same vertex.
    """

    def __init__(self, pad_id: int) -> None:
        self.pad_id = pad_id
        self._microcode: Optional[Microcode] = None
        self.ops_executed = 0
        self.busy_cycles = 0
        self.conflict_cycles = 0
        self._last_vertex = -1

    def load_microcode(self, microcode: Microcode) -> None:
        """Write the microcode registers (application-start config)."""
        self._microcode = microcode

    @property
    def microcode(self) -> Optional[Microcode]:
        """Currently loaded microcode."""
        return self._microcode

    def execute(self, vertex: int) -> int:
        """Execute one offloaded atomic on ``vertex``; returns cycles.

        Back-to-back operations on the same vertex serialize (the
        controller's same-vertex blocking); distinct vertices pipeline
        freely through the pad.
        """
        if self._microcode is None:
            raise OffloadError(
                f"PISC {self.pad_id} has no microcode loaded; run the"
                " offload compiler's configuration step first"
            )
        cycles = self._microcode.cycles
        self.ops_executed += 1
        self.busy_cycles += cycles
        if vertex == self._last_vertex:
            self.conflict_cycles += cycles
        self._last_vertex = vertex
        return cycles
