"""Memory-system energy model (paper Fig 21).

The paper models components with McPAT (cores) and Cacti (caches and
scratchpads) at 45 nm, and synthesizes the PISC. We reproduce the
*memory-activity* energy breakdown with per-access/per-byte constants
whose ratios follow those tools' published characteristics:

- a direct-mapped scratchpad access is cheaper than a same-capacity
  set-associative cache access (no tag array/comparators — the same
  reason Table IV shows a smaller area for the scratchpads),
- DRAM energy dwarfs on-chip accesses per byte,
- a PISC ALU op costs far less than the equivalent core activity.

Absolute joules are not the claim (the testbed differs); the ratios
that drive the paper's "~2.5x energy saving" are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.memsim.stats import MemStats

__all__ = ["EnergyModel", "EnergyBreakdown"]

#: Capacities the default per-access constants were characterized at
#: (the paper's Table III sizes).
_REF_L1_BYTES = 16 * 1024
_REF_L2_BYTES = 2 * 1024 * 1024
_REF_SP_BYTES = 1024 * 1024


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants, in nanojoules."""

    l1_access_nj: float = 0.03
    l2_access_nj: float = 0.45
    sp_access_nj: float = 0.18
    srcbuf_access_nj: float = 0.01
    pisc_op_nj: float = 0.012
    #: Extra energy of a core-executed atomic (pipeline + LSU activity).
    core_atomic_nj: float = 0.25
    dram_nj_per_byte: float = 0.35
    noc_nj_per_byte: float = 0.012

    @classmethod
    def for_config(cls, config) -> "EnergyModel":
        """Scale the storage constants to a configuration's sizes.

        Cacti-class models put SRAM access energy roughly proportional
        to the square root of capacity (bitline/wordline lengths grow
        with each array dimension); the defaults are characterized at
        the paper's Table III sizes, so a scaled-down config's storage
        costs proportionally less per access. DRAM and NoC per-byte
        costs are size-independent.
        """
        def scale(ref_nj: float, ref_bytes: int, actual_bytes: int) -> float:
            if actual_bytes <= 0:
                return ref_nj
            return ref_nj * math.sqrt(actual_bytes / ref_bytes)

        base = cls()
        return replace(
            base,
            l1_access_nj=scale(base.l1_access_nj, _REF_L1_BYTES,
                               config.l1.size_bytes),
            l2_access_nj=scale(base.l2_access_nj, _REF_L2_BYTES,
                               config.l2_per_core.size_bytes),
            sp_access_nj=scale(base.sp_access_nj, _REF_SP_BYTES,
                               config.scratchpad.size_bytes),
        )

    def breakdown(self, stats: MemStats) -> "EnergyBreakdown":
        """Energy by component for one run's counters."""
        cache = (
            stats.l1_accesses * self.l1_access_nj
            + stats.l2_accesses * self.l2_access_nj
        )
        scratchpad = (
            stats.sp_accesses * self.sp_access_nj
            + stats.srcbuf_hits * self.srcbuf_access_nj
            + stats.pisc_ops * self.pisc_op_nj
        )
        atomics = stats.atomics_on_cores * self.core_atomic_nj
        dram = stats.dram_bytes * self.dram_nj_per_byte
        noc = stats.onchip_traffic_bytes * self.noc_nj_per_byte
        return EnergyBreakdown(
            cache_nj=cache,
            scratchpad_nj=scratchpad,
            core_atomic_nj=atomics,
            dram_nj=dram,
            noc_nj=noc,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Memory-activity energy split (the Fig 21 bars)."""

    cache_nj: float
    scratchpad_nj: float
    core_atomic_nj: float
    dram_nj: float
    noc_nj: float

    @property
    def total_nj(self) -> float:
        """Total memory-system energy."""
        return (
            self.cache_nj
            + self.scratchpad_nj
            + self.core_atomic_nj
            + self.dram_nj
            + self.noc_nj
        )

    def as_dict(self) -> Dict[str, float]:
        """Component → nJ mapping for table printers."""
        return {
            "cache": self.cache_nj,
            "scratchpad": self.scratchpad_nj,
            "core_atomics": self.core_atomic_nj,
            "dram": self.dram_nj,
            "noc": self.noc_nj,
            "total": self.total_nj,
        }
