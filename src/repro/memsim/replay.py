"""The replay driver: pre-pass, route, cache stage, accounting.

This is the engine's control flow, shared by every backend. A replay
is four stages — interleave the trace, classify it in the vectorized
pre-pass, ask the backend for one route code per event, then execute:
cache-routed events run through the stateful
:class:`~repro.memsim.cachestate.CacheSystem` kernel, everything else
is batch-accounted by the backend. Telemetry sampling
(:class:`~repro.obs.timeline.ReplaySampler`) switches execution to
fixed-size windows over the same machinery via
:class:`~repro.memsim.routes.WindowedRoutes`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ligra.trace import Trace
from repro.memsim.cache import Cache
from repro.memsim.cachestate import CacheSystem
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.pisc import PiscEngine
from repro.memsim.prepass import TracePrepass, precompute
from repro.memsim.routes import ROUTE_CACHE, WindowedRoutes
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats
from repro.obs import get_registry, get_tracer
from repro.obs.timeline import ReplaySampler

__all__ = ["ReplayOutput", "run_replay"]

_LOG = logging.getLogger("repro.memsim.engine")


@dataclass
class ReplayOutput:
    """Everything a replay produces, for the timing/energy models."""

    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    l1s: List[Cache]
    l2_banks: List[Cache]
    directory: Directory
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    piscs: Optional[List[PiscEngine]] = None


def run_replay(backend, trace: Trace,
               sampler: Optional[ReplaySampler] = None) -> ReplayOutput:
    """Replay ``trace`` through ``backend``; the engine template.

    ``sampler`` (a :class:`repro.obs.ReplaySampler`) switches the
    cache stage and the batch accounting to windowed execution: every
    N events the cumulative counters are snapshotted into a timeline
    row. The stateful cache system persists across windows and
    per-route event order is unchanged, so all integer counters are
    identical to the unwindowed replay; per-core latency sums differ
    only by float-summation order.
    """
    from repro.memsim.accounting import ReplayContext

    tracer = get_tracer()
    metrics = get_registry()
    with tracer.span("replay", cat="replay", backend=backend.name,
                     events=trace.num_events) as replay_span:
        with tracer.span("interleave", cat="replay"):
            trace = trace.interleaved()
        config = backend.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        dram.set_random_ranges(backend.dram_random_ranges)
        crossbar = Crossbar(config.interconnect, ncores)
        system = CacheSystem(config, stats, dram, crossbar)
        if backend.force_scalar_cache:
            system.fast_path_ok = False
        ctx = ReplayContext(
            config=config, stats=stats, dram=dram, crossbar=crossbar,
            system=system, ncores=ncores,
        )
        backend.prepare(ctx)
        with tracer.span("prepass", cat="replay"):
            prepass = precompute(
                trace, config, mapping=backend.prepass_mapping()
            )
        with tracer.span("route", cat="replay"):
            routes = backend.route(ctx, trace, prepass)

        cache_idx = np.flatnonzero(routes == ROUTE_CACHE)
        metrics.counter("replay.events").inc(prepass.num_events)
        metrics.counter("replay.cache_events").inc(len(cache_idx))
        metrics.counter("replay.offchip_routed_events").inc(
            prepass.num_events - len(cache_idx)
        )
        if sampler is not None and prepass.num_events:
            _run_windowed(
                backend, ctx, trace, prepass, routes, cache_idx, sampler,
                tracer,
            )
            replay_span.annotate(windows=sampler.timeline().num_windows)
        else:
            with tracer.span("cache_path", cat="replay",
                             events=len(cache_idx)):
                if len(cache_idx):
                    system.replay_cache_path(
                        trace.core[cache_idx],
                        trace.addr[cache_idx],
                        prepass.lines[cache_idx],
                        prepass.banks[cache_idx],
                        prepass.bank_keys[cache_idx],
                        prepass.write[cache_idx],
                        prepass.atomic[cache_idx],
                        stats.core_mem_latency,
                        stats.core_serial_cycles,
                    )
            with tracer.span("account", cat="replay"):
                backend.account(ctx, trace, prepass, routes)
        counts = np.bincount(
            np.asarray(trace.core, dtype=np.int64), minlength=ncores
        )
        stats.core_accesses = [int(x) for x in counts]
        backend.finalize(ctx)
        _LOG.debug(
            "replayed %d events through %s (%d cache-routed,"
            " l2 hit rate %.4f)",
            prepass.num_events, backend.name, len(cache_idx),
            stats.l2_hit_rate,
        )
        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
            srcbufs=ctx.srcbufs,
            piscs=ctx.piscs,
        )


def _run_windowed(
    backend,
    ctx,
    trace: Trace,
    prepass: TracePrepass,
    routes: np.ndarray,
    cache_idx: np.ndarray,
    sampler: ReplaySampler,
    tracer,
) -> None:
    """Windowed cache stage + accounting for timeline sampling.

    Each window replays its cache-routed slice through the shared
    stateful system and batch-accounts its non-cache routes via a
    masked copy of the route array
    (:class:`~repro.memsim.routes.WindowedRoutes`: out-of-window
    events carry the masked sentinel, which matches no route code),
    then snapshots the cumulative counters into the sampler.
    Accounting performed during :meth:`route` (e.g. source-buffer
    hits) lands in the first window's row.
    """
    n = prepass.num_events
    core = ctx.config.core
    window = sampler.begin(
        n, ctx.ncores, core.compute_cycles_per_access, core.mlp,
        core.imbalance_factor, core.freq_ghz,
    )
    stats = ctx.stats
    system = ctx.system
    windowed = WindowedRoutes(routes)
    lo = 0
    while lo < n:
        hi = min(lo + window, n)
        wall_start = time.perf_counter()
        with tracer.span("window", cat="replay", start_event=lo,
                         end_event=hi):
            ci_lo, ci_hi = np.searchsorted(cache_idx, (lo, hi))
            sub = cache_idx[ci_lo:ci_hi]
            if len(sub):
                system.replay_cache_path(
                    trace.core[sub],
                    trace.addr[sub],
                    prepass.lines[sub],
                    prepass.banks[sub],
                    prepass.bank_keys[sub],
                    prepass.write[sub],
                    prepass.atomic[sub],
                    stats.core_mem_latency,
                    stats.core_serial_cycles,
                )
            backend.account(ctx, trace, prepass, windowed.fill(lo, hi))
            windowed.clear(lo, hi)
        sampler.record(lo, hi, stats, time.perf_counter() - wall_start)
        lo = hi
