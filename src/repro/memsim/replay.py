"""The replay driver: pre-pass, route, cache stage, accounting.

This is the engine's control flow, shared by every backend. A replay
is four stages — interleave the trace, classify it in the vectorized
pre-pass, ask the backend for one route code per event, then execute:
cache-routed events run through the stateful
:class:`~repro.memsim.cachestate.CacheSystem` kernel, everything else
is batch-accounted by the backend. Telemetry sampling
(:class:`~repro.obs.timeline.ReplaySampler`) switches execution to
fixed-size windows over the same machinery via
:class:`~repro.memsim.routes.WindowedRoutes`.

Out-of-core streaming is the same driver over a different *source*:
:func:`run_replay` wraps an in-core trace as a single segment and
:func:`run_replay_segments` walks a
:class:`~repro.ligra.segments.SegmentedTrace` one bounded segment at a
time. All simulator state (caches, directory, DRAM open rows,
prefetchers, source buffers, PISCs, the backend's training state in
``ctx.extra``) is carried across segment boundaries on the shared
:class:`~repro.memsim.accounting.ReplayContext`, and per-core float
latencies accumulate through the
:class:`~repro.memsim.accounting.LatencyLedger`, so streamed replay
produces counters bit-identical to in-core replay.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.ligra.trace import Trace
from repro.memsim.cache import Cache
from repro.memsim.cachestate import CacheRecord, CacheSystem
from repro.memsim.coherence import Directory
from repro.memsim.dram import DramModel
from repro.memsim.interconnect import Crossbar
from repro.memsim.pisc import PiscEngine
from repro.memsim.prepass import precompute
from repro.memsim.routes import ROUTE_CACHE, WindowedRoutes
from repro.memsim.srcbuffer import SourceVertexBuffer
from repro.memsim.stats import MemStats
from repro.obs import get_registry, get_tracer
from repro.obs.timeline import ReplaySampler

__all__ = ["ReplayOutput", "run_replay", "run_replay_segments"]

_LOG = logging.getLogger("repro.memsim.engine")


@dataclass
class ReplayOutput:
    """Everything a replay produces, for the timing/energy models."""

    stats: MemStats
    dram: DramModel
    crossbar: Crossbar
    l1s: List[Cache]
    l2_banks: List[Cache]
    directory: Directory
    srcbufs: Optional[List[SourceVertexBuffer]] = None
    piscs: Optional[List[PiscEngine]] = None
    #: Number of segments the driver consumed (1 for in-core replay).
    num_segments: int = 1
    #: The per-class attribution accumulator the replay folded into
    #: (:class:`repro.obs.attribution.AttributionAccumulator`), when
    #: attribution was requested.
    attribution: Optional[object] = None
    #: Kernel screening telemetry: the cache system's accumulated
    #: :class:`~repro.memsim.cachestate.KernelTelemetry` counters plus
    #: an execution ``mode`` tag ("kernel" or "scalar"). Present for
    #: every replay; all-zero counters under the scalar oracle.
    kernel: Optional[dict] = None


class _InCoreSource:
    """A whole resident trace, presented as one interleaved segment."""

    def __init__(self, trace: Trace) -> None:
        self._trace = trace

    @property
    def num_events(self) -> int:
        return self._trace.num_events

    def segments(self) -> Iterator[Tuple[int, Trace]]:
        yield 0, self._trace.interleaved()


class _SegmentedSource:
    """A segmented archive, streamed one bounded segment at a time."""

    def __init__(self, segtrace) -> None:
        if not segtrace.interleaved:
            # Segments of a non-interleaved archive cannot be reordered
            # independently (the lockstep permutation is per barrier
            # span, and spans can straddle segment boundaries), so
            # streaming it would diverge from in-core replay.
            raise SimulationError(
                "streamed replay needs an interleaved segmented archive"
                " (SpoolingTraceBuilder and the trace store write those);"
                " use Trace.load() + replay() for this one"
            )
        self._segtrace = segtrace

    @property
    def num_events(self) -> int:
        return self._segtrace.num_events

    def segments(self) -> Iterator[Tuple[int, Trace]]:
        seg = self._segtrace
        for k in range(seg.num_segments):
            yield int(seg.segment_bounds[k]), seg.segment(k)


def run_replay(backend, trace: Trace,
               sampler: Optional[ReplaySampler] = None,
               attribution=None) -> ReplayOutput:
    """Replay an in-core ``trace`` through ``backend``.

    ``sampler`` (a :class:`repro.obs.ReplaySampler`) switches the
    cache stage and the batch accounting to windowed execution: every
    N events the cumulative counters are snapshotted into a timeline
    row. The stateful cache system persists across windows and
    per-route event order is unchanged, so all counters — including
    the per-core float latency sums, which accumulate through the
    order-invariant :class:`~repro.memsim.accounting.LatencyLedger` —
    are identical to the unwindowed replay.

    ``attribution`` (a
    :class:`repro.obs.attribution.AttributionAccumulator`) folds every
    event's counters into per-class totals alongside the aggregate
    accounting; the folds are integer reductions per segment, so they
    conserve exactly and are invariant to segmentation and windowing.
    """
    return _run(backend, _InCoreSource(trace), sampler, attribution)


def run_replay_segments(backend, segments,
                        sampler: Optional[ReplaySampler] = None,
                        attribution=None) -> ReplayOutput:
    """Replay a :class:`~repro.ligra.segments.SegmentedTrace` stream.

    Segments are consumed strictly one at a time — resident memory is
    bounded by the segment size, not the trace size — while every
    piece of simulator state carries across boundaries, so the
    counters are bit-identical to ``run_replay`` over the materialized
    trace. Requires an interleaved archive (what the spooling builder
    and the trace store produce). ``attribution`` folds per-class
    counters one segment at a time (see :func:`run_replay`) with
    totals bit-identical to the in-core fold.
    """
    return _run(backend, _SegmentedSource(segments), sampler, attribution)


def _run(backend, source, sampler: Optional[ReplaySampler],
         attribution=None) -> ReplayOutput:
    """The engine template, shared by in-core and streamed replay."""
    from repro.memsim.accounting import LatencyLedger, ReplayContext

    tracer = get_tracer()
    metrics = get_registry()
    total = source.num_events
    with tracer.span("replay", cat="replay", backend=backend.name,
                     events=total) as replay_span:
        config = backend.config
        ncores = config.core.num_cores
        stats = MemStats(num_cores=ncores)
        dram = DramModel(config.dram)
        dram.set_random_ranges(backend.dram_random_ranges)
        crossbar = Crossbar(config.interconnect, ncores)
        system = CacheSystem(
            config, stats, dram, crossbar,
            scalar_cache=(
                True if backend.force_scalar_cache
                else getattr(backend, "scalar_cache", None)
            ),
        )
        ledger = LatencyLedger(ncores)
        ctx = ReplayContext(
            config=config, stats=stats, dram=dram, crossbar=crossbar,
            system=system, ncores=ncores, ledger=ledger,
        )
        backend.prepare(ctx)

        window = 0
        if sampler is not None and total:
            core = config.core
            window = sampler.begin(
                total, ncores, core.compute_cycles_per_access, core.mlp,
                core.imbalance_factor, core.freq_ghz,
            )
        if attribution is not None:
            attribution.begin(
                line_bytes=config.l1.line_bytes,
                pim_bytes_per_op=backend.pim_bytes_per_op,
            )
        counts = np.zeros(ncores, dtype=np.int64)
        cache_events = 0
        num_segments = 0
        # Wall-clock accumulator for the window in progress (a window
        # can straddle a segment boundary).
        win_wall = 0.0

        for offset, seg in source.segments():
            num_segments += 1
            with tracer.span("segment", cat="replay", index=num_segments - 1,
                             start_event=offset, events=seg.num_events):
                with tracer.span("prepass", cat="replay"):
                    prepass = precompute(
                        seg, config, mapping=backend.prepass_mapping()
                    )
                with tracer.span("route", cat="replay"):
                    routes = backend.route(ctx, seg, prepass)
                cache_idx = np.flatnonzero(routes == ROUTE_CACHE)
                cache_events += len(cache_idx)
                counts += np.bincount(
                    np.asarray(seg.core, dtype=np.int64), minlength=ncores
                )
                classes = None
                if attribution is not None:
                    # Non-cache families fold once per segment on the
                    # full (unmasked) routes; windowed accounting masks
                    # per window, but the union over a segment's
                    # windows is exactly these routes, so each event
                    # folds exactly once either way. The locality mask
                    # is read *after* route(), which is where dynamic
                    # backends publish their per-segment override.
                    classes = attribution.classify(seg)
                    local = (
                        ctx.sp_local if ctx.sp_local is not None
                        else prepass.local
                    )
                    attribution.fold_routes(
                        classes, routes, prepass.atomic, local
                    )
                if not window:
                    with tracer.span("cache_path", cat="replay",
                                     events=len(cache_idx)):
                        if len(cache_idx):
                            record = (
                                CacheRecord(len(cache_idx))
                                if attribution is not None else None
                            )
                            system.replay_cache_path(
                                seg.core[cache_idx],
                                seg.addr[cache_idx],
                                prepass.lines[cache_idx],
                                prepass.banks[cache_idx],
                                prepass.bank_keys[cache_idx],
                                prepass.write[cache_idx],
                                prepass.atomic[cache_idx],
                                ledger.mem["cache"],
                                ledger.serial["cache"],
                                record=record,
                            )
                            if record is not None:
                                attribution.fold_cache(
                                    classes[cache_idx],
                                    prepass.atomic[cache_idx],
                                    record,
                                )
                    with tracer.span("account", cat="replay"):
                        backend.account(ctx, seg, prepass, routes)
                else:
                    win_wall = _run_windowed_segment(
                        backend, ctx, seg, prepass, routes, cache_idx,
                        sampler, tracer, offset, total, window, win_wall,
                        attribution=attribution, classes=classes,
                    )

        metrics.counter("replay.events").inc(total)
        metrics.counter("replay.cache_events").inc(cache_events)
        metrics.counter("replay.offchip_routed_events").inc(
            total - cache_events
        )
        metrics.counter("replay.segments").inc(num_segments)
        kt = system.kernel_telemetry
        kernel_block = kt.as_dict()
        kernel_block["mode"] = (
            "kernel" if system.fast_path_ok else "scalar"
        )
        if tracer.enabled:
            tracer.counter(
                "kernel.screening",
                {
                    "screened": kt.screened,
                    "grouped": kt.grouped_events,
                    "serialized": kt.serialized_events,
                },
            )
        ledger.flush(stats)
        stats.core_accesses = [int(x) for x in counts]
        backend.finalize(ctx)
        if window:
            replay_span.annotate(windows=sampler.timeline().num_windows)
        if num_segments > 1:
            replay_span.annotate(segments=num_segments)
        _LOG.debug(
            "replayed %d events through %s (%d segment(s), %d cache-routed,"
            " l2 hit rate %.4f)",
            total, backend.name, max(num_segments, 1), cache_events,
            stats.l2_hit_rate,
        )
        return ReplayOutput(
            stats=stats,
            dram=dram,
            crossbar=crossbar,
            l1s=system.l1s,
            l2_banks=system.l2_banks,
            directory=system.directory,
            srcbufs=ctx.srcbufs,
            piscs=ctx.piscs,
            num_segments=max(num_segments, 1),
            attribution=attribution,
            kernel=kernel_block,
        )


def _run_windowed_segment(
    backend,
    ctx,
    seg: Trace,
    prepass,
    routes: np.ndarray,
    cache_idx: np.ndarray,
    sampler: ReplaySampler,
    tracer,
    offset: int,
    total: int,
    window: int,
    win_wall: float,
    attribution=None,
    classes: Optional[np.ndarray] = None,
) -> float:
    """Windowed cache stage + accounting over one segment.

    The window grid is *global* (multiples of ``window`` over the
    whole event stream), so a segment is cut at every window boundary
    it crosses and a window that straddles segments accumulates
    across calls: ``win_wall`` carries the in-progress window's
    wall-clock, and the sampler only snapshots when the global
    position reaches a boundary (or the end of the stream). Counters
    therefore land in the window they occur in, however the trace is
    segmented.
    """
    stats = ctx.stats
    system = ctx.system
    windowed = WindowedRoutes(routes)
    end = offset + seg.num_events
    lo = offset
    while lo < end:
        hi = min(end, ((lo // window) + 1) * window)
        wall_start = time.perf_counter()
        with tracer.span("window", cat="replay", start_event=lo,
                         end_event=hi):
            ci_lo, ci_hi = np.searchsorted(
                cache_idx, (lo - offset, hi - offset)
            )
            sub = cache_idx[ci_lo:ci_hi]
            if len(sub):
                record = (
                    CacheRecord(len(sub))
                    if attribution is not None else None
                )
                system.replay_cache_path(
                    seg.core[sub],
                    seg.addr[sub],
                    prepass.lines[sub],
                    prepass.banks[sub],
                    prepass.bank_keys[sub],
                    prepass.write[sub],
                    prepass.atomic[sub],
                    ctx.ledger.mem["cache"],
                    ctx.ledger.serial["cache"],
                    record=record,
                )
                if record is not None:
                    attribution.fold_cache(
                        classes[sub], prepass.atomic[sub], record,
                    )
            backend.account(
                ctx, seg, prepass, windowed.fill(lo - offset, hi - offset)
            )
            windowed.clear(lo - offset, hi - offset)
        win_wall += time.perf_counter() - wall_start
        if hi % window == 0 or hi == total:
            ctx.ledger.flush(stats)
            sampler.record(
                ((hi - 1) // window) * window, hi, stats, win_wall
            )
            win_wall = 0.0
        lo = hi
    return win_wall
