"""DRAM channel model: latency, bandwidth, and page policies.

The paper's detailed setup is 4x DDR3-1600 at 12 GB/s per channel
(Table III); its high-level model charges 100 cycles per access
(the ``"closed"`` page policy, the default here). Section IX proposes
a hybrid open/closed-page policy — open-page for the streaming
edgeList, closed-page for the spatially-random vtxProp — which the
``"open"`` and ``"hybrid"`` policies implement via per-channel
row-buffer tracking.

Every access contributes its latency to the issuing core, and total
byte counts bound the run's minimum duration through the channels'
aggregate bandwidth (the Fig 16 utilization metric).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import DramConfig

__all__ = ["DramModel"]


class DramModel:
    """Aggregate DRAM accounting for one simulated run."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.read_accesses = 0
        self.write_accesses = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.row_hits = 0
        self.row_misses = 0
        self._open_rows: List[int] = [-1] * config.channels
        #: Address ranges treated as spatially random under "hybrid".
        self._random_ranges: List[Tuple[int, int]] = []

    def set_random_ranges(self, ranges) -> None:
        """Declare the (start, end) address ranges the hybrid policy
        should serve close-page (the vtxProp regions)."""
        self._random_ranges = [(int(a), int(b)) for a, b in ranges]

    def _access_latency(self, addr: Optional[int]) -> int:
        policy = self.config.page_policy
        if policy == "closed" or addr is None:
            return self.config.latency_cycles
        if policy == "hybrid":
            for start, end in self._random_ranges:
                if start <= addr < end:
                    return self.config.latency_cycles
        channel = (addr // 64) % self.config.channels
        row = addr // self.config.row_bytes
        if self._open_rows[channel] == row:
            self.row_hits += 1
            return self.config.row_hit_cycles
        self.row_misses += 1
        self._open_rows[channel] = row
        return self.config.row_miss_cycles

    def read(self, nbytes: int, addr: Optional[int] = None) -> int:
        """Record a read of ``nbytes`` at ``addr``; returns latency."""
        self.read_accesses += 1
        self.read_bytes += nbytes
        return self._access_latency(addr)

    def write(self, nbytes: int, addr: Optional[int] = None) -> int:
        """Record a write-back of ``nbytes``; returns the access latency.

        Write-backs are posted (off the critical path), so the latency
        returned is charged to occupancy, not to the issuing core.
        """
        self.write_accesses += 1
        self.write_bytes += nbytes
        return self._access_latency(addr)

    @property
    def total_bytes(self) -> int:
        """All bytes moved to or from DRAM."""
        return self.read_bytes + self.write_bytes

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate (only meaningful for open/hybrid)."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def min_cycles_for_bandwidth(self) -> float:
        """Lower bound on run duration imposed by channel bandwidth."""
        peak = self.config.total_bytes_per_cycle
        return self.total_bytes / peak if peak > 0 else 0.0

    def utilization_gbps(self, total_cycles: float, freq_ghz: float) -> float:
        """Achieved DRAM bandwidth in GB/s over a run of ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        seconds = total_cycles / (freq_ghz * 1e9)
        return self.total_bytes / seconds / 1e9
