"""Scratchpad and its controller (paper Section V-A, Figure 7).

The controller is the piece of OMEGA that decides, for every memory
request a core issues, whether it targets the scratchpads at all
(**monitor unit**, driven by the per-vtxProp address-monitoring
registers: ``start_addr`` / ``type_size`` / ``stride``), which pad owns
the vertex (**partition unit**, via :class:`ScratchpadMapping`), and
which line inside that pad holds it (**index unit**).

The scratchpad itself is direct-mapped storage: one line per hot
vertex, holding *all* of the vertex's vtxProp entries plus the dense
active-list bit, so a PISC atomic touches exactly one line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.ligra.props import VertexProp
from repro.memsim.mapping import ScratchpadMapping

__all__ = ["MonitorRegister", "ScratchpadController", "hot_capacity_for"]


@dataclass(frozen=True)
class MonitorRegister:
    """One address-monitoring register set (Fig 7, left side)."""

    name: str
    start_addr: int
    type_size: int
    stride: int
    num_entries: int

    @property
    def end_addr(self) -> int:
        """One past the last monitored byte."""
        return self.start_addr + self.num_entries * self.stride

    def matches(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this vtxProp's range."""
        return self.start_addr <= addr < self.end_addr

    def vertex_of(self, addr: int) -> int:
        """Vertex id addressed (the index unit's translation)."""
        return (addr - self.start_addr) // self.stride


def hot_capacity_for(
    sp_total_bytes: int,
    vtxprop_bytes_per_vertex: int,
    num_vertices: int,
    active_bit_bytes: int = 1,
) -> int:
    """How many vertices the scratchpads can hold for this algorithm.

    Each scratchpad line stores every vtxProp entry of one vertex plus
    its active-list bit (modeled as one byte), so capacity is total
    scratchpad bytes over the per-vertex line size, clamped to the
    graph size.
    """
    line = vtxprop_bytes_per_vertex + active_bit_bytes
    if line <= 0:
        raise ConfigError(f"invalid per-vertex line size {line}")
    return max(0, min(num_vertices, sp_total_bytes // line))


class ScratchpadController:
    """Routes requests between the cache hierarchy and the scratchpads.

    Configured once per application launch (the paper's framework does
    this via generated configuration code — Section V-F) with the
    monitor registers for every vtxProp and the partition mapping.
    """

    def __init__(
        self,
        props: Sequence[VertexProp],
        mapping: ScratchpadMapping,
    ) -> None:
        self.registers: List[MonitorRegister] = [
            MonitorRegister(
                name=p.name,
                start_addr=p.start_addr,
                type_size=p.type_size,
                stride=p.stride,
                num_entries=p.num_vertices,
            )
            for p in props
        ]
        self.mapping = mapping
        # Sorted, disjoint (start, end, stride) ranges for fast lookup.
        self._ranges: List[Tuple[int, int, int]] = sorted(
            (r.start_addr, r.end_addr, r.stride) for r in self.registers
        )

    def monitor(self, addr: int) -> Optional[int]:
        """Monitor unit: vertex id if ``addr`` is a monitored vtxProp
        address, else ``None`` (request belongs to the regular caches)."""
        for start, end, stride in self._ranges:
            if start <= addr < end:
                return (addr - start) // stride
            if addr < start:
                return None
        return None

    def route(self, vertex: int, requester_core: int) -> Optional[Tuple[int, int, bool]]:
        """Partition + index units for a monitored request.

        Returns ``(home_pad, line, is_local)`` for scratchpad-resident
        vertices, or ``None`` when the vertex is beyond the hot range
        (its vtxProp stays in the caches).
        """
        if not self.mapping.is_hot(vertex):
            return None
        home = self.mapping.home(vertex)
        return home, self.mapping.line(vertex), home == requester_core

    def describe_registers(self) -> List[dict]:
        """Monitor-register contents as dicts (for reports and tests)."""
        return [
            {
                "name": r.name,
                "start_addr": r.start_addr,
                "type_size": r.type_size,
                "stride": r.stride,
            }
            for r in self.registers
        ]
