"""Scratchpad vertex-to-pad mapping (paper Sections V-A and V-D).

OMEGA partitions the vtxProp of the hot (lowest-id, post-reordering)
vertices across all per-core scratchpads. The mapping is a chunked
interleave: vertex ``v`` lives on pad ``(v // chunk) % num_cores`` at
line ``(v // (chunk * num_cores)) * chunk + v % chunk``.

Section V-D's observation is that the chunk size should be
*reconfigured to match the OpenMP schedule's chunk size*: when they
match, the sequential vtxProp scans in vertexMap touch only the local
pad; when they differ (e.g. SP chunk 1 vs OpenMP chunk 2), half or
more of those accesses become remote. :class:`ScratchpadMapping`
exposes the chunk so the experiment can set up both cases.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["ScratchpadMapping"]


class ScratchpadMapping:
    """Maps hot vertex ids to (pad, line) pairs.

    Parameters
    ----------
    num_cores:
        Number of scratchpads (one per core).
    hot_capacity:
        Number of vertices mapped to scratchpads in total; ids
        ``[0, hot_capacity)`` are scratchpad-resident (the graph must
        be popularity-reordered first).
    chunk_size:
        Interleave chunk. ``None`` means block partitioning: each pad
        owns one contiguous range of ``ceil(hot_capacity/num_cores)``
        vertices, which matches an OpenMP static schedule without an
        explicit chunk.
    """

    def __init__(
        self,
        num_cores: int,
        hot_capacity: int,
        chunk_size: "int | None" = None,
    ) -> None:
        if num_cores <= 0:
            raise ConfigError(f"num_cores must be > 0, got {num_cores}")
        if hot_capacity < 0:
            raise ConfigError(f"hot_capacity must be >= 0, got {hot_capacity}")
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigError(f"chunk_size must be > 0, got {chunk_size}")
        self.num_cores = num_cores
        self.hot_capacity = hot_capacity
        if chunk_size is None:
            # Block partition == one chunk per core spanning the range.
            self.chunk_size = max(1, -(-hot_capacity // num_cores))
        else:
            self.chunk_size = chunk_size

    def is_hot(self, vertex: int) -> bool:
        """Whether a vertex id is scratchpad-resident."""
        return 0 <= vertex < self.hot_capacity

    def is_hot_many(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_hot`."""
        v = np.asarray(vertices)
        return (v >= 0) & (v < self.hot_capacity)

    def home(self, vertex: int) -> int:
        """Pad (core) owning ``vertex``'s scratchpad line."""
        return (vertex // self.chunk_size) % self.num_cores

    def home_many(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`home`."""
        return (np.asarray(vertices, dtype=np.int64) // self.chunk_size) % self.num_cores

    def line(self, vertex: int) -> int:
        """Line index of ``vertex`` within its pad (the index unit)."""
        stripe = vertex // (self.chunk_size * self.num_cores)
        return stripe * self.chunk_size + vertex % self.chunk_size

    def vertices_per_pad(self) -> int:
        """Upper bound on vertices stored on any one pad."""
        return -(-self.hot_capacity // self.num_cores)
