"""OMEGA reproduction: heterogeneous cache/scratchpad memory subsystem
for natural graph analytics (Addisie, Kassa, Matthews, Bertacco —
IISWC 2018).

Quickstart::

    from repro import load_dataset, compare_systems

    graph, spec = load_dataset("lj")
    cmp = compare_systems(graph, "pagerank", dataset="lj")
    print(f"OMEGA speedup: {cmp.speedup:.2f}x")

Package layout:

- :mod:`repro.graph` — CSR graphs, generators, reordering, datasets.
- :mod:`repro.ligra` — the vertex-centric framework substrate.
- :mod:`repro.algorithms` — the eight Table II workloads.
- :mod:`repro.memsim` — the trace-driven memory-hierarchy simulator.
- :mod:`repro.core` — full-system drivers, offload compiler, models.
"""

from repro.config import SimConfig
from repro.core import (
    Comparison,
    RunContext,
    RunRequest,
    SimReport,
    compare_systems,
    run_system,
)
from repro.errors import ReproError
from repro.graph import CSRGraph, dataset_names, load_dataset

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "Comparison",
    "RunContext",
    "RunRequest",
    "SimReport",
    "compare_systems",
    "run_system",
    "ReproError",
    "CSRGraph",
    "dataset_names",
    "load_dataset",
    "__version__",
]
