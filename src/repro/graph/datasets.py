"""Synthetic stand-ins for the paper's Table I datasets.

The paper evaluates twelve real-world datasets (SNAP, WebGraph and
DIMACS collections). Those corpora are not available offline, so this
registry regenerates each one synthetically at a reduced scale,
preserving the properties OMEGA's evaluation depends on:

- directed vs. undirected (Table I "type" row),
- power-law vs. non-power-law structure, and
- the in-/out-degree connectivity of the top 20% most-connected
  vertices, calibrated per dataset against Table I via the R-MAT skew
  parameter (``a`` with ``b = c = d = (1 - a)/3``: a=0.45 → ~57%
  connectivity, a=0.55 → ~75%, a=0.66 → ~95%).

Vertex counts are scaled down ~500x so that pure-Python trace-driven
simulation completes in seconds; since every reported metric is a
ratio (speedup, hit rate, traffic reduction), shapes are preserved.
The *relative* sizes across datasets are kept, so "uk"/"twitter"
remain the stress cases whose hot sets overflow the scaled
scratchpads, exactly as in the paper's Figure 20 study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    rmat_graph,
    road_graph,
)

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset stand-in.

    ``paper_vertices_m``/``paper_edges_m`` record the real dataset's
    size in millions (Table I) for documentation and for the analytic
    large-graph model, which works from the paper-scale sizes.
    ``rmat_a`` is the calibrated skew knob for R-MAT stand-ins.
    """

    name: str
    kind: str  # 'rmat' | 'ba' | 'road'
    base_vertices: int
    directed: bool
    power_law: bool
    paper_vertices_m: float
    paper_edges_m: float
    paper_in_connectivity: float
    edge_factor: int = 12
    rmat_a: float = 0.55
    seed: int = 2018
    description: str = ""


def _rmat(name: str, base_vertices: int, paper_v: float, paper_e: float,
          in_con: float, edge_factor: int = 12, a: float = 0.55,
          directed: bool = True, description: str = "") -> DatasetSpec:
    return DatasetSpec(
        name=name, kind="rmat", base_vertices=base_vertices, directed=directed,
        power_law=True, paper_vertices_m=paper_v, paper_edges_m=paper_e,
        paper_in_connectivity=in_con, edge_factor=edge_factor, rmat_a=a,
        description=description,
    )


def _ba(name: str, base_vertices: int, paper_v: float, paper_e: float,
        in_con: float, edge_factor: int = 8, directed: bool = True,
        description: str = "") -> DatasetSpec:
    return DatasetSpec(
        name=name, kind="ba", base_vertices=base_vertices, directed=directed,
        power_law=True, paper_vertices_m=paper_v, paper_edges_m=paper_e,
        paper_in_connectivity=in_con, edge_factor=edge_factor,
        description=description,
    )


def _road(name: str, base_vertices: int, paper_v: float, paper_e: float,
          description: str = "") -> DatasetSpec:
    return DatasetSpec(
        name=name, kind="road", base_vertices=base_vertices, directed=False,
        power_law=False, paper_vertices_m=paper_v, paper_edges_m=paper_e,
        paper_in_connectivity=29.0, description=description,
    )


#: Registry keyed by the paper's dataset abbreviations (Table I order).
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _rmat("sd", 1024, 0.07, 0.9, 62.8, edge_factor=12, a=0.48,
              description="soc-Slashdot0811 stand-in (social, directed)"),
        _ba("ap", 1000, 0.13, 0.39, 100.0, edge_factor=3, directed=False,
            description="ca-AstroPh stand-in (collaboration, undirected)"),
        _rmat("rmat", 4096, 2, 25, 93.0, edge_factor=12, a=0.66,
              description="R-MAT synthetic (the paper's own synthetic set)"),
        _rmat("orkut", 8192, 3, 234, 58.73, edge_factor=16, a=0.45,
              description="orkut-2007 stand-in (dense social, directed)"),
        _rmat("wiki", 8192, 4.2, 101, 84.69, edge_factor=10, a=0.6,
              description="enwiki-2013 stand-in (hyperlink graph)"),
        _rmat("lj", 8192, 5.3, 79, 77.35, edge_factor=10, a=0.55,
              description="ljournal-2008 stand-in (social, directed)"),
        _rmat("ic", 16384, 7.4, 194, 93.26, edge_factor=12, a=0.66,
              description="indochina-2004 stand-in (web crawl, very skewed)"),
        _rmat("uk", 32768, 18.5, 298, 84.45, edge_factor=8, a=0.6,
              description="uk-2002 stand-in (large web crawl)"),
        _rmat("twitter", 65536, 41.6, 1468, 85.9, edge_factor=8, a=0.6,
              description="twitter-2010 stand-in (largest, overflows scratchpads)"),
        _road("rPA", 1024, 1, 3,
              description="roadNet-PA stand-in (planar lattice)"),
        _road("rCA", 1764, 1.9, 5.5,
              description="roadNet-CA stand-in (planar lattice)"),
        _road("USA", 5625, 6.2, 15,
              description="Western-USA stand-in (large planar lattice)"),
    ]
}


def dataset_names(power_law: Optional[bool] = None) -> Tuple[str, ...]:
    """Dataset abbreviations in Table I order, optionally filtered."""
    return tuple(
        name
        for name, spec in DATASETS.items()
        if power_law is None or spec.power_law == power_law
    )


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    weighted: bool = False,
) -> Tuple[CSRGraph, DatasetSpec]:
    """Generate the stand-in graph for dataset ``name``.

    Parameters
    ----------
    name:
        A Table I abbreviation (see :func:`dataset_names`).
    scale:
        Multiplier on the stand-in's vertex count (e.g. ``0.25`` for
        fast tests, ``1.0`` for the benchmark harness).
    seed:
        Overrides the spec's default seed.
    weighted:
        Attach edge weights (needed by SSSP).
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    use_seed = spec.seed if seed is None else seed
    n = max(16, int(spec.base_vertices * scale))
    if spec.kind == "rmat":
        # R-MAT requires a power-of-two vertex count; round to nearest.
        log2n = max(4, int(round(math.log2(n))))
        rest = (1.0 - spec.rmat_a) / 3.0
        graph = rmat_graph(
            scale=log2n,
            edge_factor=spec.edge_factor,
            a=spec.rmat_a,
            b=rest,
            c=rest,
            seed=use_seed,
            weighted=weighted,
            directed=spec.directed,
        )
    elif spec.kind == "ba":
        graph = barabasi_albert_graph(
            num_vertices=n,
            edges_per_vertex=spec.edge_factor,
            seed=use_seed,
            directed=spec.directed,
            weighted=weighted,
        )
    elif spec.kind == "road":
        side = max(4, int(round(n ** 0.5)))
        graph = road_graph(
            width=side, height=side, seed=use_seed, weighted=weighted
        )
    else:  # pragma: no cover - registry is static
        raise DatasetError(f"unknown generator kind {spec.kind!r}")
    return graph, spec
