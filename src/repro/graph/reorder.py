"""Offline vertex-reordering algorithms (paper Section VI).

OMEGA identifies the hot vertices statically by reordering the graph so
that vertex ids are monotonically decreasing in popularity; the
scratchpad then simply captures the id range ``[0, capacity)``. The
paper evaluates three in-degree-based variants plus SlashBurn:

1. **Full sort** — sort all vertices by degree, O(v log v).
2. **Top-k sort** — sort only the top 20%, leave the tail in input
   order (same asymptotic cost, smaller constant).
3. **nth-element** — linear-average-time selection that partitions the
   id space so every vertex before the 20% mark is more connected than
   every vertex after it, with no ordering inside the halves. This is
   OMEGA's default.

SlashBurn (Lim, Kang, Faloutsos 2014) alternates removing the top-k
hub vertices and relabeling the resulting small disconnected
components; the paper found it *suboptimal* for OMEGA because it
optimizes community structure rather than monotone popularity, and we
reproduce that finding in the motivation benchmark.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "reorder_by_degree",
    "reorder_top_fraction",
    "reorder_nth_element",
    "nth_element_order",
    "slashburn_order",
    "reorder_slashburn",
    "apply_order",
]


def _degrees(graph: CSRGraph, key: str) -> np.ndarray:
    if key == "in":
        return graph.in_degrees()
    if key == "out":
        return graph.out_degrees()
    if key == "total":
        return graph.in_degrees() + graph.out_degrees()
    raise GraphError(f"unknown degree key {key!r}; expected 'in', 'out' or 'total'")


def apply_order(graph: CSRGraph, order: np.ndarray) -> Tuple[CSRGraph, np.ndarray]:
    """Relabel ``graph`` so that ``order[i]`` becomes vertex ``i``.

    Returns ``(relabeled_graph, new_ids)`` where ``new_ids[v]`` is the
    new id of original vertex ``v``. ``order`` must be a permutation
    listing original ids from most to least popular.
    """
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (graph.num_vertices,):
        raise GraphError(
            f"order must have length {graph.num_vertices}, got {order.shape}"
        )
    new_ids = np.empty_like(order)
    new_ids[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return graph.relabel(new_ids), new_ids


def reorder_by_degree(
    graph: CSRGraph, key: str = "in"
) -> Tuple[CSRGraph, np.ndarray]:
    """Variant 1: full descending sort by degree (stable).

    Returns ``(relabeled_graph, new_ids)``; new id 0 is the most
    connected vertex.
    """
    deg = _degrees(graph, key)
    order = np.argsort(-deg, kind="stable")
    return apply_order(graph, order)


def reorder_top_fraction(
    graph: CSRGraph, key: str = "in", fraction: float = 0.20
) -> Tuple[CSRGraph, np.ndarray]:
    """Variant 2: sort only the top ``fraction`` of vertices by degree.

    The hot prefix is fully sorted; the tail keeps its original
    relative order (stable), which is cheaper in practice and
    sufficient for OMEGA since only the prefix lands in scratchpads.
    """
    if not 0.0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    n = graph.num_vertices
    k = max(1, int(np.ceil(fraction * n))) if n else 0
    deg = _degrees(graph, key)
    order = np.argsort(-deg, kind="stable")
    head = order[:k]
    tail = np.sort(order[k:])  # restore input order for the tail
    return apply_order(graph, np.concatenate([head, tail]))


def nth_element_order(
    degrees: np.ndarray, fraction: float = 0.20
) -> np.ndarray:
    """The nth-element partition order over a degree vector.

    Returns the permutation (original ids, hot side first) that
    :func:`reorder_nth_element` applies: every vertex before the
    ``fraction`` mark has degree >= every vertex after it, both sides
    kept in input order, ties at the threshold filled in input order.
    Exposed standalone so consumers that only need the *order* — e.g.
    attribution's hub/torso/tail classes for an already-relabeled
    trace — can recompute it without touching the graph.
    """
    if not 0.0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    deg = np.asarray(degrees, dtype=np.int64)
    n = len(deg)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    k = max(1, int(np.ceil(fraction * n)))
    # Degree threshold of the k-th most-connected vertex.
    kth = np.partition(deg, n - k)[n - k]
    above = np.flatnonzero(deg > kth)
    ties = np.flatnonzero(deg == kth)
    # Fill the hot side up to k with tie vertices in input order.
    need = k - len(above)
    hot = np.sort(np.concatenate([above, ties[:need]]))
    cold_mask = np.ones(n, dtype=bool)
    cold_mask[hot] = False
    return np.concatenate([hot, np.flatnonzero(cold_mask)])


def reorder_nth_element(
    graph: CSRGraph, key: str = "in", fraction: float = 0.20
) -> Tuple[CSRGraph, np.ndarray]:
    """Variant 3 (OMEGA's default): linear-time nth-element partition.

    All vertices placed before the ``fraction`` mark have degree >= all
    vertices placed after it; no ordering is imposed *within* the two
    sides beyond keeping each side in input order. The stable partition
    costs the same linear average time as ``std::nth_element`` but
    preserves whatever spatial locality the input ordering had — which
    matters for the non-power-law road graphs, whose grid-adjacent ids
    are the source of their cache friendliness.
    """
    n = graph.num_vertices
    if n == 0:
        if not 0.0 < fraction <= 1.0:
            raise GraphError(f"fraction must be in (0, 1], got {fraction}")
        return graph, np.zeros(0, dtype=np.int64)
    order = nth_element_order(_degrees(graph, key), fraction)
    return apply_order(graph, order)


def slashburn_order(graph: CSRGraph, k: int = 1) -> np.ndarray:
    """Compute a SlashBurn ordering of the vertices.

    Iteratively: remove the ``k`` highest-(total-)degree vertices
    ("hubs", placed at the front), split the remainder into connected
    components, move vertices of all but the giant component to the
    back (smallest components last), and recurse on the giant
    component. Returns the ordering as an array of original ids, most
    "important" first.
    """
    if k <= 0:
        raise GraphError(f"k must be > 0, got {k}")
    n = graph.num_vertices
    adj_offsets = graph.out_offsets
    adj_targets = graph.out_targets
    in_offsets = graph.in_offsets
    in_sources = graph.in_sources

    alive = np.ones(n, dtype=bool)
    degree = (graph.in_degrees() + graph.out_degrees()).astype(np.int64).copy()
    front: list = []
    back: list = []

    def neighbors(v: int) -> np.ndarray:
        out = adj_targets[adj_offsets[v] : adj_offsets[v + 1]]
        inc = in_sources[in_offsets[v] : in_offsets[v + 1]]
        return np.concatenate([out, inc])

    while alive.sum() > 0:
        live_ids = np.flatnonzero(alive)
        if len(live_ids) <= k:
            front.extend(sorted(live_ids.tolist(), key=lambda v: -degree[v]))
            break
        # Slash: remove k hubs.
        live_deg = degree[live_ids]
        hub_idx = np.argsort(-live_deg, kind="stable")[:k]
        hubs = live_ids[hub_idx]
        front.extend(int(h) for h in hubs)
        alive[hubs] = False
        # Burn: find connected components of the remainder.
        comp = -np.ones(n, dtype=np.int64)
        comp_sizes: list = []
        for seed in np.flatnonzero(alive):
            if comp[seed] >= 0:
                continue
            cid = len(comp_sizes)
            stack = [int(seed)]
            comp[seed] = cid
            size = 0
            while stack:
                u = stack.pop()
                size += 1
                for w in neighbors(u):
                    w = int(w)
                    if alive[w] and comp[w] < 0:
                        comp[w] = cid
                        stack.append(w)
            comp_sizes.append(size)
        if not comp_sizes:
            break
        giant = int(np.argmax(comp_sizes))
        # Spokes: every non-giant component goes to the back (small last).
        spoke_ids = [
            cid for cid in range(len(comp_sizes)) if cid != giant
        ]
        spoke_ids.sort(key=lambda cid: comp_sizes[cid], reverse=True)
        for cid in spoke_ids:
            members = np.flatnonzero((comp == cid) & alive)
            back.extend(int(v) for v in sorted(members, key=lambda v: -degree[v]))
            alive[members] = False
        # Recurse on the giant component (loop continues with it alive).
        if alive.sum() == 0:
            break

    order = np.array(front + back[::-1], dtype=np.int64)
    if len(order) != n:
        raise GraphError("slashburn ordering lost vertices (internal error)")
    return order


def reorder_slashburn(graph: CSRGraph, k: int = 1) -> Tuple[CSRGraph, np.ndarray]:
    """Relabel ``graph`` with the SlashBurn ordering (see :func:`slashburn_order`)."""
    return apply_order(graph, slashburn_order(graph, k=k))
