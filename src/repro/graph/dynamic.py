"""Dynamic graphs (paper Section IX, "Dynamic graphs").

OMEGA identifies its hot set with an *offline* reordering pass, so the
open question the paper defers to future work is: as edges arrive and
depart, how quickly does the hot set drift, and how much benefit
survives running on a stale mapping until the framework re-identifies
the popular vertices?

This module provides the substrate for that study: a mutable edge-set
wrapper over :class:`~repro.graph.csr.CSRGraph` with batched updates,
two mutation models (preferential growth, which is how natural graphs
actually evolve, and uniform churn), and the hot-set overlap metric
that quantifies drift.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.degree import TOP_VERTEX_FRACTION

__all__ = [
    "DynamicGraph",
    "hot_set",
    "hot_set_overlap",
    "preferential_edges",
    "uniform_edges",
]


class DynamicGraph:
    """A graph under edit: batched edge insertions and deletions.

    Vertex ids are stable across snapshots (new vertices may be
    appended). Deletions remove one matching arc per request, matching
    multigraph semantics.
    """

    def __init__(self, graph: CSRGraph) -> None:
        src, dst = graph.edge_arrays()
        if not graph.directed:
            # Keep one arc per undirected edge; snapshots re-symmetrize.
            keep = src <= dst
            w = graph.out_weights[keep] if graph.out_weights is not None else None
            src, dst = src[keep], dst[keep]
        else:
            w = graph.out_weights.copy() if graph.out_weights is not None else None
        self._directed = graph.directed
        self._num_vertices = graph.num_vertices
        self._src = list(src.tolist())
        self._dst = list(dst.tolist())
        self._weights = list(w.tolist()) if w is not None else None
        self.edges_added = 0
        self.edges_removed = 0

    @property
    def num_vertices(self) -> int:
        """Current vertex-id space size."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Current number of (logical) edges."""
        return len(self._src)

    def add_vertices(self, count: int) -> int:
        """Append ``count`` fresh vertices; returns the first new id."""
        if count < 0:
            raise GraphError(f"count must be >= 0, got {count}")
        first = self._num_vertices
        self._num_vertices += count
        return first

    def add_edges(
        self,
        src,
        dst,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Insert a batch of edges (endpoints must already exist)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst must have equal length")
        if len(src) and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self._num_vertices
        ):
            raise GraphError("edge endpoints out of range")
        if (weights is None) != (self._weights is None):
            raise GraphError(
                "weighted-ness of the batch must match the graph"
            )
        self._src.extend(src.tolist())
        self._dst.extend(dst.tolist())
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != src.shape:
                raise GraphError("weights must match the batch length")
            self._weights.extend(w.tolist())
        self.edges_added += len(src)

    def remove_edges(self, src, dst) -> int:
        """Remove one matching arc per (src, dst) pair; returns count."""
        wanted = {}
        for s, d in zip(np.asarray(src).tolist(), np.asarray(dst).tolist()):
            wanted[(s, d)] = wanted.get((s, d), 0) + 1
        keep_src, keep_dst, keep_w = [], [], []
        removed = 0
        for i, (s, d) in enumerate(zip(self._src, self._dst)):
            if wanted.get((s, d), 0) > 0:
                wanted[(s, d)] -= 1
                removed += 1
                continue
            keep_src.append(s)
            keep_dst.append(d)
            if self._weights is not None:
                keep_w.append(self._weights[i])
        self._src, self._dst = keep_src, keep_dst
        if self._weights is not None:
            self._weights = keep_w
        self.edges_removed += removed
        return removed

    def snapshot(self) -> CSRGraph:
        """Materialize the current edge set as an immutable CSR graph."""
        return CSRGraph(
            self._num_vertices,
            self._src,
            self._dst,
            weights=self._weights,
            directed=self._directed,
        )


def hot_set(graph: CSRGraph, fraction: float = TOP_VERTEX_FRACTION) -> np.ndarray:
    """Ids of the top-``fraction`` vertices by in-degree."""
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    k = max(1, int(np.ceil(fraction * n)))
    deg = graph.in_degrees()
    return np.argpartition(-deg, min(k, n - 1))[:k].astype(np.int64)


def hot_set_overlap(
    old: CSRGraph, new: CSRGraph, fraction: float = TOP_VERTEX_FRACTION
) -> float:
    """Fraction of the *new* hot set already present in the old one.

    1.0 means a stale mapping still covers every currently-hot vertex;
    the metric degrades as the graph's popularity ranking drifts.
    Vertices added after the old snapshot count as misses.
    """
    old_hot = set(hot_set(old, fraction).tolist())
    new_hot = hot_set(new, fraction)
    if len(new_hot) == 0:
        return 1.0
    return sum(1 for v in new_hot.tolist() if v in old_hot) / len(new_hot)


def preferential_edges(
    graph: CSRGraph,
    num_edges: int,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate growth edges by preferential attachment.

    Endpoints are drawn proportionally to (1 + degree), the mechanism
    the paper cites for why natural graphs are power-law in the first
    place — under this model the hot set is highly stable.
    """
    if num_edges < 0:
        raise GraphError(f"num_edges must be >= 0, got {num_edges}")
    rng = np.random.default_rng(seed)
    weights = (graph.in_degrees() + graph.out_degrees() + 1).astype(np.float64)
    p = weights / weights.sum()
    dst = rng.choice(graph.num_vertices, size=num_edges, p=p)
    src = rng.integers(0, graph.num_vertices, size=num_edges)
    return src.astype(np.int64), dst.astype(np.int64)


def uniform_edges(
    graph: CSRGraph,
    num_edges: int,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate growth edges with uniform endpoints (adversarial churn:
    new edges ignore popularity, eroding the hot set fastest)."""
    if num_edges < 0:
        raise GraphError(f"num_edges must be >= 0, got {num_edges}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, graph.num_vertices, size=num_edges)
    dst = rng.integers(0, graph.num_vertices, size=num_edges)
    return src.astype(np.int64), dst.astype(np.int64)
