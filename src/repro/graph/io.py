"""Edge-list text I/O.

Supports the two formats most of the paper's sources use:

- SNAP-style whitespace-separated ``src dst`` (optionally ``src dst w``)
  with ``#`` comment lines, and
- DIMACS ``.gr`` shortest-path format (``p sp n m`` header, ``a u v w``
  arc lines, 1-based ids) used by the Western-USA road dataset.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["load_edge_list", "save_edge_list", "load_dimacs", "save_dimacs"]


def load_edge_list(
    path: "os.PathLike[str] | str",
    directed: bool = True,
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Load a SNAP-style whitespace-separated edge list.

    Lines starting with ``#`` are comments, except a ``# vertices N``
    header (as written by :func:`save_edge_list`), which pins the
    vertex count so isolated trailing vertices survive a round trip.
    Each data line is ``src dst`` or ``src dst weight``. Vertex ids
    are 0-based.
    """
    src: List[int] = []
    dst: List[int] = []
    weights: List[float] = []
    saw_weight = False
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                parts = line[1:].split()
                if (
                    num_vertices is None
                    and len(parts) == 2
                    and parts[0] == "vertices"
                    and parts[1].isdigit()
                ):
                    num_vertices = int(parts[1])
                continue
            parts = line.split()
            if len(parts) < 2 or len(parts) > 3:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if len(parts) == 3:
                saw_weight = True
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-numeric weight in {line!r}"
                    ) from exc
            elif saw_weight:
                raise GraphFormatError(
                    f"{path}:{lineno}: mixed weighted and unweighted lines"
                )
    if num_vertices is None:
        num_vertices = (max(max(src, default=-1), max(dst, default=-1)) + 1) if src else 0
    return CSRGraph(
        num_vertices,
        src,
        dst,
        weights=weights if saw_weight else None,
        directed=directed,
    )


def save_edge_list(graph: CSRGraph, path: "os.PathLike[str] | str") -> None:
    """Write a graph as a SNAP-style edge list (stored arcs, 0-based ids)."""
    src, dst = graph.edge_arrays()
    weights = graph.out_weights
    with open(path, "w") as f:
        f.write(f"# vertices {graph.num_vertices}\n")
        f.write(f"# arcs {graph.num_edges}\n")
        if weights is None:
            for s, d in zip(src, dst):
                f.write(f"{s} {d}\n")
        else:
            for s, d, w in zip(src, dst, weights):
                f.write(f"{s} {d} {w:g}\n")


def load_dimacs(path: "os.PathLike[str] | str") -> CSRGraph:
    """Load a DIMACS shortest-path ``.gr`` file (directed, 1-based ids)."""
    src: List[int] = []
    dst: List[int] = []
    weights: List[float] = []
    declared_n: Optional[int] = None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad problem line {line!r}"
                    )
                declared_n = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(f"{path}:{lineno}: bad arc line {line!r}")
                try:
                    u, v, w = int(parts[1]), int(parts[2]), float(parts[3])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-numeric arc field in {line!r}"
                    ) from exc
                if u < 1 or v < 1:
                    raise GraphFormatError(
                        f"{path}:{lineno}: DIMACS ids are 1-based, got {u}, {v}"
                    )
                src.append(u - 1)
                dst.append(v - 1)
                weights.append(w)
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unknown record type {parts[0]!r}"
                )
    if declared_n is None:
        raise GraphFormatError(f"{path}: missing 'p sp' problem line")
    return CSRGraph(declared_n, src, dst, weights=weights, directed=True)


def save_dimacs(graph: CSRGraph, path: "os.PathLike[str] | str") -> None:
    """Write a graph as a DIMACS ``.gr`` file (weights default to 1)."""
    src, dst = graph.edge_arrays()
    weights = graph.out_weights
    with open(path, "w") as f:
        f.write("c repro DIMACS export\n")
        f.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for i, (s, d) in enumerate(zip(src, dst)):
            w = weights[i] if weights is not None else 1
            f.write(f"a {s + 1} {d + 1} {w:g}\n")
