"""Degree analytics: connectivity skew, power-law detection, Table I.

The paper's working definition of a power-law ("natural") graph is the
80/20 rule: ~20% of the vertices are incident to ~80% of the edges
(Section II, citing Newman). Table I characterizes every dataset by the
fraction of in-edges and out-edges incident to the 20% most-connected
vertices ("in-degree con." / "out-degree con."); graphs above ~44% are
flagged power-law, road networks sit near 29%.

This module computes those exact columns, plus the generic
``top_fraction_connectivity`` primitive used throughout the
characterization figures (Fig 4b, Fig 5, Fig 19, Fig 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "top_fraction_connectivity",
    "is_power_law",
    "GraphCharacterization",
    "characterize",
    "degree_histogram",
    "degree_classes",
    "power_law_exponent",
]

#: Fraction of vertices considered "most connected" in the paper's 80/20 rule.
TOP_VERTEX_FRACTION = 0.20

#: Edge-coverage threshold above which we label a graph power-law. The
#: paper's power-law datasets have in-degree connectivity >= 58.7 and its
#: road controls ~29; we place the boundary midway.
POWER_LAW_CONNECTIVITY_THRESHOLD = 45.0


def top_fraction_connectivity(
    degrees: np.ndarray, fraction: float = TOP_VERTEX_FRACTION
) -> float:
    """Percentage of edge endpoints incident to the top ``fraction`` vertices.

    ``degrees`` is a per-vertex degree vector (in- or out-). Returns a
    percentage in ``[0, 100]`` — e.g. 80.0 means the top 20% of vertices
    by degree account for 80% of the edges, the canonical power law.
    """
    if not 0.0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    deg = np.asarray(degrees, dtype=np.int64)
    total = int(deg.sum())
    if total == 0:
        return 0.0
    k = max(1, int(np.ceil(fraction * len(deg))))
    # Partial selection of the k largest degrees (the "n-th element"
    # approach the paper favors for its linear average complexity).
    top = np.partition(deg, len(deg) - k)[len(deg) - k :]
    return 100.0 * float(top.sum()) / total


def is_power_law(
    graph: CSRGraph,
    fraction: float = TOP_VERTEX_FRACTION,
    threshold: float = POWER_LAW_CONNECTIVITY_THRESHOLD,
) -> bool:
    """Apply the paper's practical power-law test to a graph.

    A graph is "natural" if the top ``fraction`` of vertices by
    in-degree hold at least ``threshold`` percent of the in-edges.
    """
    return top_fraction_connectivity(graph.in_degrees(), fraction) >= threshold


def degree_histogram(degrees: np.ndarray) -> np.ndarray:
    """Count of vertices per degree value: ``hist[d] = #vertices of degree d``."""
    deg = np.asarray(degrees, dtype=np.int64)
    if len(deg) == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(deg)


def _select_top_k(deg: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` most-connected entries.

    Tie-breaking at the threshold degree is *identical* to the
    nth-element reorder hot set (:func:`repro.graph.reorder.nth_element_order`):
    every entry strictly above the k-th degree is selected, then ties
    fill the remaining slots in input order. This keeps the hub class
    bit-equal to the set of vertices the scratchpad captures.
    """
    n = len(deg)
    kth = np.partition(deg, n - k)[n - k]
    above = np.flatnonzero(deg > kth)
    ties = np.flatnonzero(deg == kth)
    need = k - len(above)
    return np.concatenate([above, ties[:need]])


def degree_classes(
    degrees: np.ndarray,
    hub_fraction: float = TOP_VERTEX_FRACTION,
    torso_fraction: float = 0.30,
) -> np.ndarray:
    """Stratify vertices into hub(0) / torso(1) / tail(2) by degree.

    The hub stratum is the top ``hub_fraction`` of vertices by degree —
    the paper's 80/20 hot set, with nth-element tie-breaking matching
    the reorder hot side exactly — the torso is the next
    ``torso_fraction`` among the remainder, and everything else is
    tail. Returns an ``int8`` array of length ``len(degrees)``.
    """
    if not 0.0 < hub_fraction <= 1.0:
        raise GraphError(f"hub_fraction must be in (0, 1], got {hub_fraction}")
    if not 0.0 <= torso_fraction <= 1.0:
        raise GraphError(
            f"torso_fraction must be in [0, 1], got {torso_fraction}"
        )
    deg = np.asarray(degrees, dtype=np.int64)
    n = len(deg)
    classes = np.full(n, 2, dtype=np.int8)
    if n == 0:
        return classes
    k_hub = max(1, int(np.ceil(hub_fraction * n)))
    hub = _select_top_k(deg, k_hub)
    classes[hub] = 0
    rest_mask = np.ones(n, dtype=bool)
    rest_mask[hub] = False
    rest = np.flatnonzero(rest_mask)
    k_torso = min(int(np.ceil(torso_fraction * n)), len(rest))
    if k_torso > 0:
        classes[rest[_select_top_k(deg[rest], k_torso)]] = 1
    return classes


def power_law_exponent(degrees: np.ndarray, d_min: int = 1) -> float:
    """Maximum-likelihood power-law exponent of a degree distribution.

    Uses the discrete approximation ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))``
    (Clauset–Shalizi–Newman). Natural graphs typically land in [1.8, 3].
    Returns ``nan`` when fewer than two vertices have degree >= d_min.
    """
    deg = np.asarray(degrees, dtype=np.float64)
    deg = deg[deg >= d_min]
    if len(deg) < 2:
        return float("nan")
    return 1.0 + len(deg) / float(np.log(deg / (d_min - 0.5)).sum())


@dataclass(frozen=True)
class GraphCharacterization:
    """One row of the paper's Table I."""

    name: str
    num_vertices: int
    num_edges: int
    directed: bool
    in_degree_connectivity: float
    out_degree_connectivity: float
    power_law: bool

    def as_row(self) -> dict:
        """Dictionary form for table printers."""
        return {
            "name": self.name,
            "#vertices": self.num_vertices,
            "#edges": self.num_edges,
            "type": "dir." if self.directed else "undir.",
            "in-degree con.": round(self.in_degree_connectivity, 2),
            "out-degree con.": round(self.out_degree_connectivity, 2),
            "power law": "yes" if self.power_law else "no",
        }


def characterize(graph: CSRGraph, name: str = "") -> GraphCharacterization:
    """Compute the Table I characterization row for ``graph``.

    Edge counts follow the paper's convention: the number of edges as
    listed in the dataset (undirected edges counted once).
    """
    in_con = top_fraction_connectivity(graph.in_degrees())
    out_con = top_fraction_connectivity(graph.out_degrees())
    return GraphCharacterization(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_input_edges,
        directed=graph.directed,
        in_degree_connectivity=in_con,
        out_degree_connectivity=out_con,
        power_law=in_con >= POWER_LAW_CONNECTIVITY_THRESHOLD,
    )
